"""The ``BENCH_<date>.json`` schema and its regression gate.

A bench payload is the committed record of the simulator's wall-clock
performance trajectory: every entry in the repo's history answers "how
fast was the core at this commit, and how much of that is the skip-ahead
event loop vs. the reference loop?".  The schema is deliberately small
and flat so that payloads diff cleanly in review.

This module is **stdlib-only** on purpose: :mod:`repro.runner.jobs`
imports :data:`BENCH_SCHEMA_VERSION` into the job-hash engine
fingerprint, and the runner must not drag the workload/prefetch stack in
at import time.

Version history:

* **1** — initial schema: per-case wall time, cycles/sec, the
  legacy-loop reference time, the dimensionless ``speedup_vs_legacy``
  ratio the CI gate compares, and the cycle-identical ``stats_match``
  differential bit.

Field reference (kept in sync with docs/PERFORMANCE.md by
``tools/check_docs.py``): see :data:`TOP_FIELDS` and :data:`CASE_FIELDS`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

#: bump when a field is added/removed/reinterpreted; the job-hash engine
#: fingerprint incorporates it, so old sweep checkpoints are not reused
#: across a schema change.
BENCH_SCHEMA_VERSION = 1

#: the CI gate's default: a case regresses when its speedup_vs_legacy
#: drops more than this fraction below the committed baseline's.
DEFAULT_TOLERANCE = 0.15

#: the quickstart-wall gate's default: the quickstart pair's absolute
#: wall time may exceed the baseline's by at most this fraction.  Wall
#: time is machine-dependent (unlike the speedup ratio), so this bound
#: is deliberately loose — it exists to catch order-of-magnitude
#: hot-path regressions that a ratio gate cannot see (both loops getting
#: slower together), not few-percent jitter.
DEFAULT_WALL_TOLERANCE = 0.60

#: top-level payload fields -> required type
TOP_FIELDS: Dict[str, type] = {
    "schema_version": int,
    "generated": str,  # ISO date the payload was measured
    "quick": bool,  # True when only the --quick subset ran
    "loop": str,  # primary measured loop: "event" or "legacy"
    "host": dict,  # python/platform/cpu_count of the measuring machine
    "peak_rss_mb": float,  # process high-water RSS after the suite
    "quickstart_wall_s": float,  # combined wall time of the quickstart pair
    "cases": list,
}

#: per-case fields -> required type
CASE_FIELDS: Dict[str, type] = {
    "name": str,
    "app": str,
    "mechanism": str,
    "scale": float,
    "seed": int,
    "cycles": int,  # simulated cycles (identical in both loops)
    "instructions": int,  # committed warp instructions
    "wall_s": float,  # wall time of the primary loop
    "cycles_per_sec": float,  # cycles / wall_s — the throughput number
    "legacy_wall_s": float,  # wall time of the reference (legacy) loop
    "speedup_vs_legacy": float,  # legacy_wall_s / wall_s, dimensionless
    "stats_match": bool,  # SimStats identical between the two loops
}


def bench_filename(generated: str) -> str:
    """Canonical file name for a payload measured on ``generated``."""
    return "BENCH_%s.json" % generated


def _type_ok(value: Any, expected: type) -> bool:
    if expected is float:
        # ints are fine where a float is expected (json round-trips 1.0
        # as 1 on some writers) but bools are not.
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def validate_payload(payload: Mapping[str, Any]) -> List[str]:
    """Schema errors in ``payload`` (empty list = valid).

    Checks field presence and types at both levels, the schema version,
    and that the per-case arithmetic (``speedup_vs_legacy``,
    ``cycles_per_sec``) is self-consistent.
    """
    errors: List[str] = []
    for field, expected in TOP_FIELDS.items():
        if field not in payload:
            errors.append("missing top-level field %r" % field)
        elif not _type_ok(payload[field], expected):
            errors.append(
                "top-level field %r is %s, expected %s"
                % (field, type(payload[field]).__name__, expected.__name__)
            )
    if errors:
        return errors
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(
            "schema_version %r != supported %d"
            % (payload["schema_version"], BENCH_SCHEMA_VERSION)
        )
    if payload["loop"] not in ("event", "legacy"):
        errors.append("loop must be 'event' or 'legacy', not %r" % payload["loop"])
    if not payload["cases"]:
        errors.append("cases must not be empty")
    for i, case in enumerate(payload["cases"]):
        if not isinstance(case, Mapping):
            errors.append("cases[%d] is not an object" % i)
            continue
        label = case.get("name", "cases[%d]" % i)
        for field, expected in CASE_FIELDS.items():
            if field not in case:
                errors.append("case %s: missing field %r" % (label, field))
            elif not _type_ok(case[field], expected):
                errors.append(
                    "case %s: field %r is %s, expected %s"
                    % (label, field, type(case[field]).__name__, expected.__name__)
                )
        if any(f not in case for f in ("wall_s", "legacy_wall_s", "speedup_vs_legacy")):
            continue
        if case["wall_s"] > 0:
            implied = case["legacy_wall_s"] / case["wall_s"]
            if abs(implied - case["speedup_vs_legacy"]) > 0.01 * max(implied, 1.0):
                errors.append(
                    "case %s: speedup_vs_legacy %.4f inconsistent with "
                    "legacy_wall_s/wall_s = %.4f"
                    % (label, case["speedup_vs_legacy"], implied)
                )
    return errors


def _cases_by_name(payload: Mapping[str, Any]) -> Dict[str, Mapping[str, Any]]:
    return {case["name"]: case for case in payload["cases"]}


def compare_payloads(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` against a committed ``baseline``
    (empty list = gate passes).

    The gate deliberately compares the **dimensionless**
    ``speedup_vs_legacy`` ratio, not absolute wall times: CI machines
    vary in speed run-to-run, but both loops run on the same machine in
    the same process, so their ratio isolates the event core's
    contribution.  A case regresses when its ratio drops more than
    ``tolerance`` below the baseline's, when its stats no longer match
    the legacy loop, or when the two payloads share no comparable case.

    One absolute check backs the ratio gate up: ``quickstart_wall_s``
    may not exceed the baseline's by more than ``wall_tolerance`` — a
    hot-path regression that slows *both* loops leaves every ratio
    intact, and only the wall clock notices.
    """
    regressions: List[str] = []
    for name, payload in (("current", current), ("baseline", baseline)):
        errs = validate_payload(payload)
        if errs:
            regressions.extend("%s payload invalid: %s" % (name, e) for e in errs)
    if regressions:
        return regressions
    if current["loop"] != "event":
        return ["gate requires the event loop as primary (got %r)" % current["loop"]]
    cur = _cases_by_name(current)
    base = _cases_by_name(baseline)
    compared = 0
    for name in sorted(cur):
        if name not in base:
            continue
        c, b = cur[name], base[name]
        if (c["app"], c["mechanism"], c["scale"], c["seed"]) != (
            b["app"], b["mechanism"], b["scale"], b["seed"],
        ):
            regressions.append(
                "case %s: pinned parameters changed vs baseline "
                "(re-measure the baseline instead of editing the case)" % name
            )
            continue
        compared += 1
        if not c["stats_match"]:
            regressions.append(
                "case %s: event-loop stats diverged from the legacy loop" % name
            )
        floor = b["speedup_vs_legacy"] * (1.0 - tolerance)
        if c["speedup_vs_legacy"] < floor:
            regressions.append(
                "case %s: speedup_vs_legacy %.3f < %.3f "
                "(baseline %.3f - %d%% tolerance)"
                % (
                    name, c["speedup_vs_legacy"], floor,
                    b["speedup_vs_legacy"], round(tolerance * 100),
                )
            )
    if compared == 0:
        regressions.append(
            "no case is comparable between current and baseline payloads"
        )
    ceiling = baseline["quickstart_wall_s"] * (1.0 + wall_tolerance)
    if current["quickstart_wall_s"] > ceiling:
        regressions.append(
            "quickstart_wall_s %.3fs > %.3fs (baseline %.3fs + %d%% "
            "wall tolerance)"
            % (
                current["quickstart_wall_s"], ceiling,
                baseline["quickstart_wall_s"], round(wall_tolerance * 100),
            )
        )
    return regressions


def comparable_cases(
    current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> List[Tuple[str, float, float]]:
    """(name, current speedup, baseline speedup) for the overlapping
    cases — the gate's summary table."""
    cur = _cases_by_name(current)
    base = _cases_by_name(baseline)
    return [
        (name, cur[name]["speedup_vs_legacy"], base[name]["speedup_vs_legacy"])
        for name in sorted(cur)
        if name in base
    ]


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
    "TOP_FIELDS",
    "CASE_FIELDS",
    "bench_filename",
    "validate_payload",
    "compare_payloads",
    "comparable_cases",
]
