"""Wall-clock benchmarking of the simulator itself (``snake-repro bench``).

Only the stdlib-only schema surface is re-exported here so that
:mod:`repro.runner.jobs` can import the bench schema version into its
engine fingerprint without dragging the workload stack in; the suite
runner lives in :mod:`repro.bench.suite` and is imported lazily by the
CLI.
"""

from .schema import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_TOLERANCE,
    bench_filename,
    compare_payloads,
    validate_payload,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "bench_filename",
    "compare_payloads",
    "validate_payload",
]
