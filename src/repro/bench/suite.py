"""The pinned benchmark suite behind ``snake-repro bench``.

Each :class:`BenchCase` is a fully pinned simulation (app, mechanism,
scale, seed, config overrides) run twice per measurement: once on the
primary loop and once on the ``--legacy-loop`` reference core.  That
buys two things in one pass:

* a **differential check** — the two loops must produce identical
  :class:`~repro.gpusim.stats.SimStats` (the refactor's cycle-identical
  contract), recorded as ``stats_match``;
* a **machine-independent ratio** — ``speedup_vs_legacy`` is what the CI
  gate compares across commits, because both loops ran back-to-back on
  the same machine.

This module lives in the *wall-clock domain*: unlike everything under
``repro.gpusim``/``repro.core`` it reads ``time.perf_counter`` and the
process RSS, so it is intentionally outside the SL101 determinism-lint
scope and the strict-mypy core.  See docs/PERFORMANCE.md for how to run
it and how to read the payloads it writes.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
import time
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .schema import BENCH_SCHEMA_VERSION, bench_filename, validate_payload


@dataclass(frozen=True)
class BenchCase:
    """One pinned suite entry.  ``quick`` marks membership in the
    ``--quick`` CI subset; the subset runs the *same* scales as the full
    suite so its ratios stay comparable with a full-suite baseline."""

    name: str
    app: str
    mechanism: str
    scale: float
    seed: int = 1
    overrides: Tuple[Tuple[str, Any], ...] = ()
    quick: bool = True


#: The committed suite.  The quickstart pair mirrors examples/quickstart.py
#: (baseline vs. Snake on LPS at full scale); the shootout entries are a
#: subset of examples/prefetcher_shootout.py; the sweep cell exercises a
#: non-default topology so config-sensitive regressions are caught too.
CASES: Tuple[BenchCase, ...] = (
    BenchCase("quickstart-none", "lps", "none", 1.0),
    BenchCase("quickstart-snake", "lps", "snake", 1.0),
    BenchCase("shootout-hotspot-snake", "hotspot", "snake", 0.5),
    BenchCase("shootout-backprop-intra", "backprop", "intra", 0.5, quick=False),
    BenchCase(
        "sweep-mum-snake-4sm", "mum", "snake", 0.5,
        overrides=(("num_sms", 4),), quick=False,
    ),
    # Table-walk-heavy pair (docs/PERFORMANCE.md, "The batched hot
    # path").  The long-chain cell enlarges the Tail CAM past the
    # vectorized walk's bucket threshold and deepens chains, so
    # ``TailTable.walk_raw`` dominates; the serve-drain cell measures
    # ``ServiceState.apply_batch`` against sequential ``apply`` (its
    # "legacy" loop), with digest equality as the differential bit.
    BenchCase(
        "longchain-mum-snake", "mum", "snake", 0.5,
        overrides=(("tail_entries", 64), ("max_chain_depth", 16)),
    ),
    BenchCase("serve-drain-snake", "serve-drain", "snake", 1.0),
)

#: Records handed to ``ServiceState.apply_batch`` per call in the
#: serve-drain case — the service worker's ``batch_limit``-bounded queue
#: sweep, modeled without the event loop.
SERVE_DRAIN_CHUNK = 64


def _serve_drain_records(scale: float, seed: int):
    """Deterministic access stream for the serve-drain case: bursty
    per-client traffic (what a queue sweep actually drains).  Each burst
    is one warp's loop body — the shard's pc group swept cyclically with
    per-pc strides — so the Snake learners train stable chains and spend
    their time walking them rather than thrashing the Tail CAM."""
    import random

    rng = random.Random(seed)
    clients = ["client-%d" % i for i in range(8)]
    pcs = [0x100 + i for i in range(8)]
    strides = {pc: 64 * (1 + i % 4) for i, pc in enumerate(pcs)}
    cursors: Dict[Tuple[str, int, int], int] = {}
    count = int(24000 * scale)
    records = []
    while len(records) < count:
        client = clients[rng.randrange(len(clients))]
        shard = rng.randrange(4)
        group = [pc for pc in pcs if pc % 4 == shard]
        warp = rng.randrange(4)
        for k in range(rng.randrange(16, 65)):
            pc = group[k % len(group)]
            key = (client, warp, pc)
            addr = cursors.get(key, 0x10000 + warp * 0x4000 + pc * 0x100)
            cursors[key] = addr + strides[pc]
            records.append((client, warp, pc, addr, 0))
    del records[count:]
    return clients, records


def _run_serve_drain(
    case: BenchCase, batched: bool
) -> Tuple[Dict[str, Any], int, int, float]:
    """Drain one deterministic record stream through the service state
    core; returns (identity stats, seq, applied count, wall seconds).

    ``batched`` picks the lane: ``apply_batch`` in
    ``SERVE_DRAIN_CHUNK``-sized sweeps (the primary measurement) or one
    scalar ``apply`` per record (the reference).  The identity stats are
    the state digest plus the journaled counters — byte-equal digests
    are the serve analogue of the gpusim ``stats_match`` bit.
    """
    from repro.serve.state import ServeConfig, ServiceState

    state = ServiceState(ServeConfig())
    clients, records = _serve_drain_records(case.scale, case.seed)
    for client in clients:
        state.admit(client)
    start = time.perf_counter()
    if batched:
        for i in range(0, len(records), SERVE_DRAIN_CHUNK):
            state.apply_batch(records[i:i + SERVE_DRAIN_CHUNK])
    else:
        apply = state.apply
        for record in records:
            apply(*record)
    wall = time.perf_counter() - start
    stats = {"digest": state.state_digest(), **state.counters}
    return stats, state.seq, state.counters["applied"], wall


def _run_once(case: BenchCase, legacy: bool) -> Tuple[Dict[str, float], int, int, float]:
    """Simulate one case on one loop; returns (stats dict, cycles,
    instructions, wall seconds)."""
    from repro.gpusim.config import GPUConfig
    from repro.gpusim.gpu import GPU
    from repro.prefetch import build_setup
    from repro.workloads import build_kernel

    config = GPUConfig.scaled().with_(legacy_loop=legacy, **dict(case.overrides))
    setup = build_setup(case.mechanism, config)
    kernel = build_kernel(case.app, scale=case.scale, seed=case.seed)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
    )
    start = time.perf_counter()
    stats = gpu.run(kernel)
    wall = time.perf_counter() - start
    return stats.as_dict(), stats.cycles, stats.instructions, wall


def run_case(case: BenchCase, loop: str = "event") -> Dict[str, Any]:
    """Measure one case; ``loop`` picks the primary core ('event' or
    'legacy').  With the event primary, the legacy reference runs too
    and the payload records the differential bit and the speedup ratio;
    with the legacy primary only one run happens (ratio pinned to 1)."""
    if loop not in ("event", "legacy"):
        raise ValueError("loop must be 'event' or 'legacy', not %r" % loop)
    if case.app == "serve-drain":
        # The serve case's two "loops" are the batched and scalar apply
        # lanes; digest equality plays the role of SimStats identity.
        stats, cycles, instructions, wall = _run_serve_drain(
            case, batched=loop == "event"
        )
        if loop == "event":
            legacy_stats, _, _, legacy_wall = _run_serve_drain(
                case, batched=False
            )
            stats_match = stats == legacy_stats
        else:
            legacy_wall = wall
            stats_match = True
    else:
        stats, cycles, instructions, wall = _run_once(
            case, legacy=loop == "legacy"
        )
        if loop == "event":
            legacy_stats, _, _, legacy_wall = _run_once(case, legacy=True)
            stats_match = stats == legacy_stats
        else:
            legacy_wall = wall
            stats_match = True
    return {
        "name": case.name,
        "app": case.app,
        "mechanism": case.mechanism,
        "scale": case.scale,
        "seed": case.seed,
        "cycles": cycles,
        "instructions": instructions,
        "wall_s": round(wall, 4),
        "cycles_per_sec": round(cycles / wall, 1) if wall > 0 else 0.0,
        "legacy_wall_s": round(legacy_wall, 4),
        "speedup_vs_legacy": round(legacy_wall / wall, 4) if wall > 0 else 1.0,
        "stats_match": stats_match,
    }


def _peak_rss_mb() -> float:
    """Process high-water RSS in MiB (getrusage reports KiB on Linux,
    bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 1)


def run_suite(
    quick: bool = False,
    loop: str = "event",
    cases: Optional[Sequence[BenchCase]] = None,
    generated: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the suite (default: the committed :data:`CASES`, resolved at
    call time) and return a schema-valid payload dict.

    ``quick`` restricts to the cases flagged for the CI subset;
    ``generated`` overrides the ISO date stamp (tests pin it)."""
    if cases is None:
        cases = CASES
    selected = [c for c in cases if c.quick] if quick else list(cases)
    results = [run_case(case, loop=loop) for case in selected]
    quickstart = [r for r in results if r["name"].startswith("quickstart-")]
    payload: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated": generated or date.today().isoformat(),
        "quick": quick,
        "loop": loop,
        "host": {
            "python": "%d.%d.%d" % sys.version_info[:3],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "peak_rss_mb": _peak_rss_mb(),
        "quickstart_wall_s": round(sum(r["wall_s"] for r in quickstart), 4),
        "cases": results,
    }
    errors = validate_payload(payload)
    if errors:  # a bug in this module, not in the caller's input
        raise RuntimeError("bench produced an invalid payload: %s" % "; ".join(errors))
    return payload


def write_payload(payload: Dict[str, Any], out: Optional[str] = None) -> Path:
    """Write ``payload`` as pretty JSON; default name is
    ``BENCH_<generated>.json`` in the current directory."""
    path = Path(out) if out else Path(bench_filename(payload["generated"]))
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: str) -> Dict[str, Any]:
    """Read and schema-validate a committed payload."""
    with open(path) as handle:
        payload = json.load(handle)
    errors = validate_payload(payload)
    if errors:
        raise ValueError(
            "%s is not a valid bench payload: %s" % (path, "; ".join(errors))
        )
    return payload


def find_baseline(directory: str = ".", exclude: Optional[Path] = None) -> Optional[Path]:
    """Newest committed ``BENCH_*.json`` under ``directory`` (by the date
    embedded in the name), skipping the file the current run just wrote."""
    candidates = sorted(Path(directory).glob("BENCH_*.json"))
    if exclude is not None:
        resolved = exclude.resolve()
        candidates = [p for p in candidates if p.resolve() != resolved]
    return candidates[-1] if candidates else None


def render_table(payload: Dict[str, Any]) -> str:
    """Human-readable summary of one payload."""
    lines = [
        "bench (%s loop%s) — generated %s, python %s"
        % (
            payload["loop"],
            ", quick subset" if payload["quick"] else "",
            payload["generated"],
            payload["host"]["python"],
        ),
        "%-26s %9s %12s %9s %8s %6s"
        % ("case", "wall_s", "cycles/sec", "legacy_s", "speedup", "match"),
    ]
    for case in payload["cases"]:
        lines.append(
            "%-26s %9.3f %12.0f %9.3f %7.2fx %6s"
            % (
                case["name"], case["wall_s"], case["cycles_per_sec"],
                case["legacy_wall_s"], case["speedup_vs_legacy"],
                "ok" if case["stats_match"] else "DIVERGED",
            )
        )
    lines.append(
        "quickstart pair: %.3fs wall, peak RSS %.1f MiB"
        % (payload["quickstart_wall_s"], payload["peak_rss_mb"])
    )
    return "\n".join(lines)


__all__ = [
    "BenchCase",
    "CASES",
    "run_case",
    "run_suite",
    "write_payload",
    "load_payload",
    "find_baseline",
    "render_table",
]
