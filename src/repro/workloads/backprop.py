"""Back Propagation (Backprop, Rodinia [31]).

A two-phase neural-network kernel: the forward pass streams the input and
weight matrices as a two-load inter-thread chain; a barrier separates it
from the backward pass, which walks the weight matrix with a different
(transposed) stride — so the chain table must retrain mid-kernel.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

ROW = 2_048  # weight matrix row pitch in bytes
FORWARD = [
    ChainLink(pc=0x500, offset=0),  # input unit
    ChainLink(pc=0x520, offset=1 << 21),  # weight (second array)
]
BACKWARD = [
    ChainLink(pc=0x580, offset=1 << 21),  # weight, transposed walk
    ChainLink(pc=0x5A0, offset=0),  # delta
]


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the Backprop kernel trace."""
    iters = scaled_iters(14, scale)
    data = array_base(0)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = data + slot * 128
            for _ in range(iters):
                program.chain_iteration(FORWARD, pointer, alu_between=1)
                pointer += ROW
            program.barrier(0x560)
            pointer = data + slot * 256
            for _ in range(iters):
                program.chain_iteration(BACKWARD, pointer, alu_between=1)
                pointer += 2 * ROW  # transposed: different stride
            program.store(0x5C0, data + (3 << 21) + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("backprop", warp_lists)
