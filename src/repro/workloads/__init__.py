"""Benchmark workloads (Table 2 of the paper) as synthetic trace builders.

Each module reproduces the *memory-access structure* of its CUDA kernel; see
DESIGN.md for the substitution rationale.  ``build_kernel(name)`` is the
public entry point::

    from repro.workloads import build_kernel, BENCHMARKS
    kernel = build_kernel("lps", scale=1.0, seed=7)
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.gpusim.trace import KernelTrace

from . import backprop, cp, histo, hotspot, lib, lps, lud, mrq, mum, nw, srad
from .extended import EXTENDED_BENCHMARKS
from .patterns import ChainLink, GridShape, WarpProgram, array_base, assemble
from .tiled_conv import build as build_tiled_conv

#: Table 2's benchmark list, in the paper's order.
BENCHMARKS: List[str] = [
    "cp",
    "lps",
    "lib",
    "mum",
    "backprop",
    "hotspot",
    "srad",
    "lud",
    "nw",
    "histo",
    "mrq",
]

_BUILDERS: Dict[str, Callable[..., KernelTrace]] = {
    **EXTENDED_BENCHMARKS,
    "cp": cp.build,
    "lps": lps.build,
    "lib": lib.build,
    "mum": mum.build,
    "backprop": backprop.build,
    "hotspot": hotspot.build,
    "srad": srad.build,
    "lud": lud.build,
    "nw": nw.build,
    "histo": histo.build,
    "mrq": mrq.build,
}

#: Full benchmark names as listed in Table 2.
FULL_NAMES: Dict[str, str] = {
    "cp": "Coulombic Potential (ISPASS)",
    "lps": "3D Laplace Solver (ISPASS)",
    "lib": "LIBOR Monte Carlo (ISPASS)",
    "mum": "MUMmerGPU (ISPASS)",
    "backprop": "Back Propagation (Rodinia)",
    "hotspot": "HotSpot (Rodinia)",
    "srad": "Speckle Reducing Anisotropic Diffusion (Rodinia)",
    "lud": "LU Decomposition (Rodinia)",
    "nw": "Needleman-Wunsch (Rodinia)",
    "histo": "Histogram (Parboil)",
    "mrq": "mri-q (Parboil)",
}


def build_kernel(name: str, **kwargs) -> KernelTrace:
    """Build the named benchmark's kernel trace.

    Accepts the Table 2 names (``BENCHMARKS``) and the extended-suite names
    (``EXTENDED_BENCHMARKS``: spmv, bfs, kmeans, stream).  Common keyword
    arguments: ``scale`` (iteration multiplier, default 1.0), ``seed`` (for
    the irregular components), ``grid`` (a
    :class:`~repro.workloads.patterns.GridShape`).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            "unknown benchmark %r; known: %s"
            % (name, ", ".join(list(BENCHMARKS) + sorted(EXTENDED_BENCHMARKS)))
        ) from None
    return builder(**kwargs)


__all__ = [
    "BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "ChainLink",
    "FULL_NAMES",
    "GridShape",
    "WarpProgram",
    "array_base",
    "assemble",
    "build_kernel",
    "build_tiled_conv",
]
