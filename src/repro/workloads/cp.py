"""Coulombic Potential (CP, ISPASS [5]).

Every thread computes the potential at one grid point by looping over the
shared atom array.  Each atom is a 16-byte (x, y, z, q) record, so one loop
iteration issues a four-load inter-thread chain with strides (4, 4, 4) and
the loop advances the pointer by 16 bytes — a textbook chain-of-strides
workload with heavy cross-warp sharing (all warps stream the same atoms).
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

ATOM_BYTES = 16
CHAIN = [
    ChainLink(pc=0x200, offset=0, thread_stride=0),  # atom.x (broadcast)
    ChainLink(pc=0x220, offset=4, thread_stride=0),  # atom.y
    ChainLink(pc=0x240, offset=8, thread_stride=0),  # atom.z
    ChainLink(pc=0x260, offset=12, thread_stride=0),  # atom.q
]


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the CP kernel trace."""
    iters = scaled_iters(24, scale)
    atoms = array_base(0)
    grid_out = array_base(1)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = atoms
            for _ in range(iters):
                program.chain_iteration(CHAIN, pointer, alu_between=2)
                pointer += ATOM_BYTES
            # one result store per grid point
            program.store(0x280, grid_out + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("cp", warp_lists)
