"""Histogram (histo, Parboil [44]).

Input elements stream in regularly (predictable), but each element's bin
update is a data-dependent read-modify-write into the histogram region —
a scatter no stride prefetcher covers.  The regular half gives prefetchers
moderate coverage; the scatter half produces the bursty misses and
congestion stalls the paper highlights for histo's 33 % Snake speedup.
"""

from __future__ import annotations

import random
from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    GridShape,
    LINE,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

BINS_BYTES = 1 << 20
INPUT_STEP = 1_024  # per-warp input pitch per iteration


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the histo kernel trace."""
    iters = scaled_iters(24, scale)
    inputs = array_base(0)
    bins = array_base(7)
    rng = random.Random(seed)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = inputs + slot * (iters * INPUT_STEP)
            warp_rng = random.Random(rng.randrange(1 << 30))
            for _ in range(iters):
                program.load(0xA00, pointer)  # input sample, low word
                program.load(0xA10, pointer + 256)  # paired high word
                pointer += INPUT_STEP
                bin_addr = bins + warp_rng.randrange(BINS_BYTES // LINE) * LINE
                program.load(0xA20, bin_addr, divergent=True)  # bin scatter
                program.alu(0xA40, 1)
                program.store(0xA60, bin_addr)  # bin write-back
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("histo", warp_lists)
