"""LIBOR Monte Carlo (LIB, ISPASS [5]).

Each thread simulates an interest-rate path: a deep loop streams three
per-maturity arrays (rates L, volatilities lambda, accruals delta) with a
fixed pitch and no reuse — the working set far exceeds the L1, so the
baseline hit rate is near zero and accurate prefetching recovers a large
latency win (the paper reports LIB as Snake's biggest speedup, with a 10x
L1 hit-rate improvement).
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

PATH_PITCH = 1 << 14  # per-warp path separation: streams never overlap
STEP = 512  # per-iteration advance along the maturity axis
CHAIN = [
    ChainLink(pc=0x300, offset=0),  # L[i]
    ChainLink(pc=0x320, offset=1 << 20),  # lambda[i] (second array)
    ChainLink(pc=0x340, offset=2 << 20),  # delta[i] (third array)
]


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the LIB kernel trace."""
    iters = scaled_iters(40, scale)
    paths = array_base(0)
    out = array_base(3)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = paths + slot * PATH_PITCH
            for _ in range(iters):
                program.chain_iteration(CHAIN, pointer, alu_between=1)
                pointer += STEP
            program.store(0x360, out + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("lib", warp_lists)
