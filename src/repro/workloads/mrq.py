"""MRI Q-matrix computation (MRQ / mri-q, Parboil [44]).

Every thread loops over the k-space trajectory reading the (kx, ky, kz,
phi) sample — a four-load broadcast chain — and evaluates trigonometric
terms (SFU work).  Regular and shared across all warps, but compute-salted:
coverage is high while the speedup is capped by the SFU latency.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

SAMPLE_BYTES = 16
CHAIN = [
    ChainLink(pc=0xB00, offset=0, thread_stride=0),  # kx
    ChainLink(pc=0xB20, offset=4, thread_stride=0),  # ky
    ChainLink(pc=0xB40, offset=8, thread_stride=0),  # kz
    ChainLink(pc=0xB60, offset=12, thread_stride=0),  # phi
]


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the MRQ kernel trace."""
    iters = scaled_iters(20, scale)
    kspace = array_base(0)
    q_out = array_base(8)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = kspace
            for _ in range(iters):
                program.chain_iteration(CHAIN, pointer, alu_between=1)
                program.sfu(0xB80)  # sin/cos of the phase
                pointer += SAMPLE_BYTES
            program.store(0xBA0, q_out + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("mrq", warp_lists)
