"""3D Laplace Solver (LPS, ISPASS [5]) — the paper's running example.

Figure 7 of the paper shows the kernel body::

    for (k = 0; k < NZ; k++) {
        u1[ind - KOFF] = u1[ind];        // load PC1, store
        u1[ind]        = u1[ind + KOFF]; // load PC2, store
    }

with ``ind`` derived from thread/block indices and ``KOFF`` the z-plane
pitch.  Figure 8 extracts the resulting inter-thread chain between four load
PCs with strides (-400, +40400, -400) and an intra-warp stride of 40000 —
we reproduce exactly those constants.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    ELEM,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

#: Figure 8's chain: byte offsets of the four load PCs from the rolling
#: plane pointer.  Deltas between consecutive links: -400, +40400, -400.
CHAIN = [
    ChainLink(pc=0x100, offset=0),
    ChainLink(pc=0x120, offset=-400),
    ChainLink(pc=0x140, offset=40_000),
    ChainLink(pc=0x160, offset=39_600),
]
PLANE_STRIDE = 40_000  # intra-warp stride per k iteration (Fig 8)
WARP_SPAN = 128  # byte offset between neighbouring warps' ind


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the LPS kernel trace."""
    iters = scaled_iters(20, scale)
    u1 = array_base(0)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = u1 + 1_000_000 + slot * WARP_SPAN
            for _ in range(iters):
                program.chain_iteration(CHAIN, pointer, alu_between=2)
                program.store(0x180, pointer - 40_000 - 400)
                program.store(0x1A0, pointer)
                pointer += PLANE_STRIDE
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("lps", warp_lists)
