"""HotSpot (Rodinia [31]).

Thermal simulation over a 2D grid: every iteration reads the five-point
stencil (centre, north, south, west, east) of the temperature grid plus the
power grid — a six-load inter-thread chain with variable strides (row pitch
up and down, element left and right, array hop) — then advances one row.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    ELEM,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

ROW = 4_096  # grid row pitch in bytes
CHAIN = [
    ChainLink(pc=0x600, offset=0),  # centre
    ChainLink(pc=0x620, offset=-ROW),  # north
    ChainLink(pc=0x640, offset=+ROW),  # south
    ChainLink(pc=0x660, offset=-ELEM),  # west
    ChainLink(pc=0x680, offset=+ELEM),  # east
    ChainLink(pc=0x6A0, offset=1 << 22),  # power grid
]


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the HotSpot kernel trace."""
    iters = scaled_iters(16, scale)
    temp = array_base(0)
    out = array_base(4)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = temp + ROW + slot * 128
            coeffs = array_base(10)
            for i in range(iters):
                # shared conduction coefficients: a hot 8-line table every
                # warp re-reads each iteration (demand-reuse the decoupled
                # policy must protect from prefetch pollution)
                program.load(0x6E0, coeffs + (i % 8) * 128, thread_stride=0)
                program.chain_iteration(CHAIN, pointer, alu_between=1)
                program.store(0x6C0, out + (pointer - temp))
                pointer += ROW
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("hotspot", warp_lists)
