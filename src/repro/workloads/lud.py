"""LU Decomposition (lud, Rodinia [31]).

Blocked triangular factorization: each outer iteration eliminates one block
column, so the row/column walks shrink and their strides shift every phase.
Chains exist but keep changing — the prefetcher must retrain repeatedly,
yielding the middling coverage the paper shows for lud.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

N_ROW = 4_096  # matrix row pitch in bytes


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the lud kernel trace."""
    outer = scaled_iters(5, scale, minimum=2)
    inner = scaled_iters(6, scale, minimum=2)
    matrix = array_base(0)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            for k in range(outer):
                # the active trailing submatrix starts at the (k, k) block;
                # the row/column chain strides depend on k
                diag = matrix + k * (N_ROW + 128)
                chain = [
                    ChainLink(pc=0x800, offset=0),  # pivot row element
                    ChainLink(pc=0x820, offset=(k + 1) * N_ROW),  # column elem
                    ChainLink(pc=0x840, offset=(k + 1) * N_ROW + 128),
                ]
                pointer = diag + slot * 128
                for _ in range(inner):
                    program.chain_iteration(chain, pointer, alu_between=1)
                    pointer += N_ROW
                program.store(0x860, diag + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("lud", warp_lists)
