"""Speckle Reducing Anisotropic Diffusion (Srad, Rodinia [31]).

Image-denoising stencil.  Like HotSpot it reads a 4-neighbour stencil chain,
but the accesses arrive in *bursts* (the kernel computes gradients for a
whole tile back-to-back before the divergence update), so the baseline shows
a good hit rate punctuated by bursty misses and congestion — the behaviour
the paper cites when explaining Srad's 29 % speedup.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    ELEM,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

ROW = 2_048
CHAIN = [
    ChainLink(pc=0x700, offset=0),
    ChainLink(pc=0x720, offset=-ROW),
    ChainLink(pc=0x740, offset=+ROW),
    ChainLink(pc=0x760, offset=+ELEM),
]
BURST = 4  # stencil iterations issued back-to-back without ALU gaps


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the Srad kernel trace."""
    bursts = scaled_iters(5, scale)
    image = array_base(0)
    coeff = array_base(5)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = image + ROW + slot * 128
            lut = array_base(11)
            for b in range(bursts):
                # shared diffusion-coefficient lookup (hot, reused lines)
                program.load(0x7C0, lut + (b % 8) * 128, thread_stride=0)
                # burst: several stencil rows with no compute in between
                for _ in range(BURST):
                    program.chain_iteration(CHAIN, pointer, alu_between=0)
                    pointer += ROW
                # then the divergence update: compute + coefficient store
                program.alu(0x780, 6)
                program.store(0x7A0, coeff + (pointer - image))
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("srad", warp_lists)
