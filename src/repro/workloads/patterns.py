"""Building blocks for synthetic GPU kernel traces.

Each benchmark module composes warp instruction streams out of these
primitives.  The key idea: a warp's thread-0 addresses follow the benchmark's
*access structure* — fixed inter-warp offsets, per-iteration (intra-warp)
strides, inter-thread chains of strides between consecutive load PCs, and
irregular (data-dependent) components — because that structure is all a
hardware prefetcher ever sees.

Conventions:

* element size 4 bytes, fully coalesced warps use ``thread_stride=4``
  (one 128 B line per warp access);
* arrays live at well-separated bases (``array_base``) so strides never
  alias across data structures;
* PCs are byte addresses of the load instructions, unique per static load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps

ELEM = 4  #: element size in bytes
LINE = 128  #: cache line size the configs use


def array_base(index: int) -> int:
    """Base address of the ``index``-th global array (64 MB apart, skewed
    by a few rows so distinct arrays spread over DRAM channels/banks
    instead of aliasing onto the same bank)."""
    return ((index + 1) << 26) + index * 2_688


@dataclass
class ChainLink:
    """One load of an inter-thread chain: a PC and its address offset from
    the chain's rolling pointer (the paper's variable stride)."""

    pc: int
    offset: int
    thread_stride: int = ELEM


@dataclass
class WarpProgram:
    """Mutable builder for one warp's instruction list."""

    warp_id: int
    instrs: List[WarpInstr] = field(default_factory=list)

    def alu(self, pc: int, count: int = 1) -> "WarpProgram":
        for i in range(count):
            self.instrs.append(WarpInstr(pc=pc + 8 * i, op=Op.ALU))
        return self

    def sfu(self, pc: int) -> "WarpProgram":
        self.instrs.append(WarpInstr(pc=pc, op=Op.SFU))
        return self

    def load(
        self,
        pc: int,
        addr: int,
        thread_stride: int = ELEM,
        size: int = ELEM,
        divergent: bool = False,
    ) -> "WarpProgram":
        self.instrs.append(
            WarpInstr(
                pc=pc,
                op=Op.LOAD,
                base_addr=max(0, addr),
                thread_stride=thread_stride,
                size_bytes=size,
                divergent=divergent,
            )
        )
        return self

    def store(
        self, pc: int, addr: int, thread_stride: int = ELEM, size: int = ELEM
    ) -> "WarpProgram":
        self.instrs.append(
            WarpInstr(
                pc=pc,
                op=Op.STORE,
                base_addr=max(0, addr),
                thread_stride=thread_stride,
                size_bytes=size,
            )
        )
        return self

    def barrier(self, pc: int) -> "WarpProgram":
        self.instrs.append(WarpInstr(pc=pc, op=Op.BARRIER))
        return self

    def chain_iteration(
        self,
        links: Sequence[ChainLink],
        pointer: int,
        alu_between: int = 1,
        alu_pc: int = 0x8000,
    ) -> "WarpProgram":
        """Emit one traversal of an inter-thread chain: consecutive load PCs
        whose addresses are ``pointer + link.offset`` — the deltas between
        successive links are the chain's variable strides."""
        for idx, link in enumerate(links):
            self.load(link.pc, pointer + link.offset, link.thread_stride)
            if alu_between:
                self.alu(alu_pc + 64 * idx, alu_between)
        return self

    def streaming_loop(
        self,
        pc: int,
        base: int,
        stride: int,
        iters: int,
        alu_between: int = 1,
        alu_pc: int = 0x9000,
    ) -> "WarpProgram":
        """A loop re-executing one load PC with a fixed intra-warp stride."""
        for i in range(iters):
            self.load(pc, base + i * stride)
            if alu_between:
                self.alu(alu_pc, alu_between)
        return self

    def random_loads(
        self,
        pc: int,
        region_base: int,
        region_bytes: int,
        count: int,
        rng: random.Random,
        alu_between: int = 1,
        alu_pc: int = 0xA000,
    ) -> "WarpProgram":
        """Data-dependent (unpredictable) accesses within a region — the
        irregular component no stride prefetcher can cover."""
        for _ in range(count):
            offset = rng.randrange(0, max(1, region_bytes // LINE)) * LINE
            self.load(pc, region_base + offset, divergent=True)
            if alu_between:
                self.alu(alu_pc, alu_between)
        return self

    def build(self) -> WarpTrace:
        return WarpTrace(warp_id=self.warp_id, instrs=self.instrs)


def assemble(name: str, warp_lists: List[List[WarpTrace]]) -> KernelTrace:
    """Pack per-CTA warp lists into a kernel with dense global warp ids."""
    ctas = [CTA(cta_id=i, warps=warps) for i, warps in enumerate(warp_lists)]
    renumber_warps(ctas)
    return KernelTrace(name=name, ctas=ctas)


@dataclass(frozen=True)
class GridShape:
    """Launch geometry shared by all benchmark builders."""

    num_ctas: int = 8
    warps_per_cta: int = 8

    def __post_init__(self) -> None:
        if self.num_ctas < 1 or self.warps_per_cta < 1:
            raise ValueError("grid must have at least one CTA and warp")

    @property
    def total_warps(self) -> int:
        return self.num_ctas * self.warps_per_cta

    def warp_slot(self, cta: int, warp: int) -> int:
        """Global linear index of a warp (drives inter-warp/CTA offsets)."""
        return cta * self.warps_per_cta + warp


def scaled_iters(base: int, scale: float, minimum: int = 2) -> int:
    """Iteration count scaled by the user's ``scale`` knob."""
    return max(minimum, int(round(base * scale)))
