"""MUMmerGPU (MUM, ISPASS [5]).

Genome alignment by suffix-tree traversal: each query walks the tree making
data-dependent jumps, so the address stream is dominated by irregular
accesses no stride prefetcher can learn.  A small regular component remains
(query-string streaming), which is why the paper's prefetchers retain some
residual coverage on MUM.
"""

from __future__ import annotations

import random
from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

TREE_BYTES = 1 << 24  # suffix tree region (16 MB)
QUERY_STEP = 256


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the MUM kernel trace."""
    iters = scaled_iters(16, scale)
    tree = array_base(0)
    queries = array_base(2)
    rng = random.Random(seed)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            query_ptr = queries + slot * (iters * QUERY_STEP)
            warp_rng = random.Random(rng.randrange(1 << 30))
            for _ in range(iters):
                # regular: read the next chunk of the query string
                program.load(0x400, query_ptr)
                query_ptr += QUERY_STEP
                # irregular: pointer-chasing hops through the tree; each hop
                # lands on a random node but then reads the node's fields at
                # fixed offsets (a short chain off a random base)
                for _ in range(2):
                    node = tree + warp_rng.randrange(0, TREE_BYTES // 256) * 256
                    program.load(0x420, node)          # node header
                    program.load(0x440, node + 128)    # child pointers
                    program.alu(0x460, 1)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("mum", warp_lists)
