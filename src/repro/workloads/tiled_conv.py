"""Tiled convolution (modeled by matrix multiplication) for §5.6.

The tiling sensitivity study varies the tile size from 0 % (no tiling) to
100 % of the unified cache.  A tiled kernel loads one tile, reuses it for
several compute passes, then hops to the next tile — the inter-tile hop is
itself a stride Snake learns, letting it prefetch the next tile's lines
while the current tile is being consumed.

``tile_frac = 0`` produces the untiled baseline: a single streaming pass
over the whole matrix with no reuse.
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    GridShape,
    LINE,
    GridShape as _GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

REUSE_PASSES = 3  # compute passes over a resident tile


def build(
    tile_frac: float = 0.75,
    unified_bytes: int = 16 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    grid: GridShape = GridShape(num_ctas=4, warps_per_cta=8),
) -> KernelTrace:
    """Build the tiled-convolution trace.

    ``tile_frac`` is the tile's share of the unified cache; ``unified_bytes``
    should match the simulated GPU's L1 size so the occupancy effects line
    up with the paper's x-axis.
    """
    if not 0.0 <= tile_frac <= 1.0:
        raise ValueError("tile_frac must be within [0, 1]")
    total_bytes = scaled_iters(12, scale) * unified_bytes // 2
    matrix = array_base(0)
    out = array_base(9)

    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            if tile_frac == 0.0:
                # untiled: no shared-memory staging, so every one of the
                # REUSE_PASSES compute passes re-loads the matrix from global
                # memory (same useful work as the tiled variants)
                lines = total_bytes // LINE
                step = LINE * grid.total_warps
                for _ in range(REUSE_PASSES):
                    pointer = matrix + slot * LINE
                    for _ in range(lines // grid.total_warps):
                        program.load(0xC00, pointer)
                        program.alu(0xC20, 8)  # the convolution's MACs
                        pointer += step
            else:
                tile_bytes = max(LINE, int(unified_bytes * tile_frac))
                lines_per_tile = max(1, tile_bytes // LINE)
                num_tiles = max(1, total_bytes // tile_bytes)
                warp_lines = max(1, lines_per_tile // grid.total_warps)
                for tile in range(num_tiles):
                    tile_base = matrix + tile * tile_bytes
                    # stage the tile once (cooperative load into shared mem)
                    pointer = tile_base + slot * LINE
                    for _ in range(warp_lines):
                        program.load(0xC00, pointer)
                        pointer += LINE * grid.total_warps
                    # compute passes run from the staged tile (no re-loads);
                    # matmul does O(tile) MACs per staged element, so the
                    # compute phase is comparable to the tile-load phase
                    for _ in range(REUSE_PASSES):
                        program.alu(0xC20, 8 * warp_lines)
                    # tiled kernels synchronize before moving on — the cold
                    # burst at each tile boundary is what next-tile
                    # prefetching hides
                    program.barrier(0xC60)
            program.store(0xC40, out + slot * LINE)
            warps.append(program.build())
        warp_lists.append(warps)
    name = "tiled_conv_%d" % round(tile_frac * 100)
    return assemble(name, warp_lists)
