"""Extended workload suite — four classic GPU kernels beyond Table 2.

The paper evaluates on eleven apps; these four (from the same Rodinia /
Parboil universes) exercise access-pattern corners the Table 2 set leaves
thin, and are used to check that Snake generalizes rather than overfitting
to the calibrated eleven:

* ``spmv``   — CSR sparse matrix-vector: a regular three-load chain per
  non-zero (row ptr / col idx / value) plus an irregular x-vector gather.
* ``bfs``    — frontier expansion: regular frontier scan, irregular
  neighbour visits whose count varies per node.
* ``kmeans`` — point stream with a broadcast centroid table re-read per
  point (hot shared lines + long streams).
* ``stream`` — the STREAM triad: three pure sequential streams, the
  best case for any stride prefetcher.
"""

from __future__ import annotations

import random
from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    GridShape,
    LINE,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)


def build_spmv(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """CSR sparse matrix-vector multiply."""
    rows = scaled_iters(12, scale)
    nnz_per_row = 4
    col_idx = array_base(0)
    values = array_base(1)
    x_vec = array_base(2)
    y_vec = array_base(3)
    rng = random.Random(seed)

    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            warp_rng = random.Random(rng.randrange(1 << 30))
            nnz_base = slot * rows * nnz_per_row * 4
            for r in range(rows):
                for _ in range(nnz_per_row):
                    # regular CSR streams: column index then value
                    program.load(0xD00, col_idx + nnz_base)
                    program.load(0xD20, values + (1 << 22) + nnz_base)
                    # irregular gather from the x vector
                    gather = x_vec + warp_rng.randrange(1 << 18) // LINE * LINE
                    program.load(0xD40, gather, divergent=True)
                    program.alu(0xD60, 1)
                    nnz_base += 4
                program.store(0xD80, y_vec + slot * rows * 4 + r * 4)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("spmv", warp_lists)


def build_bfs(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Breadth-first search frontier expansion."""
    frontier_nodes = scaled_iters(10, scale)
    graph = array_base(0)
    frontier = array_base(4)
    visited = array_base(5)
    rng = random.Random(seed)

    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            warp_rng = random.Random(rng.randrange(1 << 30))
            ptr = frontier + slot * frontier_nodes * 8
            for _ in range(frontier_nodes):
                program.load(0xE00, ptr)  # next frontier node (regular)
                ptr += 8
                # visit a data-dependent number of neighbours
                for _ in range(warp_rng.randint(1, 3)):
                    node = graph + warp_rng.randrange(1 << 22) // 256 * 256
                    program.load(0xE20, node, divergent=True)  # adjacency
                    program.load(0xE40, node + 128, divergent=True)  # flags
                    program.alu(0xE60, 1)
                program.store(0xE80, visited + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("bfs", warp_lists)


def build_kmeans(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """K-means assignment step: stream points, re-read the centroid table."""
    points = scaled_iters(16, scale)
    k_centroids = 4
    point_data = array_base(0)
    centroids = array_base(6)
    labels = array_base(7)

    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            ptr = point_data + slot * points * 256
            for _ in range(points):
                program.load(0xF00, ptr)  # the point (streaming)
                ptr += 256
                for c in range(k_centroids):
                    # hot broadcast lines every warp re-reads per point
                    program.load(0xF20, centroids + c * 128, thread_stride=0)
                    program.alu(0xF40, 1)
                program.store(0xF60, labels + slot * 128)
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("kmeans", warp_lists)


def build_stream(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """STREAM triad: a[i] = b[i] + s * c[i] — three sequential streams."""
    iters = scaled_iters(24, scale)
    a = array_base(0)
    b = array_base(1)
    c = array_base(2)

    chain = [
        ChainLink(pc=0x1000, offset=0),  # b[i]
        ChainLink(pc=0x1020, offset=(c - b)),  # c[i]
    ]
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            pointer = b + slot * LINE
            step = LINE * grid.total_warps
            for _ in range(iters):
                program.chain_iteration(chain, pointer, alu_between=1)
                program.store(0x1040, a + (pointer - b))
                pointer += step
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("stream", warp_lists)


#: names -> builders for the extended suite
EXTENDED_BENCHMARKS = {
    "spmv": build_spmv,
    "bfs": build_bfs,
    "kmeans": build_kmeans,
    "stream": build_stream,
}
