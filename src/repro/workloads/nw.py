"""Needleman-Wunsch (nw, Rodinia [31]).

Wavefront dynamic programming over the alignment matrix: each diagonal phase
reads the north, west and north-west neighbours — a regular chain — but a
phase only lasts a couple of iterations before the diagonal (and with it the
working addresses) moves on.  The paper singles nw out: *regular* patterns
with a *low repetition count*, hence low coverage for every mechanism
(Fig 16, seventh observation).
"""

from __future__ import annotations

from typing import List

from repro.gpusim.trace import KernelTrace, WarpTrace

from .patterns import (
    ChainLink,
    ELEM,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)

ROW = 8_192


def build(
    scale: float = 1.0, seed: int = 0, grid: GridShape = GridShape()
) -> KernelTrace:
    """Build the nw kernel trace."""
    diagonals = scaled_iters(10, scale)
    per_diag = 2  # repetitions within a diagonal before it moves on
    score = array_base(0)
    ref = array_base(6)
    warp_lists: List[List[WarpTrace]] = []
    for cta in range(grid.num_ctas):
        warps = []
        for w in range(grid.warps_per_cta):
            slot = grid.warp_slot(cta, w)
            program = WarpProgram(warp_id=0)
            for d in range(diagonals):
                # each diagonal uses distinct PCs (unrolled phases in the
                # real kernel) so learned chains rarely get reused
                pc = 0x900 + 0x100 * (d % 4)
                # the effective pitch changes every diagonal (the wavefront
                # shortens), so the chain strides never repeat long enough
                # to train — the paper's "regular but unrepeated" pattern
                pitch = ROW + 256 * d
                chain = [
                    ChainLink(pc=pc, offset=-pitch),  # north
                    ChainLink(pc=pc + 0x20, offset=-ELEM),  # west
                    ChainLink(pc=pc + 0x40, offset=-pitch - ELEM),  # north-west
                    ChainLink(pc=pc + 0x60, offset=(ref - score) + 512 * d),
                ]
                # the wavefront re-maps warps to cells every diagonal, so
                # the warp-to-warp offset changes phase to phase and the
                # inter-warp stride never stays trainable for long
                pointer = score + ROW + d * (ROW + 512) + slot * (128 + 64 * (d % 3))
                for _ in range(per_diag):
                    program.chain_iteration(chain, pointer, alu_between=1)
                    program.store(pc + 0x80, pointer)
                    pointer += ROW + ELEM  # move along the diagonal
            warps.append(program.build())
        warp_lists.append(warps)
    return assemble("nw", warp_lists)
