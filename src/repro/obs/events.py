"""Typed telemetry events and the bus that carries them.

Design constraints (why this looks the way it does):

* **Zero cost when off.**  The timing model is the hot path; every emission
  site is written as ``if obs.enabled: obs.emit(Event(...))`` so that with
  the default :data:`NULL_BUS` no event object is ever constructed — the
  whole layer reduces to one attribute load and a branch per site.
* **Typed, flat events.**  Each event is a small dataclass carrying only
  scalars (cycle, ids, addresses).  Sinks dispatch on
  :attr:`Event.kind`, an :class:`enum.IntEnum`, so adding a kind does not
  break existing sinks (they ignore kinds they do not handle).
* **Synchronous fan-out.**  ``emit`` calls every attached sink inline, in
  attach order.  The simulator is single-threaded and events are emitted
  in simulation order per SM, so sinks can rely on non-decreasing cycles
  *per sm_id* (the GPU interleaves SMs in global-time order, so the global
  stream is approximately time-sorted as well).

The event vocabulary mirrors the paper's analysis axes: cache access
outcomes (Figs 3/25), prefetch lifecycle (Figs 16/17), throttle decisions
(Fig 23), chain walks (Figs 9-11/20) and DRAM row activations (energy,
Fig 19).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar, Iterable, List, Tuple, Union


class EventKind(enum.IntEnum):
    """Discriminator carried by every event (stable across releases)."""

    CACHE_ACCESS = 1  # one demand-load line transaction at the L1
    PREFETCH_ISSUE = 2  # a prefetch request actually left for L2
    PREFETCH_FILL = 3  # a prefetched line landed in the L1
    PREFETCH_USE = 4  # a demand access claimed a prefetched line
    PREFETCH_DROP = 5  # a prediction was discarded before issue
    THROTTLE = 6  # the throttle blocked a prefetch
    CHAIN_WALK = 7  # Snake walked a chain and produced requests
    DRAM_ROW_ACTIVATE = 8  # a DRAM bank opened a new row
    L2_ACCESS = 9  # one request serviced by the shared L2
    RUNNER_JOB = 10  # sweep-runner job lifecycle transition (repro.runner)
    FAULT = 11  # a chaos fault fired at an injection site (repro.gpusim.faults)
    RUNNER_LEASE = 12  # scheduler lease/heartbeat/steal transition (repro.runner)
    SERVE = 13  # prefetch-prediction service lifecycle transition (repro.serve)


@dataclass
class Event:
    """Common header: when (core cycle) and where (SM id, -1 = shared)."""

    cycle: int
    sm_id: int

    #: discriminator, assigned per subclass (schema metadata, not payload)
    kind: ClassVar[EventKind]


@dataclass
class CacheAccessEvent(Event):
    """One demand-load line transaction and its §2 outcome.

    ``outcome`` is the :class:`repro.gpusim.unified_cache.L1Outcome` value
    string (``hit`` / ``miss`` / ``reserved`` / ``reservation_fail``).
    ``covered`` / ``timely`` mirror the §4 prefetch-credit bookkeeping for
    this access (a covered access hit, or merged into, a predicted line).
    """

    warp_id: int = -1
    pc: int = -1
    line_addr: int = 0
    outcome: str = "hit"
    covered: bool = False
    timely: bool = False

    kind = EventKind.CACHE_ACCESS


@dataclass
class PrefetchIssueEvent(Event):
    """A prefetch left the SM for L2.  ``pc`` is the *triggering* load PC;
    ``depth`` the chain distance of the prediction (1 = direct)."""

    pc: int = -1
    line_addr: int = 0
    depth: int = 1

    kind = EventKind.PREFETCH_ISSUE


@dataclass
class PrefetchFillEvent(Event):
    """A prefetched line arrived at the L1.  ``demand_joined`` marks a
    correct-but-late prediction (a demand merged while it was in flight)."""

    line_addr: int = 0
    demand_joined: bool = False

    kind = EventKind.PREFETCH_FILL


@dataclass
class PrefetchUseEvent(Event):
    """A demand access claimed a resident prefetched line (the §3.2
    flag-flip transfer, or a side-buffer hit in isolated mode)."""

    line_addr: int = 0

    kind = EventKind.PREFETCH_USE


@dataclass
class PrefetchDropEvent(Event):
    """A prediction was discarded before issue.  ``reason`` is
    ``duplicate`` (line already resident / in flight) or ``headroom``
    (MSHR / miss-queue guard for demand traffic)."""

    line_addr: int = 0
    reason: str = "duplicate"

    kind = EventKind.PREFETCH_DROP


@dataclass
class ThrottleEvent(Event):
    """The §3.3 throttle blocked a prefetch.  ``reason`` is ``bandwidth``
    (NoC hysteresis trigger) or ``space`` (prefetch-space exhaustion);
    ``utilization`` is the measured NoC fraction that drove the call."""

    reason: str = "bandwidth"
    utilization: float = 0.0

    kind = EventKind.THROTTLE


@dataclass
class ChainWalkEvent(Event):
    """Snake produced prefetch requests from one observed load: ``depth``
    is the deepest chain hop reached, ``requests`` the number of unique
    addresses generated (chain + intra-warp + inter-warp)."""

    warp_id: int = -1
    pc: int = -1
    depth: int = 0
    requests: int = 0

    kind = EventKind.CHAIN_WALK


@dataclass
class DramRowActivateEvent(Event):
    """A DRAM bank opened a new row (a row miss paid tRP+tRCD)."""

    channel: int = 0
    bank: int = 0
    row: int = 0

    kind = EventKind.DRAM_ROW_ACTIVATE


@dataclass
class L2AccessEvent(Event):
    """One request serviced by the shared L2 (in-flight merges count as
    hits, matching :class:`repro.gpusim.l2.L2Cache` accounting)."""

    line_addr: int = 0
    hit: bool = False

    kind = EventKind.L2_ACCESS


# ----------------------------------------------------------------------
# Closed vocabularies for the wall-clock lifecycle events.
#
# These tuples are the declaration point the SL802 lint rule harvests:
# every ``action=``/``phase=`` literal at a producer site (the scheduler's
# ``_emit_lease``/``_emit_job``, the server's ``_emit``) and every
# comparison at a consumer site must come from here.  Grow the vocabulary
# by editing these tuples (and the class docstrings below) — never by
# inventing a string at an emit site.

#: ``RunnerJobEvent.phase`` values
JOB_PHASES: Tuple[str, ...] = ("start", "retry", "done", "failed", "reused")

#: ``RunnerLeaseEvent.action`` values
LEASE_ACTIONS: Tuple[str, ...] = (
    "grant", "renew", "release", "expire", "steal", "duplicate",
    "quarantine", "drain",
)

#: ``ServeEvent.action`` values
SERVE_ACTIONS: Tuple[str, ...] = (
    "accept", "deny", "shed", "evict_slow", "evict_session",
    "breaker_open", "breaker_close", "malformed", "snapshot", "recover",
    "drain",
)


@dataclass
class RunnerJobEvent(Event):
    """One :mod:`repro.runner` job lifecycle transition.

    These live in the wall-clock domain, not simulated time: ``cycle`` is 0
    and ``sm_id`` is -1 (shared).  ``phase`` is ``start`` / ``retry`` /
    ``done`` / ``failed`` / ``reused``; ``error_kind`` names the taxonomy
    class on ``retry``/``failed`` (``JobTimeout``, ``JobCrash``,
    ``SimulationHang``, ``InvalidConfig``).  Sinks that only understand
    simulation events ignore the kind, by design.
    """

    key: str = ""
    app: str = ""
    mechanism: str = ""
    phase: str = "start"
    attempt: int = 1
    error_kind: str = ""
    elapsed_s: float = 0.0

    kind = EventKind.RUNNER_JOB


@dataclass
class RunnerLeaseEvent(Event):
    """One scheduler lease transition (see :mod:`repro.runner.scheduler`).

    Wall-clock domain like :class:`RunnerJobEvent` (``cycle`` 0, ``sm_id``
    -1).  ``action`` is ``grant`` / ``renew`` (a heartbeat landed) /
    ``release`` (result accepted) / ``expire`` (liveness window lapsed,
    job requeued as ``worker-lost``) / ``steal`` (an idle worker claimed
    a job from another worker's shard) / ``duplicate`` (a second result
    for an already-settled job was suppressed — the exactly-once dedup
    path) / ``quarantine`` (a job was poisoned, or a torn checkpoint
    record was diverted to ``<checkpoint>.corrupt``) / ``drain`` (the
    scheduler began a graceful shutdown).  ``worker`` is the worker slot
    (-1 = none), ``detail`` a human-readable specifics string.
    """

    key: str = ""
    worker: int = -1
    action: str = "grant"
    attempt: int = 1
    detail: str = ""

    kind = EventKind.RUNNER_LEASE


@dataclass
class ServeEvent(Event):
    """One :mod:`repro.serve` service lifecycle transition.

    Wall-clock domain like :class:`RunnerJobEvent` (``cycle`` 0, ``sm_id``
    -1).  ``action`` is ``accept`` / ``deny`` (admission control NACK) /
    ``shed`` (a request was load-shed with an explicit overload or
    deadline NACK) / ``evict_slow`` (a slow-loris client was
    disconnected) / ``evict_session`` (a learner session was evicted
    under memory pressure) / ``breaker_open`` / ``breaker_close`` (a
    learner shard's circuit breaker tripped or recovered) /
    ``malformed`` (a frame failed protocol validation) / ``snapshot``
    (durable state was checkpointed) / ``recover`` (state was rebuilt
    from snapshot + journal on startup) / ``drain`` (graceful shutdown
    began).  ``client`` is the session id ("" = service-wide), ``detail``
    a human-readable specifics string.
    """

    client: str = ""
    action: str = "accept"
    detail: str = ""

    kind = EventKind.SERVE


@dataclass
class FaultEvent(Event):
    """One chaos fault fired (see :mod:`repro.gpusim.faults`).

    ``site`` names the injection site (e.g. ``icnt.drop_fill``,
    ``dram.latency_spike``); ``detail`` carries the site-specific magnitude
    (delay cycles, evicted-line count, corrupted stride) as a string so the
    event stays flat and JSON-safe.  Faults are performance perturbations by
    construction — the sanitizer proves they never change correctness.
    """

    site: str = ""
    detail: str = ""

    kind = EventKind.FAULT


class Sink:
    """Consumer interface.  Sinks receive every event synchronously and
    must not mutate it (the same object is handed to every sink)."""

    def accept(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush any buffered state; called once by :meth:`EventBus.close`."""


class EventBus:
    """Synchronous fan-out bus.

    ``enabled`` is a plain attribute kept in sync with the sink list so
    emission sites can gate on it without a method call; a bus with no
    sinks behaves exactly like :data:`NULL_BUS`.
    """

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self._sinks: List[Sink] = list(sinks)
        self.enabled = bool(self._sinks)
        self.events_emitted = 0

    @property
    def sinks(self) -> List[Sink]:
        return list(self._sinks)

    def attach(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink: Sink) -> None:
        self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def emit(self, event: Event) -> None:
        self.events_emitted += 1
        for sink in self._sinks:
            sink.accept(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


class NullBus:
    """The disabled bus: emission sites see ``enabled`` False and skip
    event construction entirely.  ``emit`` still exists (and is a no-op)
    so un-guarded call sites fail soft rather than crash."""

    enabled = False

    def emit(self, event: Event) -> None:  # pragma: no cover - guard skips it
        pass

    def attach(self, sink: Sink) -> None:
        raise RuntimeError(
            "cannot attach a sink to NULL_BUS; construct an EventBus and "
            "pass it to GPU(obs=...) instead"
        )

    def close(self) -> None:
        pass


#: Shared disabled bus — the default wired into every component.
NULL_BUS = NullBus()

#: What components accept as their ``obs`` wiring: a live bus or the
#: shared disabled one.  Kept a Union (not a Protocol) so mypy flags a
#: third bus-like class sneaking in instead of structurally admitting it.
BusLike = Union[EventBus, NullBus]
