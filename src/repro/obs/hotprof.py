"""Per-component wall-time attribution for the simulator hot path.

``snake-repro profile --hot`` answers a different question than the
cycle-domain telemetry in this package: not "where do the *simulated*
cycles go" but "where does the *host's* wall time go".  It wraps the
four hot components the batched-path work optimises (see
docs/PERFORMANCE.md, "The batched hot path"):

* ``table-walk`` — the learner side: ``observe`` / ``observe_raw``
  (Head-table update, Tail CAM search, chain walk, request generation);
* ``issue``      — the L1 prefetch admission path
  (``prefetch_trigger`` / ``prefetch_batch`` / ``prefetch``);
* ``coalesce``   — warp-access-to-line flattening
  (``coalesce`` / ``coalesce_lines`` / ``coalesce_sectors``);
* ``cache``      — the demand side (``demand_load`` / ``demand_store``).

The buckets are disjoint by construction: the learner never calls into
the L1, the issue path receives already-coalesced lines, and demand
traffic bypasses all three others.  Whatever they do not cover is
reported as ``other`` (scheduling, the event core, trace bookkeeping).

Like :mod:`repro.bench`, this module lives in the wall-clock domain —
``time.perf_counter`` is the measurement, so it sits outside the SL101
determinism-lint scope.  The instrumentation itself costs a few percent
(one counter read per wrapped call); the table reports shares, which
are robust to that overhead, rather than absolute promises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

#: Attribution bucket -> the (component, method) pairs that feed it.
HOT_BUCKETS: Tuple[Tuple[str, str], ...] = (
    ("table-walk", "prefetcher.observe / observe_raw"),
    ("issue", "l1.prefetch_trigger / prefetch_batch / prefetch"),
    ("coalesce", "sm.coalesce / coalesce_lines / coalesce_sectors"),
    ("cache", "l1.demand_load / demand_store"),
)


@dataclass
class HotBucket:
    """Accumulated attribution for one component bucket."""

    name: str
    what: str
    calls: int = 0
    seconds: float = 0.0


@dataclass
class HotProfile:
    """The result of one attributed run."""

    app: str
    mechanism: str
    scale: float
    seed: int
    cycles: int
    instructions: int
    wall_s: float
    buckets: List[HotBucket] = field(default_factory=list)

    @property
    def attributed_s(self) -> float:
        return sum(bucket.seconds for bucket in self.buckets)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "mechanism": self.mechanism,
            "scale": self.scale,
            "seed": self.seed,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_s": round(self.wall_s, 4),
            "buckets": {
                bucket.name: {
                    "calls": bucket.calls,
                    "seconds": round(bucket.seconds, 4),
                }
                for bucket in self.buckets
            },
        }

    def render(self) -> str:
        lines = [
            "hot-path attribution: %s under %s (scale=%g seed=%d)"
            % (self.app, self.mechanism, self.scale, self.seed),
            "%d cycles, %d instructions, %.3fs wall"
            % (self.cycles, self.instructions, self.wall_s),
            "",
            "%-12s %10s %10s %7s  %s"
            % ("bucket", "calls", "seconds", "share", "what"),
        ]
        wall = self.wall_s or 1.0
        for bucket in self.buckets:
            lines.append(
                "%-12s %10d %10.4f %6.1f%%  %s"
                % (
                    bucket.name, bucket.calls, bucket.seconds,
                    100.0 * bucket.seconds / wall, bucket.what,
                )
            )
        other = max(0.0, self.wall_s - self.attributed_s)
        lines.append(
            "%-12s %10s %10.4f %6.1f%%  %s"
            % ("other", "-", other, 100.0 * other / wall,
               "event core, schedulers, DRAM/L2, bookkeeping")
        )
        return "\n".join(lines)


class _Meter:
    """Wraps one bound method; adds its wall time to a bucket.

    Timer overhead inside nested wrapped calls would double-count, but
    the wrapped components never call each other (module docstring), so
    plain additive accounting is exact up to counter-read cost.
    """

    def __init__(self, bucket: HotBucket, func: Callable[..., Any]) -> None:
        self.bucket = bucket
        self.func = func

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        start = time.perf_counter()
        try:
            return self.func(*args, **kwargs)
        finally:
            self.bucket.seconds += time.perf_counter() - start
            self.bucket.calls += 1


def _wrap(obj: Any, name: str, bucket: HotBucket) -> bool:
    func = getattr(obj, name, None)
    if func is None:
        return False
    setattr(obj, name, _Meter(bucket, func))
    return True


def hot_profile_run(
    app: str,
    mechanism: str = "snake",
    scale: float = 1.0,
    seed: int = 1,
    legacy_loop: bool = False,
) -> HotProfile:
    """Run one workload with the hot components instrumented.

    Telemetry stays *off*: the observability bus reroutes the issue path
    through its scalar event-interleaved lane, which is exactly the code
    this profile exists to attribute.  Module-level coalesce helpers are
    patched for the duration of the run and always restored.
    """
    from repro.gpusim import sm as sm_module
    from repro.gpusim.config import GPUConfig
    from repro.gpusim.gpu import GPU
    from repro.prefetch import build_setup
    from repro.workloads import build_kernel

    config = GPUConfig.scaled().with_(legacy_loop=legacy_loop)
    setup = build_setup(mechanism, config)
    kernel = build_kernel(app, scale=scale, seed=seed)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
    )

    buckets = [HotBucket(name, what) for name, what in HOT_BUCKETS]
    walk, issue, coalesce, cache = buckets
    for core in gpu.sms:
        _wrap(core.prefetcher, "observe", walk)
        _wrap(core.prefetcher, "observe_raw", walk)
        # The SM probes the raw lane once at construction; repoint it at
        # the wrapper (or the probe bypasses the meter entirely).
        if core._pf_observe_raw is not None:
            core._pf_observe_raw = core.prefetcher.observe_raw
        _wrap(core.l1, "prefetch_trigger", issue)
        _wrap(core.l1, "prefetch_batch", issue)
        _wrap(core.l1, "prefetch", issue)
        _wrap(core.l1, "demand_load", cache)
        _wrap(core.l1, "demand_store", cache)

    saved = {
        name: getattr(sm_module, name)
        for name in ("coalesce", "coalesce_lines", "coalesce_sectors")
    }
    for name, func in saved.items():
        setattr(sm_module, name, _Meter(coalesce, func))
    try:
        start = time.perf_counter()
        stats = gpu.run(kernel)
        wall = time.perf_counter() - start
    finally:
        for name, func in saved.items():
            setattr(sm_module, name, func)

    return HotProfile(
        app=app, mechanism=mechanism, scale=scale, seed=seed,
        cycles=stats.cycles, instructions=stats.instructions,
        wall_s=wall, buckets=buckets,
    )


__all__ = ["HOT_BUCKETS", "HotBucket", "HotProfile", "hot_profile_run"]
