"""Telemetry harness: run one workload with the full sink set attached.

This is the engine behind ``snake-repro trace`` and ``snake-repro
profile`` (see :mod:`repro.cli`); library users can call
:func:`traced_run` directly to get the sinks back for programmatic use::

    from repro.obs.runner import traced_run

    result = traced_run("lps", mechanism="snake", scale=0.5)
    print(result.pc_metrics.render_pc_table(top=10))
    result.chrome.export("lps.trace.json")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .events import EventBus

if TYPE_CHECKING:  # repro.obs must stay importable before gpusim loads
    from repro.gpusim.config import GPUConfig
from .sinks import ChromeTraceExporter, PCMetricsSink, TimeSeriesSampler


@dataclass
class TracedRun:
    """Everything one telemetry run produces."""

    app: str
    mechanism: str
    stats: "object"  # repro.gpusim.stats.SimStats
    bus: EventBus
    sampler: TimeSeriesSampler
    pc_metrics: PCMetricsSink
    chrome: Optional[ChromeTraceExporter]


def traced_run(
    app: str,
    mechanism: str = "snake",
    scale: float = 1.0,
    seed: int = 1,
    config: Optional["GPUConfig"] = None,
    bucket_cycles: int = 1000,
    chrome: bool = True,
) -> TracedRun:
    """Simulate ``app`` under ``mechanism`` with telemetry attached.

    Builds the kernel trace, wires an :class:`EventBus` carrying a
    :class:`TimeSeriesSampler`, a :class:`PCMetricsSink` and (optionally)
    a :class:`ChromeTraceExporter` into the GPU, runs to completion and
    returns the sinks alongside the aggregate stats.
    """
    # Imported here so `repro.obs` stays importable before the simulator
    # packages finish initialising (gpusim itself imports repro.obs).
    from repro.gpusim.config import GPUConfig
    from repro.gpusim.gpu import GPU
    from repro.prefetch import build_setup
    from repro.workloads import build_kernel

    config = config or GPUConfig.scaled()
    kernel = build_kernel(app, scale=scale, seed=seed)
    setup = build_setup(mechanism, config)

    sampler = TimeSeriesSampler(bucket_cycles=bucket_cycles)
    pc_metrics = PCMetricsSink()
    sinks = [sampler, pc_metrics]
    exporter = ChromeTraceExporter(bucket_cycles=bucket_cycles) if chrome else None
    if exporter is not None:
        sinks.append(exporter)
    bus = EventBus(sinks)

    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
        obs=bus,
    )
    stats = gpu.run(kernel)
    bus.close()
    return TracedRun(
        app=app,
        mechanism=mechanism,
        stats=stats,
        bus=bus,
        sampler=sampler,
        pc_metrics=pc_metrics,
        chrome=exporter,
    )
