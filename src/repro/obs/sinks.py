"""Built-in telemetry sinks.

Three consumers cover the paper's analysis axes:

* :class:`TimeSeriesSampler` — counters per N-cycle bucket (the Fig 3/4/5
  time axis the aggregate :class:`~repro.gpusim.stats.SimStats` cannot
  show).
* :class:`PCMetricsSink` — per-PC and per-warp aggregation (Figs 9-11's
  per-load view; the substrate of :func:`repro.analysis.profile.profile_kernel`).
* :class:`ChromeTraceExporter` — a ``chrome://tracing`` /
  ``ui.perfetto.dev`` JSON file with per-SM counter tracks and instant
  events for throttle halts.

Writing a new sink: subclass :class:`repro.obs.events.Sink`, dispatch on
``event.kind``, ignore kinds you do not handle (new kinds may appear), and
flush in ``close()``.  See ``docs/OBSERVABILITY.md`` for a worked example.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import Event, EventKind, Sink


class TimeSeriesSampler(Sink):
    """Windowed counters: events bucketed by ``cycle // bucket_cycles``.

    Counter names are stable strings (``l1_hit``, ``prefetch_issue``,
    ``throttle_block_bandwidth``, ...) so downstream plotting does not
    depend on event classes.  Buckets are attributed by *emission* cycle —
    a fill scheduled at cycle ``t`` lands in ``t``'s bucket even if the
    emitting component ran ahead of other SMs.
    """

    def __init__(self, bucket_cycles: int = 1000) -> None:
        if bucket_cycles < 1:
            raise ValueError("bucket_cycles must be >= 1")
        self.bucket_cycles = bucket_cycles
        self._counts: Dict[str, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._max_bucket = -1

    def _name(self, event: Event) -> Optional[str]:
        kind = event.kind
        if kind is EventKind.CACHE_ACCESS:
            return "l1_" + event.outcome
        if kind is EventKind.PREFETCH_ISSUE:
            return "prefetch_issue"
        if kind is EventKind.PREFETCH_FILL:
            return "prefetch_fill"
        if kind is EventKind.PREFETCH_USE:
            return "prefetch_use"
        if kind is EventKind.PREFETCH_DROP:
            return "prefetch_drop_" + event.reason
        if kind is EventKind.THROTTLE:
            return "throttle_block_" + event.reason
        if kind is EventKind.CHAIN_WALK:
            return "chain_walk"
        if kind is EventKind.DRAM_ROW_ACTIVATE:
            return "dram_row_activate"
        if kind is EventKind.L2_ACCESS:
            return "l2_hit" if event.hit else "l2_miss"
        return None

    def accept(self, event: Event) -> None:
        name = self._name(event)
        if name is None:
            return
        bucket = event.cycle // self.bucket_cycles
        self._counts[name][bucket] += 1
        if bucket > self._max_bucket:
            self._max_bucket = bucket

    def counters(self) -> List[str]:
        return sorted(self._counts)

    def total(self, counter: str) -> int:
        return sum(self._counts.get(counter, {}).values())

    def series(self, counter: str) -> List[Tuple[int, int]]:
        """Dense ``(bucket_start_cycle, count)`` pairs from bucket 0 to the
        last bucket any counter touched (so series line up for plotting)."""
        buckets = self._counts.get(counter, {})
        return [
            (b * self.bucket_cycles, buckets.get(b, 0))
            for b in range(self._max_bucket + 1)
        ]

    def as_dict(self) -> Dict[str, List[Tuple[int, int]]]:
        return {name: self.series(name) for name in self.counters()}

    def render_summary(self, top: int = 12) -> str:
        """Human-readable totals plus the peak bucket of each counter."""
        lines = [
            "time series (bucket = %d cycles)" % self.bucket_cycles,
            "%-28s %10s %16s" % ("counter", "total", "peak bucket"),
        ]
        ranked = sorted(self.counters(), key=self.total, reverse=True)
        for name in ranked[:top]:
            buckets = self._counts[name]
            peak = max(buckets, key=buckets.get)
            lines.append(
                "%-28s %10d %9d @%6d"
                % (name, self.total(name), buckets[peak], peak * self.bucket_cycles)
            )
        return "\n".join(lines)


@dataclass
class PCStats:
    """Aggregated behaviour of one static load PC."""

    pc: int
    accesses: int = 0  # line transactions, including replayed fails
    hits: int = 0
    misses: int = 0
    reserved: int = 0
    reservation_fails: int = 0
    covered: int = 0
    timely: int = 0
    prefetches_issued: int = 0  # predictions this PC triggered
    chain_walks: int = 0
    max_chain_depth: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def coverage(self) -> float:
        return self.covered / self.accesses if self.accesses else 0.0


@dataclass
class WarpStats:
    """Aggregated behaviour of one warp."""

    warp_id: int
    accesses: int = 0
    hits: int = 0
    covered: int = 0
    timely: int = 0
    pcs: set = field(default_factory=set)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def coverage(self) -> float:
        return self.covered / self.accesses if self.accesses else 0.0


class PCMetricsSink(Sink):
    """Per-PC and per-warp metric aggregation.

    Per-PC rows answer "which loads does the prefetcher cover?" (the
    question behind Figs 9-11); per-warp rows answer "is coverage uniform
    across warps or carried by the leaders?".
    """

    def __init__(self) -> None:
        self.per_pc: Dict[int, PCStats] = {}
        self.per_warp: Dict[int, WarpStats] = {}

    def accept(self, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.CACHE_ACCESS:
            pc = self.per_pc.get(event.pc)
            if pc is None:
                pc = self.per_pc[event.pc] = PCStats(pc=event.pc)
            pc.accesses += 1
            if event.outcome == "hit":
                pc.hits += 1
            elif event.outcome == "miss":
                pc.misses += 1
            elif event.outcome == "reserved":
                pc.reserved += 1
            else:
                pc.reservation_fails += 1
            pc.covered += event.covered
            pc.timely += event.timely

            warp = self.per_warp.get(event.warp_id)
            if warp is None:
                warp = self.per_warp[event.warp_id] = WarpStats(
                    warp_id=event.warp_id
                )
            warp.accesses += 1
            warp.hits += event.outcome == "hit"
            warp.covered += event.covered
            warp.timely += event.timely
            warp.pcs.add(event.pc)
        elif kind is EventKind.PREFETCH_ISSUE:
            pc = self.per_pc.get(event.pc)
            if pc is None:
                pc = self.per_pc[event.pc] = PCStats(pc=event.pc)
            pc.prefetches_issued += 1
        elif kind is EventKind.CHAIN_WALK:
            pc = self.per_pc.get(event.pc)
            if pc is None:
                pc = self.per_pc[event.pc] = PCStats(pc=event.pc)
            pc.chain_walks += 1
            if event.depth > pc.max_chain_depth:
                pc.max_chain_depth = event.depth

    def pcs_by_accesses(self) -> List[PCStats]:
        return sorted(self.per_pc.values(), key=lambda p: -p.accesses)

    def render_pc_table(self, top: Optional[int] = None) -> str:
        lines = [
            "%-10s %8s %7s %7s %7s %8s %8s %6s"
            % ("pc", "accesses", "hit%", "cover%", "timely%", "pf-issue",
               "walks", "depth")
        ]
        rows = self.pcs_by_accesses()
        for row in rows[:top] if top else rows:
            lines.append(
                "%-10s %8d %6.1f%% %6.1f%% %6.1f%% %8d %8d %6d"
                % (
                    hex(row.pc),
                    row.accesses,
                    100 * row.hit_rate,
                    100 * row.coverage,
                    100 * (row.timely / row.accesses if row.accesses else 0),
                    row.prefetches_issued,
                    row.chain_walks,
                    row.max_chain_depth,
                )
            )
        return "\n".join(lines)

    def render_warp_table(self, top: Optional[int] = None) -> str:
        lines = [
            "%-8s %8s %7s %7s %5s"
            % ("warp", "accesses", "hit%", "cover%", "pcs")
        ]
        rows = sorted(self.per_warp.values(), key=lambda w: -w.accesses)
        for row in rows[:top] if top else rows:
            lines.append(
                "%-8d %8d %6.1f%% %6.1f%% %5d"
                % (
                    row.warp_id,
                    row.accesses,
                    100 * row.hit_rate,
                    100 * row.coverage,
                    len(row.pcs),
                )
            )
        return "\n".join(lines)


class ChromeTraceExporter(Sink):
    """Export the event stream as Chrome-trace JSON.

    Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.  The
    layout: one *process* per SM (pid = sm_id + 1; pid 0 holds the shared
    L2/DRAM), counter tracks ("C" phase) sampled per bucket for the cache /
    prefetch / memory rates, and instant events ("i" phase) for throttle
    blocks.  Timestamps are core cycles reported as microseconds (Chrome's
    native unit) — relative spacing is what matters.

    ``max_events`` bounds the output; once the cap is reached further
    instants are dropped (counter tracks keep accumulating, they are
    bucketed).  The drop count is reported in the trace metadata so a
    truncated trace is visibly truncated.
    """

    _COUNTER_TRACKS = {
        EventKind.CACHE_ACCESS: "L1 accesses",
        EventKind.PREFETCH_ISSUE: "prefetch",
        EventKind.PREFETCH_FILL: "prefetch",
        EventKind.PREFETCH_USE: "prefetch",
        EventKind.PREFETCH_DROP: "prefetch",
        EventKind.L2_ACCESS: "L2 accesses",
        EventKind.DRAM_ROW_ACTIVATE: "DRAM",
        EventKind.CHAIN_WALK: "chain walks",
    }

    def __init__(self, bucket_cycles: int = 1000, max_events: int = 200000) -> None:
        if bucket_cycles < 1:
            raise ValueError("bucket_cycles must be >= 1")
        self.bucket_cycles = bucket_cycles
        self.max_events = max_events
        # (pid, track, series) -> {bucket: count}
        self._buckets: Dict[Tuple[int, str, str], Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._instants: List[dict] = []
        self.dropped_instants = 0

    def _series(self, event: Event) -> Optional[str]:
        kind = event.kind
        if kind is EventKind.CACHE_ACCESS:
            return event.outcome
        if kind is EventKind.PREFETCH_ISSUE:
            return "issue"
        if kind is EventKind.PREFETCH_FILL:
            return "fill"
        if kind is EventKind.PREFETCH_USE:
            return "use"
        if kind is EventKind.PREFETCH_DROP:
            return "drop"
        if kind is EventKind.L2_ACCESS:
            return "hit" if event.hit else "miss"
        if kind is EventKind.DRAM_ROW_ACTIVATE:
            return "row_activate"
        if kind is EventKind.CHAIN_WALK:
            return "walks"
        return None

    def accept(self, event: Event) -> None:
        track = self._COUNTER_TRACKS.get(event.kind)
        if track is not None:
            series = self._series(event)
            bucket = event.cycle // self.bucket_cycles
            self._buckets[(event.sm_id + 1, track, series)][bucket] += 1
            return
        if event.kind is EventKind.THROTTLE:
            if len(self._instants) >= self.max_events:
                self.dropped_instants += 1
                return
            self._instants.append(
                {
                    "name": "throttle:" + event.reason,
                    "ph": "i",
                    "ts": event.cycle,
                    "pid": event.sm_id + 1,
                    "tid": 0,
                    "s": "t",
                    "args": {"utilization": round(event.utilization, 4)},
                }
            )

    def trace_events(self) -> List[dict]:
        """The ``traceEvents`` array (also what :meth:`export` writes)."""
        events: List[dict] = []
        pids = {pid for pid, _, _ in self._buckets} | {
            e["pid"] for e in self._instants
        }
        for pid in sorted(pids):
            name = "shared L2/DRAM" if pid == 0 else "SM %d" % (pid - 1)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        # Group counter samples: one "C" event per (pid, track, bucket)
        # carrying every series of that track in args.
        grouped: Dict[Tuple[int, str, int], Dict[str, int]] = defaultdict(dict)
        for (pid, track, series), buckets in self._buckets.items():
            for bucket, count in buckets.items():
                grouped[(pid, track, bucket)][series] = count
        for (pid, track, bucket) in sorted(grouped):
            events.append(
                {
                    "name": track,
                    "ph": "C",
                    "ts": bucket * self.bucket_cycles,
                    "pid": pid,
                    "tid": 0,
                    "args": grouped[(pid, track, bucket)],
                }
            )
        events.extend(sorted(self._instants, key=lambda e: e["ts"]))
        return events

    def as_dict(self) -> dict:
        return {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "snake-repro trace",
                "bucket_cycles": self.bucket_cycles,
                "dropped_instants": self.dropped_instants,
            },
        }

    def export(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh)
