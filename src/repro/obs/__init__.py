"""Observability layer: cycle-level event tracing for the simulator.

The package has three parts (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.events` — the typed event vocabulary and the
  :class:`EventBus` the simulator emits into.  Every emission site in the
  timing model is guarded by ``bus.enabled``, so a disabled bus (the
  default :data:`NULL_BUS`) costs one attribute check per would-be event.
* :mod:`repro.obs.sinks` — pluggable consumers: a windowed time-series
  sampler, a per-PC/per-warp metrics aggregator, and a
  ``chrome://tracing`` JSON exporter.
* :mod:`repro.obs.runner` — convenience harness behind the
  ``snake-repro trace`` / ``snake-repro profile`` CLI commands.
"""

from .events import (
    CacheAccessEvent,
    ChainWalkEvent,
    DramRowActivateEvent,
    Event,
    EventBus,
    EventKind,
    L2AccessEvent,
    NULL_BUS,
    NullBus,
    PrefetchDropEvent,
    PrefetchFillEvent,
    PrefetchIssueEvent,
    PrefetchUseEvent,
    Sink,
    ThrottleEvent,
)
from .sinks import ChromeTraceExporter, PCMetricsSink, TimeSeriesSampler

__all__ = [
    "CacheAccessEvent",
    "ChainWalkEvent",
    "ChromeTraceExporter",
    "DramRowActivateEvent",
    "Event",
    "EventBus",
    "EventKind",
    "L2AccessEvent",
    "NULL_BUS",
    "NullBus",
    "PCMetricsSink",
    "PrefetchDropEvent",
    "PrefetchFillEvent",
    "PrefetchIssueEvent",
    "PrefetchUseEvent",
    "Sink",
    "ThrottleEvent",
    "TimeSeriesSampler",
]
