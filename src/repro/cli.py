"""Command-line entry point: regenerate any of the paper's experiments,
or trace/profile a single workload through the telemetry layer.

Usage::

    snake-repro list                 # show available experiments
    snake-repro fig16                # coverage of the ten mechanisms
    snake-repro fig23 --scale 0.5    # faster, smaller traces
    snake-repro all                  # everything (slow)

    snake-repro trace lps            # Chrome-trace JSON + per-PC metrics
    snake-repro profile histo        # per-PC / per-warp metric tables

    snake-repro sweep --jobs 4 --timeout 600 \
        --checkpoint sweep.jsonl     # fault-tolerant parallel grid
    snake-repro sweep --resume --checkpoint sweep.jsonl
    snake-repro sweep --sanitize     # audit conservation invariants too
    snake-repro sweep --lease 10 --drain-timeout 60   # lease tuning; ^C
                                     # drains in-flight jobs gracefully

    snake-repro chaos --seed 0       # seeded fault injection + sanitizer
    snake-repro chaos --runner       # chaos the sweep scheduler itself:
                                     # worker kills, heartbeat stalls,
                                     # transport faults, SIGKILL+--resume;
                                     # results must be byte-identical

    snake-repro bench                # simulator-performance suite
    snake-repro bench --quick --check   # CI regression gate vs BENCH_*.json

    snake-repro lint --baseline      # simulator-aware static analysis
    snake-repro lint --rule SL101    # one rule; --json for CI tooling

    snake-repro serve --data-dir d   # online prediction service (WAL +
                                     # snapshots; SIGTERM drains cleanly)
    snake-repro serve --loadgen --clients 1000   # replay the suite as
                                     # concurrent clients; certifies the
                                     # zero-silent-drop contract
    snake-repro serve --chaos        # misbehaving clients + SIGKILL +
                                     # torn journal; recovery certificate

(The ``repro`` entry point is an alias of ``snake-repro``.)  ``trace``
and ``profile`` run one workload with the :mod:`repro.obs` telemetry bus
attached — see ``docs/OBSERVABILITY.md`` for the full walkthrough.
``sweep`` runs the comparison grid through the crash-isolated
:mod:`repro.runner`; ``chaos`` runs seeded fault plans through the
simulator with the conservation sanitizer armed and asserts the
demand-visible outcome matches a fault-free run — see
``docs/ROBUSTNESS.md``.  ``bench`` measures the simulator itself (wall
time, cycles/sec, event-core speedup vs the ``--legacy-loop`` reference)
and gates regressions against the committed ``BENCH_<date>.json``
baseline — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.analysis import experiments, report


def _series(fn, title, percent=True):
    def run(scale: float, seed: int) -> str:
        return report.render_series(title, fn(scale=scale, seed=seed), percent=percent)

    return run


def _matrix(fn, title, percent=True):
    def run(scale: float, seed: int) -> str:
        return report.render_matrix(title, fn(scale=scale, seed=seed), percent=percent)

    return run


def _fig20(scale: float, seed: int) -> str:
    return report.render_sweep(
        "Fig 20: coverage vs Tail entries (LRU+popcount eviction)",
        experiments.figure20(scale=scale, seed=seed),
        x_label="entries",
        percent=True,
    )


def _fig21(scale: float, seed: int) -> str:
    return report.render_sweep(
        "Fig 21: hardware cost (bytes/SM) vs Tail entries",
        experiments.figure21(),
        x_label="entries",
    )


def _fig22(scale: float, seed: int) -> str:
    return report.render_sweep(
        "Fig 22: coverage vs Tail entries (popcount-only eviction)",
        experiments.figure22(scale=scale, seed=seed),
        x_label="entries",
        percent=True,
    )


def _fig23(scale: float, seed: int) -> str:
    return report.render_pairs(
        "Fig 23: throttling interval trade-off",
        experiments.figure23(scale=scale, seed=seed),
        labels=["coverage", "accuracy"],
        x_label="cycles",
        percent=True,
    )


def _fig24(scale: float, seed: int) -> str:
    data = experiments.figure24(scale=scale, seed=seed)
    flat = {
        frac: (
            values["tiled"][0],
            values["tiled"][1],
            values["snake+tiled"][0],
            values["snake+tiled"][1],
        )
        for frac, values in data.items()
    }
    return report.render_pairs(
        "Fig 24: tiling with/without Snake (vs untiled baseline)",
        flat,
        labels=["tiled-ipc", "tiled-en", "fused-ipc", "fused-en"],
        x_label="tile",
    )


def _table3(scale: float, seed: int) -> str:
    data = experiments.table3()
    lines = ["Table 3: Snake's table parameters", "-" * 40]
    for name, fields in data.items():
        lines.append(
            "%-5s %3d bytes/entry x %3d entries = %4d bytes"
            % (name, fields["bytes_per_entry"], fields["entries"], fields["total_bytes"])
        )
    return "\n".join(lines)


EXPERIMENTS: Dict[str, Callable[[float, int], str]] = {
    "fig3": _series(experiments.figure3, "Fig 3: reservation-fail rate (baseline)"),
    "fig4": _series(experiments.figure4, "Fig 4: NoC bandwidth utilization (baseline)"),
    "fig5": _series(experiments.figure5, "Fig 5: memory-stall fraction (baseline)"),
    "fig6": _matrix(experiments.figure6, "Fig 6: coverage vs the Ideal prefetcher"),
    "fig9": _series(experiments.figure9, "Fig 9: chain PC_ld fraction"),
    "fig10": _series(
        experiments.figure10, "Fig 10: max chain repetition", percent=False
    ),
    "fig11": _matrix(experiments.figure11, "Fig 11: chain- vs MTA-prefetchable"),
    "fig16": _matrix(experiments.figure16, "Fig 16: prefetch coverage"),
    "fig17": _matrix(experiments.figure17, "Fig 17: prefetch accuracy (timely)"),
    "fig18": _matrix(
        experiments.figure18, "Fig 18: IPC vs baseline", percent=False
    ),
    "fig19": _matrix(
        experiments.figure19, "Fig 19: energy vs baseline", percent=False
    ),
    "fig20": _fig20,
    "fig21": _fig21,
    "fig22": _fig22,
    "fig23": _fig23,
    "fig24": _fig24,
    "fig25": _matrix(experiments.figure25, "Fig 25: L1 hit rate"),
    "table3": _table3,
}


#: Raw (un-rendered) data producers for --csv/--json export.
RAW_EXPERIMENTS = {
    "fig3": experiments.figure3,
    "fig4": experiments.figure4,
    "fig5": experiments.figure5,
    "fig6": experiments.figure6,
    "fig9": experiments.figure9,
    "fig10": experiments.figure10,
    "fig11": experiments.figure11,
    "fig16": experiments.figure16,
    "fig17": experiments.figure17,
    "fig18": experiments.figure18,
    "fig19": experiments.figure19,
    "fig20": lambda scale, seed: experiments.figure20(scale=scale, seed=seed),
    "fig22": lambda scale, seed: experiments.figure22(scale=scale, seed=seed),
    "fig23": lambda scale, seed: experiments.figure23(scale=scale, seed=seed),
    "fig24": lambda scale, seed: experiments.figure24(scale=scale, seed=seed),
    "fig25": experiments.figure25,
    "fig21": lambda scale, seed: experiments.figure21(),
    "table3": lambda scale, seed: experiments.table3(),
}


def _obs_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro " + command,
        description="Run one workload with the repro.obs telemetry bus "
        "attached and report %s."
        % (
            "a Chrome-trace JSON plus per-PC metrics"
            if command == "trace"
            else "per-PC and per-warp metric tables"
        ),
    )
    parser.add_argument("app", help="workload name (see repro.workloads)")
    parser.add_argument(
        "--mechanism", default="snake", help="prefetcher configuration"
    )
    parser.add_argument("--scale", type=float, default=1.0, help="trace-size multiplier")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--bucket", type=int, default=None,
        help="time-series bucket width in cycles "
        "(default: GPUConfig.telemetry_bucket_cycles)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="rows per metrics table"
    )
    parser.add_argument(
        "--legacy-loop", action="store_true",
        help="run on the reference step-every-cycle loop instead of the "
        "event-driven core (differential testing; stats must be identical)",
    )
    if command == "trace":
        parser.add_argument(
            "--out", metavar="PATH", default=None,
            help="Chrome-trace JSON path (default <app>.trace.json)",
        )
    else:
        parser.add_argument(
            "--hot", action="store_true",
            help="attribute host wall time to the hot components "
            "(table-walk / issue / coalesce / cache) instead of "
            "reporting cycle-domain metrics; see docs/OBSERVABILITY.md",
        )
    return parser


def _run_obs_command(command: str, argv) -> int:
    from repro.gpusim.config import GPUConfig
    from repro.obs.runner import traced_run

    args = _obs_parser(command).parse_args(argv)
    if command == "profile" and args.hot:
        from repro.obs.hotprof import hot_profile_run

        try:
            profile = hot_profile_run(
                args.app, mechanism=args.mechanism, scale=args.scale,
                seed=args.seed, legacy_loop=args.legacy_loop,
            )
        except (KeyError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(profile.render())
        return 0
    bucket = (
        args.bucket
        if args.bucket is not None
        else GPUConfig().telemetry_bucket_cycles
    )
    config = (
        GPUConfig.scaled().with_(legacy_loop=True) if args.legacy_loop else None
    )
    try:
        result = traced_run(
            args.app,
            mechanism=args.mechanism,
            scale=args.scale,
            seed=args.seed,
            config=config,
            bucket_cycles=bucket,
            chrome=command == "trace",
        )
    except (KeyError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    print("%s under %s (scale=%g seed=%d)" % (
        args.app, args.mechanism, args.scale, args.seed
    ))
    for key, value in result.stats.as_dict().items():
        print("  %-24s %.4f" % (key, value))
    print()
    print("per-PC metrics")
    print(result.pc_metrics.render_pc_table(top=args.top))
    print()
    if command == "trace":
        out = args.out or "%s.trace.json" % args.app
        result.chrome.export(out)
        print(result.sampler.render_summary())
        print()
        print("chrome trace written to %s (open at chrome://tracing or "
              "https://ui.perfetto.dev)" % out)
    else:
        print("per-warp metrics")
        print(result.pc_metrics.render_warp_table(top=args.top))
    return 0


def _sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro sweep",
        description="Run the (app x mechanism) comparison grid through the "
        "fault-tolerant runner: crash-isolated parallel workers, per-job "
        "timeouts, atomic JSONL checkpointing and --resume.  See "
        "docs/ROBUSTNESS.md.",
    )
    parser.add_argument(
        "--apps", default=None,
        help="comma-separated workload names (default: all benchmarks)",
    )
    parser.add_argument(
        "--mechanisms", default=None,
        help="comma-separated mechanisms (default: none + all comparison points)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel worker processes (default: min(4, cores-1); 0 = in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max attempts for a crashed job (default: 2)",
    )
    parser.add_argument(
        "--lease", type=float, default=None, metavar="S",
        help="worker liveness lease in seconds: a worker silent longer "
        "than this loses its job to another worker (default: 15)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="on SIGINT/SIGTERM, how long to let in-flight jobs finish "
        "and checkpoint before killing them (default: 30)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSONL checkpoint file (enables --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse finished jobs from --checkpoint instead of starting fresh",
    )
    parser.add_argument(
        "--retry-failed", action="store_true",
        help="with --resume, re-run jobs whose checkpoint record is a failure",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="trace-size multiplier")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="audit conservation invariants during every simulation "
        "(a violation fails the cell as FAILED(invariant:<name>))",
    )
    parser.add_argument("--csv", metavar="PATH", help="export the IPC matrix as CSV")
    parser.add_argument("--json", metavar="PATH", help="export the IPC matrix as JSON")
    return parser


def _run_sweep_command(argv) -> int:
    import signal as signal_module

    from repro.prefetch import COMPARISON_POINTS
    from repro.runner import Checkpoint, Scheduler, default_jobs, grid_specs
    from repro.workloads import BENCHMARKS

    args = _sweep_parser().parse_args(argv)
    apps = (
        [a for a in args.apps.split(",") if a]
        if args.apps else list(BENCHMARKS)
    )
    mechanisms = (
        [m for m in args.mechanisms.split(",") if m]
        if args.mechanisms else ["none"] + COMPARISON_POINTS
    )
    if args.resume and not args.checkpoint:
        print("error: --resume needs --checkpoint PATH", file=sys.stderr)
        return 2
    jobs = default_jobs() if args.jobs is None else args.jobs

    config = None
    if args.sanitize:
        from repro.gpusim.config import GPUConfig

        config = GPUConfig.scaled().with_(sanitize=True)
    specs = grid_specs(
        apps, mechanisms, config=config, scale=args.scale, seed=args.seed
    )
    print(
        "sweep: %d cells (%s x %s), %d worker%s%s"
        % (
            len(specs), ",".join(apps), ",".join(mechanisms), jobs,
            "" if jobs == 1 else "s",
            " [resuming %s]" % args.checkpoint if args.resume else "",
        )
    )

    def progress(key, spec, outcome):
        if getattr(outcome, "failed", False):
            print("  ! %-28s %s" % (spec.label(), outcome))
        else:
            print("  . %-28s ipc=%.3f" % (spec.label(), outcome.ipc))

    try:
        ckpt = Checkpoint.load(args.checkpoint) if args.checkpoint else None
        scheduler = Scheduler(
            specs,
            jobs=jobs,
            timeout=args.timeout,
            retries=args.retries,
            lease_s=args.lease,
            drain_timeout_s=args.drain_timeout,
            checkpoint=ckpt,
            resume=args.resume,
            retry_failed=args.retry_failed,
            on_result=progress,
        )

        def _drain_handler(signum, frame):
            # First signal: graceful drain (finish in-flight cells, flush
            # the checkpoint).  Restore the previous handler so a second
            # signal aborts hard, the traditional way.
            print(
                "\nsignal: draining in-flight jobs "
                "(repeat to abort immediately)...",
                file=sys.stderr,
            )
            scheduler.request_drain()
            signal_module.signal(signum, previous.get(signum, signal_module.SIG_DFL))

        previous = {}
        hooked = []
        for sig in (signal_module.SIGINT, signal_module.SIGTERM):
            try:
                previous[sig] = signal_module.signal(sig, _drain_handler)
                hooked.append(sig)
            except (OSError, ValueError):
                pass  # non-main thread / exotic platform: drain via API only
        try:
            result = scheduler.run()
        finally:
            for sig in hooked:
                signal_module.signal(sig, previous[sig])
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    if result.drained:
        print()
        print(
            "sweep drained after signal: %d cells finished this run, "
            "%d still pending" % (result.executed, result.remaining)
        )
        if args.checkpoint:
            print(
                "resume with: snake-repro sweep --resume --checkpoint %s"
                % args.checkpoint
            )
        else:
            print("(no --checkpoint given, so the pending cells start over)")
        return 4

    sweep = result.cells()
    print()
    print(report.render_matrix(
        "Sweep: prefetch coverage", experiments.figure16_from(sweep), percent=True
    ))
    print()
    ipc = experiments.figure18_from(sweep)
    if any(ipc.values()):
        print(report.render_matrix(
            "Sweep: IPC vs baseline", ipc, percent=False
        ))
        print()
    if args.csv or args.json:
        from repro.analysis import export

        data = ipc if any(ipc.values()) else experiments.figure16_from(sweep)
        if args.csv:
            export.to_csv(data, args.csv)
        if args.json:
            export.to_json(data, args.json)
    print(
        "sweep: %d jobs (%d executed, %d reused), %d failed"
        % (len(result.results), result.executed, result.reused, result.failed)
    )
    if not result.ok:
        for key, res in result.results.items():
            if getattr(res, "failed", False):
                print("  FAILED %-28s %s" % (result.specs[key].label(), res.message))
        return 3
    return 0


def _chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro chaos",
        description="Correctness-under-faults harness.  Default mode: run "
        "each app under seeded fault plans (repro.gpusim.faults) with the "
        "conservation sanitizer armed, and assert the demand-visible "
        "outcome (committed instructions, finished warps) matches a "
        "fault-free run.  With --runner the faults target the sweep "
        "scheduler instead (worker kills, heartbeat stalls, transport "
        "drop/delay/duplicate, torn checkpoint writes, a real scheduler "
        "SIGKILL + --resume) and the assertion is byte-identical sweep "
        "results.  Faults may only cost time, never results.  See "
        "docs/ROBUSTNESS.md.",
    )
    parser.add_argument(
        "--runner", action="store_true",
        help="inject faults into the sweep scheduler/worker plane instead "
        "of the simulator, asserting byte-identical sweep outputs",
    )
    parser.add_argument(
        "--runner-jobs", type=int, default=2, metavar="N",
        help="worker processes for the --runner kill/resume scenario "
        "(default: 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="with --runner: skip the subprocess scheduler-SIGKILL + "
        "--resume scenario (virtual-clock plans only)",
    )
    parser.add_argument(
        "--apps", default="lps,hotspot,backprop",
        help="comma-separated workload names (default: lps,hotspot,backprop)",
    )
    parser.add_argument(
        "--mechanism", default="snake", help="prefetcher configuration"
    )
    parser.add_argument(
        "--sites", default="all",
        help="'all' (each site separately + the all-sites storm), 'storm' "
        "(the combined plan only), or a comma-separated site list",
    )
    parser.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    parser.add_argument(
        "--workload-seed", type=int, default=1, help="workload trace seed"
    )
    parser.add_argument(
        "--scale", type=float, default=0.25, help="trace-size multiplier"
    )
    parser.add_argument(
        "--delay-cycles", type=int, default=400,
        help="nominal magnitude for delay/spike faults (default: 400)",
    )
    return parser


def _runner_chaos_plans(args):
    """Resolve --sites into RunnerFaultPlans (or an error string)."""
    from repro.gpusim.faults import RUNNER_DEFAULT_RATES, RUNNER_SITES, RunnerFaultPlan

    if args.sites == "all":
        plans = [
            RunnerFaultPlan.single(site, seed=args.seed) for site in RUNNER_SITES
        ]
        plans.append(RunnerFaultPlan.storm(seed=args.seed))
        return plans, None
    if args.sites == "storm":
        return [RunnerFaultPlan.storm(seed=args.seed)], None
    sites = [s for s in args.sites.split(",") if s]
    unknown = [s for s in sites if s not in RUNNER_SITES]
    if unknown:
        return None, "unknown runner fault site(s) %s (known: %s)" % (
            ",".join(unknown), ",".join(RUNNER_SITES),
        )
    return [
        RunnerFaultPlan.make(
            {s: RUNNER_DEFAULT_RATES[s] for s in sites}, seed=args.seed
        )
    ], None


def _run_runner_chaos(args) -> int:
    """``snake-repro chaos --runner``: prove that any seeded schedule of
    scheduler/worker/transport faults — and a real scheduler SIGKILL with
    ``--resume`` — yields byte-identical sweep results to a fault-free run."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.analysis import export
    from repro.gpusim.faults import RunnerFaultInjector
    from repro.runner import Checkpoint, grid_specs
    from repro.runner.scheduler import DEFAULT_RETRIES, Scheduler
    from repro.runner.transport import InlineTransport, VirtualClock

    apps = [a for a in args.apps.split(",") if a]
    plans, problem = _runner_chaos_plans(args)
    if problem:
        print("error: %s" % problem, file=sys.stderr)
        return 2
    specs = grid_specs(
        apps, [args.mechanism], scale=args.scale, seed=args.workload_seed
    )
    workdir = Path(tempfile.mkdtemp(prefix="snake-chaos-runner-"))

    def run_sweep(checkpoint_path, injector=None):
        plan = injector.plan if injector is not None else None
        transport = InlineTransport(workers=2, faults=injector)
        return Scheduler(
            specs,
            transport=transport,
            retries=max(DEFAULT_RETRIES, plan.max_per_job if plan else 0),
            backoff_s=0.01,
            # The lease must be shorter than the shortest heartbeat stall
            # (2 * delay_s) or stalls would just look like slow jobs.
            lease_s=plan.delay_s if plan else 0.0,
            max_losses=(plan.max_per_job + 1) if plan else 3,
            checkpoint=Checkpoint(checkpoint_path),
            clock=VirtualClock(),
            faults=injector,
        ).run()

    def canonical(checkpoint_path):
        return Checkpoint.load(checkpoint_path).canonical_bytes()

    def figure_csv(result, path):
        export.to_csv(experiments.figure16_from(result.cells()), str(path))
        return Path(path).read_bytes()

    try:
        reference_ck = workdir / "reference.jsonl"
        reference = run_sweep(reference_ck)
        if not reference.ok:
            print(
                "error: the fault-free reference sweep itself failed "
                "(%d cells); fix that first" % reference.failed,
                file=sys.stderr,
            )
            return 2
        reference_bytes = canonical(reference_ck)
        reference_csv = figure_csv(reference, workdir / "reference.csv")
        print(
            "runner chaos: %d cells (%s x %s), reference canonicalized "
            "(%d records)"
            % (len(specs), ",".join(apps), args.mechanism, len(reference.results))
        )

        mismatches = 0
        for plan in plans:
            injector = RunnerFaultInjector(plan)
            ck = workdir / ("faulted-%s.jsonl" % plan.label().replace("+", "_"))
            result = run_sweep(ck, injector=injector)
            identical = (
                canonical(ck) == reference_bytes
                and figure_csv(result, ck.with_suffix(".csv")) == reference_csv
            )
            fired = ", ".join(
                "%s x%d" % (site, count)
                for site, count in injector.summary().items() if count
            ) or "no faults fired"
            ledger = "losses=%d dup=%d steals=%d" % (
                result.losses, result.duplicates, result.steals,
            )
            if identical and result.ok:
                print("  . %-28s %s; %s; byte-identical"
                      % (plan.label(), fired, ledger))
            else:
                mismatches += 1
                print("  ! %-28s %s; %s; DIVERGED (ok=%s)"
                      % (plan.label(), fired, ledger, result.ok))

        if not args.quick:
            mismatches += _runner_kill_resume(
                args, specs, reference_bytes, reference_csv, workdir,
                canonical, figure_csv,
            )

        print()
        verdict = "byte-identical under every plan" if not mismatches else (
            "%d scenario(s) DIVERGED" % mismatches
        )
        print("runner chaos: %d plan(s)%s, %s" % (
            len(plans), "" if args.quick else " + scheduler-kill/resume", verdict,
        ))
        return 0 if not mismatches else 3
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _runner_kill_resume(args, specs, reference_bytes, reference_csv,
                        workdir, canonical, figure_csv) -> int:
    """SIGKILL a real sweep subprocess mid-run, tear its checkpoint's
    trailing record, then ``--resume``; returns 0 if byte-identical."""
    import os
    import signal as signal_module
    import subprocess
    import time as time_module
    from pathlib import Path

    import repro
    from repro.runner import Checkpoint
    from repro.runner.scheduler import Scheduler

    ck = workdir / "killed.jsonl"
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "repro.cli", "sweep",
        "--apps", args.apps, "--mechanisms", args.mechanism,
        "--jobs", str(max(1, args.runner_jobs)),
        "--scale", str(args.scale), "--seed", str(args.workload_seed),
        "--checkpoint", str(ck),
    ]
    proc = subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    # Kill the scheduler the instant the first record lands — maximally
    # mid-sweep: some cells durable, some in flight, some unstarted.
    deadline = time_module.time() + 300
    while time_module.time() < deadline:
        if ck.exists() and ck.read_bytes().count(b"\n") >= 1:
            break
        if proc.poll() is not None:
            break
        time_module.sleep(0.02)
    killed_midway = proc.poll() is None
    if killed_midway:
        proc.send_signal(signal_module.SIGKILL)
    proc.wait()

    torn = ck.exists()
    if torn:
        Checkpoint(ck).tear()  # a writer died mid-append, says the disk

    checkpoint = Checkpoint.load(ck)
    resumed = Scheduler(
        specs, jobs=0, checkpoint=checkpoint, resume=True,
    ).run()
    identical = (
        canonical(ck) == reference_bytes
        and figure_csv(resumed, workdir / "resumed.csv") == reference_csv
    )
    quarantine_ok = (not torn) or (
        checkpoint.quarantined == 1 and checkpoint.corrupt_path.exists()
    )
    status = []
    status.append(
        "SIGKILL mid-sweep" if killed_midway else "sweep finished before kill"
    )
    status.append("torn record quarantined" if (torn and quarantine_ok)
                  else ("no checkpoint to tear" if not torn else
                        "TORN RECORD NOT QUARANTINED"))
    status.append("%d reused, %d re-run" % (resumed.reused, resumed.executed))
    if identical and quarantine_ok:
        print("  . %-28s %s; byte-identical"
              % ("scheduler-kill+resume", "; ".join(status)))
        return 0
    print("  ! %-28s %s; DIVERGED" % ("scheduler-kill+resume", "; ".join(status)))
    return 1


def _run_chaos_command(argv) -> int:
    from repro.gpusim import (
        FaultInjector,
        FaultPlan,
        GPUConfig,
        InvariantViolationError,
        simulate,
    )
    from repro.gpusim.faults import DEFAULT_RATES, SITES
    from repro.workloads import build_kernel

    args = _chaos_parser().parse_args(argv)
    if args.runner:
        return _run_runner_chaos(args)
    apps = [a for a in args.apps.split(",") if a]
    if args.sites == "all":
        plans = [
            FaultPlan.single(site, seed=args.seed, delay_cycles=args.delay_cycles)
            for site in SITES
        ]
        plans.append(FaultPlan.storm(seed=args.seed, delay_cycles=args.delay_cycles))
    elif args.sites == "storm":
        plans = [FaultPlan.storm(seed=args.seed, delay_cycles=args.delay_cycles)]
    else:
        sites = [s for s in args.sites.split(",") if s]
        unknown = [s for s in sites if s not in SITES]
        if unknown:
            print(
                "error: unknown fault site(s) %s (known: %s)"
                % (",".join(unknown), ",".join(SITES)),
                file=sys.stderr,
            )
            return 2
        plans = [
            FaultPlan.make(
                {s: DEFAULT_RATES[s] for s in sites},
                seed=args.seed, delay_cycles=args.delay_cycles,
            )
        ]

    config = GPUConfig.scaled().with_(sanitize=True)
    divergences = 0
    violations = 0
    total_fired = 0
    for app in apps:
        try:
            kernel = build_kernel(app, scale=args.scale, seed=args.workload_seed)
            baseline = simulate(kernel, prefetcher=args.mechanism, config=config)
        except (KeyError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(
            "%s/%s fault-free: %d instructions, %d warps, %d cycles"
            % (app, args.mechanism, baseline.instructions,
               baseline.warps_finished, baseline.cycles)
        )
        for plan in plans:
            injector = FaultInjector(plan)
            kernel = build_kernel(app, scale=args.scale, seed=args.workload_seed)
            try:
                stats = simulate(
                    kernel, prefetcher=args.mechanism, config=config,
                    faults=injector,
                )
            except InvariantViolationError as exc:
                violations += 1
                print(
                    "  ! %-44s INVARIANT VIOLATION (%s at cycle %d)"
                    % (plan.label(), exc.invariant, exc.cycle)
                )
                continue
            fired = injector.total_fired
            total_fired += fired
            same = (
                stats.instructions == baseline.instructions
                and stats.warps_finished == baseline.warps_finished
            )
            delta = stats.cycles - baseline.cycles
            if same:
                print(
                    "  . %-44s %4d faults, cycles %+d, demand outcome identical"
                    % (plan.label(), fired, delta)
                )
            else:
                divergences += 1
                print(
                    "  ! %-44s %4d faults, DEMAND OUTCOME DIVERGED "
                    "(instructions %d != %d, warps %d != %d)"
                    % (plan.label(), fired, stats.instructions,
                       baseline.instructions, stats.warps_finished,
                       baseline.warps_finished)
                )
    print()
    print(
        "chaos: %d app%s x %d plan%s, %d faults injected, "
        "%d divergence%s, %d sanitizer violation%s"
        % (
            len(apps), "" if len(apps) == 1 else "s",
            len(plans), "" if len(plans) == 1 else "s",
            total_fired,
            divergences, "" if divergences == 1 else "s",
            violations, "" if violations == 1 else "s",
        )
    )
    return 0 if not divergences and not violations else 3


def _bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro bench",
        description="Measure the simulator itself: run the pinned suite on "
        "the event-driven core and the --legacy-loop reference, record "
        "wall time, cycles/sec, peak RSS and speedup_vs_legacy in a "
        "schema-versioned BENCH_<date>.json, and (with --check) gate "
        "against the committed baseline.  See docs/PERFORMANCE.md.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the CI subset (same scales, fewer cases)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="payload path (default BENCH_<date>.json in the current dir)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print the table without writing a payload file",
    )
    parser.add_argument(
        "--check", nargs="?", metavar="BASELINE", const="", default=None,
        help="gate against a committed payload (default: the newest "
        "BENCH_*.json here other than the one just written); exits 3 "
        "on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None, metavar="F",
        help="allowed fractional drop in speedup_vs_legacy (default 0.15)",
    )
    parser.add_argument(
        "--legacy-loop", action="store_true",
        help="measure the reference loop as primary instead (trajectory "
        "of the pre-refactor core; --check refuses such payloads)",
    )
    return parser


def _run_bench_command(argv) -> int:
    from repro.bench.schema import DEFAULT_TOLERANCE, compare_payloads
    from repro.bench.suite import (
        find_baseline,
        load_payload,
        render_table,
        run_suite,
        write_payload,
    )

    args = _bench_parser().parse_args(argv)
    loop = "legacy" if args.legacy_loop else "event"
    try:
        payload = run_suite(quick=args.quick, loop=loop)
    except (KeyError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(render_table(payload))
    written = None
    if not args.no_write:
        written = write_payload(payload, out=args.out)
        print("payload written to %s" % written)
    diverged = [c["name"] for c in payload["cases"] if not c["stats_match"]]
    if diverged:
        print(
            "error: event/legacy stats diverged for %s" % ", ".join(diverged),
            file=sys.stderr,
        )
        return 3
    if args.check is None:
        return 0

    if args.check:
        baseline_path = args.check
    else:
        found = find_baseline(exclude=written)
        if found is None:
            print(
                "error: --check found no committed BENCH_*.json baseline",
                file=sys.stderr,
            )
            return 2
        baseline_path = str(found)
    try:
        baseline = load_payload(baseline_path)
    except (OSError, ValueError, KeyError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    regressions = compare_payloads(payload, baseline, tolerance=tolerance)
    if regressions:
        print("bench gate vs %s FAILED:" % baseline_path, file=sys.stderr)
        for line in regressions:
            print("  " + line, file=sys.stderr)
        return 3
    print(
        "bench gate vs %s passed (%d%% tolerance)"
        % (baseline_path, round(tolerance * 100))
    )
    return 0


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro serve",
        description="Run the online prefetch-prediction service (default), "
        "drive a running server with the workload-replay load generator "
        "(--loadgen), or run the seeded serve chaos certificate (--chaos).  "
        "See docs/SERVING.md.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--loadgen", action="store_true",
        help="replay the workload suite as concurrent clients against a "
        "running server instead of serving",
    )
    mode.add_argument(
        "--chaos", action="store_true",
        help="run the seeded chaos harness: misbehaving clients, SIGKILL "
        "mid-stream, torn journal, recovery certificate",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind/connect host")
    parser.add_argument(
        "--port", type=int, default=0,
        help="port (0 = ephemeral; the bound port lands in "
        "<data-dir>/serve.port).  --loadgen reads that file when no "
        "explicit port is given",
    )
    parser.add_argument(
        "--data-dir", default="serve-data", metavar="DIR",
        help="durable state directory (snapshot + write-ahead journal)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256, metavar="N",
        help="bounded ingress queue; a full queue sheds with overload NACKs",
    )
    parser.add_argument(
        "--deadline", type=float, default=2.0, metavar="S",
        help="per-request processing budget before a deadline NACK",
    )
    parser.add_argument(
        "--frame-timeout", type=float, default=5.0, metavar="S",
        help="a frame's payload must land this fast (slow-loris eviction)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=60.0, metavar="S",
        help="silent connections are closed after this",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="journal records between full state snapshots "
        "(default 1000 serving, 50 under --chaos so the certificate "
        "exercises the snapshot+journal composition)",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every journal append (machine-crash durability)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="PC-sharded learners per session",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="session table capacity (admission control)",
    )
    parser.add_argument(
        "--clients", type=int, default=100, metavar="N",
        help="loadgen/chaos: concurrent clients",
    )
    parser.add_argument(
        "--events", type=int, default=30, metavar="N",
        help="loadgen/chaos: accesses streamed per client",
    )
    parser.add_argument(
        "--apps", default="lps,hotspot,backprop",
        help="loadgen/chaos: comma-separated workloads to replay",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="workload trace-size multiplier"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="chaos: fault-plan seed (which clients misbehave)",
    )
    parser.add_argument(
        "--no-kill", action="store_true",
        help="chaos: skip the SIGKILL phase (graceful-drain certificate; "
        "the fast CI smoke mode)",
    )
    return parser


def _run_serve_command(argv) -> int:
    from pathlib import Path

    from repro.serve import (
        ServeConfig,
        ServeFaultPlan,
        ServeSettings,
        run_loadgen,
        run_serve_chaos,
        run_server,
    )
    from repro.serve.service import PORT_FILE

    args = _serve_parser().parse_args(argv)
    apps = [a for a in args.apps.split(",") if a]

    if args.chaos:
        report = run_serve_chaos(
            ServeFaultPlan.storm(seed=args.chaos_seed),
            clients=args.clients, events_per_client=args.events,
            apps=apps, scale=args.scale, workload_seed=args.seed,
            kill=not args.no_kill,
            frame_timeout_s=args.frame_timeout,
            snapshot_every=args.snapshot_every or 50,
        )
        print(report.render())
        return 0 if report.ok else 3

    if args.loadgen:
        port = args.port
        if port == 0:
            port_file = Path(args.data_dir) / PORT_FILE
            if not port_file.exists():
                print(
                    "error: no --port given and %s does not exist (is the "
                    "server running with this --data-dir?)" % port_file,
                    file=sys.stderr,
                )
                return 2
            port = int(port_file.read_text().strip())
        try:
            report = run_loadgen(
                args.host, port, clients=args.clients,
                events_per_client=args.events, apps=apps,
                scale=args.scale, seed=args.seed,
            )
        except (KeyError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print(report.summary())
        if report.silent:
            print(
                "error: %d silent drop(s) — the zero-silent-drop contract "
                "is broken" % report.silent,
                file=sys.stderr,
            )
            return 3
        return 0

    try:
        config = ServeConfig(shards=args.shards, max_sessions=args.max_sessions)
        settings = ServeSettings(
            host=args.host, port=args.port, data_dir=args.data_dir,
            queue_depth=args.queue_depth, deadline_s=args.deadline,
            frame_timeout_s=args.frame_timeout,
            idle_timeout_s=args.idle_timeout,
            snapshot_every=args.snapshot_every or 1000, fsync=args.fsync,
            config=config,
        )
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    return run_server(settings)


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("trace", "profile"):
        return _run_obs_command(argv[0], argv[1:])
    if argv and argv[0] == "sweep":
        return _run_sweep_command(argv[1:])
    if argv and argv[0] == "chaos":
        return _run_chaos_command(argv[1:])
    if argv and argv[0] == "bench":
        return _run_bench_command(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve_command(argv[1:])
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="snake-repro",
        description="Reproduce the Snake (MICRO 2023) evaluation.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig3..fig25, table3), 'list', 'all', "
        "'trace <app>', 'profile <app>', 'bench' or 'lint'",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="trace-size multiplier")
    parser.add_argument("--seed", type=int, default=1, help="workload seed")
    parser.add_argument("--csv", metavar="PATH", help="also export raw data as CSV")
    parser.add_argument("--json", metavar="PATH", help="also export raw data as JSON")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print(
            "\n".join(
                sorted(EXPERIMENTS)
                + ["bench", "chaos", "claims", "lint", "profile", "serve",
                   "sweep", "trace"]
            )
        )
        return 0
    if args.experiment == "claims":
        from repro.analysis.claims import check_claims, render_claims

        print(render_claims(check_claims(scale=args.scale, seed=args.seed)))
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name](args.scale, args.seed))
            print()
        return 0
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(
            "unknown experiment %r; try 'list'" % args.experiment, file=sys.stderr
        )
        return 2
    print(runner(args.scale, args.seed))
    if args.csv or args.json:
        from repro.analysis import export

        raw = RAW_EXPERIMENTS.get(args.experiment)
        if raw is None:
            print("no raw data export for %r" % args.experiment, file=sys.stderr)
            return 2
        data = raw(scale=args.scale, seed=args.seed)
        if args.csv:
            export.to_csv(data, args.csv)
        if args.json:
            export.to_json(data, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
