"""Inter-warp stride prefetcher (INTER comparison point; Lee et al. [29]).

Because a warp holds a fixed number of threads, corresponding threads of
consecutive warps are often separated by a constant stride per load PC.  The
detector votes per-PC across warp pairs; once trained, each access prefetches
on behalf of the next warps.  Its weakness — warps of a CTA are scheduled
close together, so the prefetch is often too late — emerges naturally in the
timing model (covered-but-not-timely accesses).
"""

from __future__ import annotations

from typing import Dict, List

from .base import AccessEvent, Prefetcher, PrefetchRequest, register
from .stride import ConsensusTracker


@register("inter")
class InterWarpPrefetcher(Prefetcher):
    """Prefetch ``addr + k * warp_stride`` for the next ``degree`` warps."""

    def __init__(self, degree: int = 2, train_threshold: int = 3) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.train_threshold = train_threshold
        self._last_by_pc: Dict[int, Dict[int, int]] = {}  # pc -> {warp: addr}
        self._consensus: Dict[int, ConsensusTracker] = {}
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        history = self._last_by_pc.setdefault(event.pc, {})
        tracker = self._consensus.setdefault(
            event.pc, ConsensusTracker(threshold=self.train_threshold)
        )

        # Vote using the nearest lower warp that already executed this PC.
        lower = [w for w in history if w < event.warp_id]
        if lower:
            nearest = max(lower)
            gap = event.warp_id - nearest
            delta = event.base_addr - history[nearest]
            if delta % gap == 0:
                tracker.vote(event.warp_id, delta // gap)
        history[event.warp_id] = event.base_addr

        stride = tracker.trained_stride
        if stride is None:
            return []
        return [
            PrefetchRequest(base_addr=event.base_addr + k * stride, depth=k)
            for k in range(1, self.degree + 1)
            if event.base_addr + k * stride >= 0
        ]

    def table_accesses(self) -> int:
        return self._accesses
