"""Prefetching mechanisms and the setup table for the paper's comparison
points (§4, "Comparison Points").

:func:`build_setup` maps a mechanism name to the full machine configuration
it implies — prefetcher, storage discipline (coupled / decoupled / isolated)
and throttle — so ``simulate(kernel, prefetcher="snake-t")`` reproduces the
exact ablation the paper ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.gpusim.config import GPUConfig
from repro.gpusim.unified_cache import StorageMode

from .base import (
    AccessEvent,
    Prefetcher,
    PrefetchRequest,
    available,
    create,
    register,
)
from .bingo import BingoPrefetcher
from .cta_aware import CTAAwarePrefetcher
from .domino import DominoPrefetcher
from .ideal import IdealPrefetcher
from .inter_warp import InterWarpPrefetcher
from .intra_warp import IntraWarpPrefetcher
from .mta import MTAPrefetcher
from .tree import TreePrefetcher


class CompositePrefetcher(Prefetcher):
    """Union of several mechanisms (used for Snake+CTA)."""

    name = "composite"

    def __init__(self, parts: List[Prefetcher]) -> None:
        if not parts:
            raise ValueError("composite needs at least one part")
        self.parts = parts

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        seen = set()
        unique: List[PrefetchRequest] = []
        for part in self.parts:
            for request in part.observe(event):
                if request.base_addr not in seen:
                    seen.add(request.base_addr)
                    unique.append(request)
        return unique

    @property
    def trained(self) -> bool:
        return any(part.trained for part in self.parts)

    def table_accesses(self) -> int:
        return sum(part.table_accesses() for part in self.parts)


@dataclass(frozen=True)
class MachineSetup:
    """Everything :class:`repro.gpusim.GPU` needs for one comparison point."""

    config: GPUConfig
    prefetcher_factory: Callable[[], Prefetcher]
    throttle_factory: Callable[[], object]
    storage_mode: StorageMode


def _snake_factory(config: GPUConfig, **flags):
    from repro.core.snake import SnakePrefetcher

    def make() -> Prefetcher:
        return SnakePrefetcher(
            head_entries=config.head_entries,
            tail_entries=config.tail_entries,
            train_threshold=config.train_threshold,
            max_chain_depth=config.max_chain_depth,
            batched=config.batched_tables,
            **flags,
        )

    return make


def build_setup(
    name: str, config: GPUConfig, decoupled: bool = False, **kwargs
) -> MachineSetup:
    """Resolve a mechanism name into a full machine setup.

    ``decoupled=True`` gives any baseline mechanism Snake's decoupled storage
    (the paper's "decoupled versions of competitors" experiment in §5.2).
    """
    from repro.core.throttle import NullThrottle, Throttle

    def throttle() -> Throttle:
        return Throttle(
            interval=config.throttle_interval,
            bw_high=config.throttle_bw_high,
            bw_low=config.throttle_bw_low,
        )

    baseline_mode = StorageMode.DECOUPLED if decoupled else StorageMode.COUPLED

    if name == "cta":
        kwargs.setdefault("cta_step", config.num_sms)
    if name in (
        "none", "intra", "inter", "mta", "cta", "tree", "ideal",
        "domino", "bingo",
    ):
        return MachineSetup(
            config=config,
            prefetcher_factory=lambda: create(name, **kwargs),
            throttle_factory=NullThrottle,
            storage_mode=baseline_mode,
        )
    if name == "snake":
        return MachineSetup(
            config, _snake_factory(config, **kwargs), throttle, StorageMode.DECOUPLED
        )
    if name == "s-snake":
        return MachineSetup(
            config,
            _snake_factory(
                config, use_intra=False, use_inter_warp=False, **kwargs
            ),
            throttle,
            StorageMode.DECOUPLED,
        )
    if name == "snake-dt":  # no decoupling, no throttling
        return MachineSetup(
            config,
            _snake_factory(config, **kwargs),
            NullThrottle,
            StorageMode.COUPLED,
        )
    if name == "snake-t":  # decoupling only, no throttling
        return MachineSetup(
            config,
            _snake_factory(config, **kwargs),
            NullThrottle,
            StorageMode.DECOUPLED,
        )
    if name == "snake+cta":
        snake_make = _snake_factory(config, **kwargs)
        return MachineSetup(
            config,
            lambda: CompositePrefetcher(
                [snake_make(), CTAAwarePrefetcher(cta_step=config.num_sms)]
            ),
            throttle,
            StorageMode.DECOUPLED,
        )
    if name == "isolated-snake":
        return MachineSetup(
            config,
            _snake_factory(config, **kwargs),
            throttle,
            StorageMode.ISOLATED,
        )
    raise ValueError(
        "unknown mechanism %r; known: %s"
        % (name, ", ".join(sorted(available() + COMPARISON_POINTS)))
    )


#: The ten comparison points of Figs 16-19 plus the baseline.
COMPARISON_POINTS = [
    "intra",
    "inter",
    "mta",
    "cta",
    "tree",
    "s-snake",
    "snake-dt",
    "snake-t",
    "snake",
    "snake+cta",
]

__all__ = [
    "AccessEvent",
    "BingoPrefetcher",
    "COMPARISON_POINTS",
    "DominoPrefetcher",
    "CompositePrefetcher",
    "CTAAwarePrefetcher",
    "IdealPrefetcher",
    "InterWarpPrefetcher",
    "IntraWarpPrefetcher",
    "MTAPrefetcher",
    "MachineSetup",
    "Prefetcher",
    "PrefetchRequest",
    "TreePrefetcher",
    "available",
    "build_setup",
    "create",
    "register",
]
