"""Intra-warp stride prefetcher (INTRA comparison point; Lee et al. [29]).

Each (warp, load PC) pair trains a classic stride detector; once the stride
repeats, the next loop iteration's address is prefetched.  Effective only in
the presence of deep loops — exactly the limitation §2 attributes to it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import AccessEvent, Prefetcher, PrefetchRequest, register
from .stride import StrideTracker


@register("intra")
class IntraWarpPrefetcher(Prefetcher):
    """Prefetch ``addr + k * stride`` for the same warp's next iterations."""

    def __init__(self, degree: int = 2) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self._trackers: Dict[Tuple[int, int], StrideTracker] = {}
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        key = (event.warp_id, event.pc)
        tracker = self._trackers.setdefault(key, StrideTracker())
        stride = tracker.update(event.base_addr)
        if stride is None:
            return []
        return [
            PrefetchRequest(base_addr=event.base_addr + k * stride, depth=k)
            for k in range(1, self.degree + 1)
            if event.base_addr + k * stride >= 0
        ]

    def table_accesses(self) -> int:
        return self._accesses
