"""Shared stride-detection helpers used by the fixed-stride baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional


@dataclass
class StrideTracker:
    """Classic two-delta stride detector: remembers the last address and
    stride and counts consecutive confirmations."""

    last_addr: Optional[int] = None
    stride: Optional[int] = None
    confirmations: int = 0

    def update(self, addr: int) -> Optional[int]:
        """Feed an address; returns the stride once it has been confirmed at
        least once (two equal deltas in a row), else None."""
        confirmed = None
        if self.last_addr is not None:
            delta = addr - self.last_addr
            if delta != 0 and delta == self.stride:
                self.confirmations += 1
                confirmed = delta
            else:
                self.stride = delta if delta != 0 else None
                self.confirmations = 0
        self.last_addr = addr
        return confirmed


@dataclass
class ConsensusTracker:
    """Detects a stride agreed on by a minimum number of distinct voters
    (warps or CTAs) — the paper's three-warp promotion rule."""

    threshold: int = 3

    def __post_init__(self) -> None:
        self._votes: dict = {}  # stride -> set of voter ids
        self.trained_stride: Optional[int] = None

    def vote(self, voter: int, stride: int) -> Optional[int]:
        """Register that ``voter`` observed ``stride``.  Returns the trained
        stride once ``threshold`` distinct voters agree."""
        if stride == 0:
            return self.trained_stride
        voters = self._votes.setdefault(stride, set())
        voters.add(voter)
        if len(voters) >= self.threshold:
            self.trained_stride = stride
        return self.trained_stride

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic image of the vote state (vote map in
        insertion order, voter sets sorted)."""
        return {
            "threshold": self.threshold,
            "trained_stride": self.trained_stride,
            "votes": [
                [stride, sorted(voters)]
                for stride, voters in self._votes.items()
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "ConsensusTracker":
        """Rebuild a tracker from :meth:`snapshot` output."""
        tracker = cls(threshold=int(data["threshold"]))
        tracker.trained_stride = (
            None if data["trained_stride"] is None
            else int(data["trained_stride"])
        )
        for stride, voters in data["votes"]:
            tracker._votes[int(stride)] = {int(v) for v in voters}
        return tracker
