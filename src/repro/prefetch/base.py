"""Prefetcher interface.

A prefetcher lives next to an SM's L1.  The SM calls :meth:`Prefetcher.observe`
with an :class:`AccessEvent` each time a warp issues a demand load (before the
access is serviced) and gets back a list of :class:`PrefetchRequest` — *base*
(first-thread) addresses to prefetch.  The SM expands each base address into
cache lines using the triggering instruction's thread stride, checks the
throttle, and pushes the lines into the L1's prefetch path.

Prefetchers that model the paper's Ideal oracle set ``uses_magic`` so the SM
routes their requests to the zero-latency, infinite-capacity magic fill path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.obs.events import NULL_BUS


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One warp-level demand load as seen by the prefetcher."""

    warp_id: int
    cta_id: int
    pc: int
    base_addr: int
    line_addr: int
    now: int
    thread_stride: int = 0
    divergent: bool = False
    app_id: int = 0  # which concurrently-running application issued this


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """A predicted future warp-level access (base address of thread 0)."""

    base_addr: int
    depth: int = 1  # chain distance from the triggering access

    def __post_init__(self) -> None:
        if self.base_addr < 0:
            raise ValueError("prefetch address must be non-negative")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")


class Prefetcher:
    """Base class: the null prefetcher (baseline GPU)."""

    name = "none"
    uses_magic = False
    #: Telemetry bus (repro.obs) — the GPU overwrites these per instance so
    #: mechanism-internal events reach the run's sinks; standalone
    #: prefetchers emit into the disabled NULL_BUS.
    obs = NULL_BUS
    obs_sm_id = -1

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        """Digest a demand access; return addresses to prefetch."""
        return []

    @property
    def trained(self) -> bool:
        """Whether training completed (gates Snake's 50 % demand-space cap;
        mechanisms without a training phase report True)."""
        return True

    def table_accesses(self) -> int:
        """Metadata-table lookups performed so far (energy accounting)."""
        return 0


_REGISTRY: Dict[str, Callable[..., Prefetcher]] = {}


def register(name: str):
    """Class decorator registering a prefetcher under ``name``."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError("prefetcher %r already registered" % name)
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def create(name: str, **kwargs) -> Prefetcher:
    """Instantiate a registered prefetcher by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown prefetcher %r; known: %s" % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
    return factory(**kwargs)


def available() -> List[str]:
    return sorted(_REGISTRY)


register("none")(Prefetcher)
