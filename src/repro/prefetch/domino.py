"""Domino temporal prefetcher (Bakhshalipour et al., HPCA'18 — §6.1).

A CPU temporal prefetcher adapted to the GPU L1: it logs the miss-address
stream in a history buffer and indexes it by the last one and last two
addresses; on a match it replays the next addresses that followed last
time.  The paper's §6.1 argues CPU temporal prefetching transfers poorly
to GPUs — thousands of interleaved warps shred the temporal stream — and
this implementation lets the claim be measured
(`benchmarks/test_cpu_prefetchers.py`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import AccessEvent, Prefetcher, PrefetchRequest, register


@register("domino")
class DominoPrefetcher(Prefetcher):
    """Temporal next-address prefetching over the global access stream."""

    def __init__(self, history_size: int = 4096, degree: int = 4) -> None:
        if history_size < 2 or degree < 1:
            raise ValueError("history_size >= 2 and degree >= 1 required")
        self.history_size = history_size
        self.degree = degree
        self._history: List[int] = []
        # Domino's two index tables: last address, and (previous, last) pair.
        self._index1: Dict[int, int] = {}
        self._index2: Dict[Tuple[int, int], int] = {}
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        addr = event.line_addr

        # Predict: prefer the two-address (higher-confidence) index.
        position = None
        if len(self._history) >= 1:
            pair = (self._history[-1], addr)
            position = self._index2.get(pair)
        if position is None:
            position = self._index1.get(addr)

        requests: List[PrefetchRequest] = []
        if position is not None:
            successors = self._history[position + 1: position + 1 + self.degree]
            requests = [
                PrefetchRequest(base_addr=successor, depth=i + 1)
                for i, successor in enumerate(successors)
                if successor >= 0
            ]

        # Record: index the position this address appears at.
        if self._history:
            self._index2[(self._history[-1], addr)] = len(self._history)
        self._index1[addr] = len(self._history)
        self._history.append(addr)
        if len(self._history) > self.history_size:
            # drop the oldest half and rebuild the indexes (amortized)
            keep = self.history_size // 2
            self._history = self._history[-keep:]
            self._index1 = {a: i for i, a in enumerate(self._history)}
            self._index2 = {
                (self._history[i - 1], a): i
                for i, a in enumerate(self._history)
                if i >= 1
            }
        return requests

    def table_accesses(self) -> int:
        return self._accesses
