"""Ideal prefetcher (§1/§2): every fixed or variable stride, infinite
storage, zero request latency.

Modeled as an infinite transition table: every observed (previous PC,
current PC, address delta) triple is remembered globally; whenever a warp
executes a load whose PC has known outgoing transitions, all of their target
addresses are filled instantly through the L1's magic path (no bandwidth, no
capacity).  A demand access is therefore covered exactly when its transition
was observed at least once before, anywhere — truly random streams remain
uncovered, as they must for any stride-family prefetcher.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .base import AccessEvent, Prefetcher, PrefetchRequest, register


@register("ideal")
class IdealPrefetcher(Prefetcher):
    """Oracle upper bound for stride-chain prefetching."""

    uses_magic = True

    def __init__(self, max_fanout: int = 64) -> None:
        self.max_fanout = max_fanout
        # pc -> set of (next_pc, stride) transitions seen anywhere.
        self._outgoing: Dict[int, Set[Tuple[int, int]]] = {}
        self._last: Dict[int, Tuple[int, int]] = {}  # warp -> (pc, addr)
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        last = self._last.get(event.warp_id)
        if last is not None:
            last_pc, last_addr = last
            self._outgoing.setdefault(last_pc, set()).add(
                (event.pc, event.base_addr - last_addr)
            )
        self._last[event.warp_id] = (event.pc, event.base_addr)

        transitions = self._outgoing.get(event.pc)
        if not transitions:
            return []
        requests: List[PrefetchRequest] = []
        for _, stride in sorted(transitions)[: self.max_fanout]:
            target = event.base_addr + stride
            if target >= 0:
                requests.append(PrefetchRequest(base_addr=target))
        return requests

    def table_accesses(self) -> int:
        return self._accesses
