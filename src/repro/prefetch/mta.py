"""Many-Thread-Aware prefetcher (MTA; Lee et al. [29]).

The paper's strongest-coverage prior: the union of the intra-warp and
inter-warp mechanisms.  Requests are merged and de-duplicated per trigger.
"""

from __future__ import annotations

from typing import List

from .base import AccessEvent, Prefetcher, PrefetchRequest, register
from .inter_warp import InterWarpPrefetcher
from .intra_warp import IntraWarpPrefetcher


@register("mta")
class MTAPrefetcher(Prefetcher):
    """Intra-warp + inter-warp combined."""

    def __init__(self, degree: int = 2, train_threshold: int = 3) -> None:
        self._intra = IntraWarpPrefetcher(degree=degree)
        self._inter = InterWarpPrefetcher(
            degree=degree, train_threshold=train_threshold
        )

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        requests = self._intra.observe(event) + self._inter.observe(event)
        seen = set()
        unique: List[PrefetchRequest] = []
        for request in requests:
            if request.base_addr not in seen:
                seen.add(request.base_addr)
                unique.append(request)
        return unique

    def table_accesses(self) -> int:
        return self._intra.table_accesses() + self._inter.table_accesses()
