"""Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19 — §6.1).

A CPU spatial prefetcher adapted to the GPU L1: it learns the footprint of
cache lines touched within a region during its residency, keyed first by
the long event (trigger PC + address) and falling back to the short event
(trigger PC + offset), then prefetches the learned footprint when a new
region is first touched.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import AccessEvent, Prefetcher, PrefetchRequest, register


@register("bingo")
class BingoPrefetcher(Prefetcher):
    """Footprint prefetching over fixed-size spatial regions."""

    def __init__(self, region_bytes: int = 2048, line_bytes: int = 128,
                 max_regions: int = 256) -> None:
        if region_bytes % line_bytes != 0:
            raise ValueError("region_bytes must be a multiple of line_bytes")
        self.region_bytes = region_bytes
        self.line_bytes = line_bytes
        self.max_regions = max_regions
        # active generations: region -> (trigger pc, trigger offset, footprint)
        self._active: Dict[int, Tuple[int, int, int]] = {}
        # history: long event (pc, region) and short event (pc, offset)
        self._long: Dict[Tuple[int, int], int] = {}
        self._short: Dict[Tuple[int, int], int] = {}
        self._accesses = 0

    def _region_of(self, addr: int) -> int:
        return addr // self.region_bytes

    def _offset_of(self, addr: int) -> int:
        return (addr % self.region_bytes) // self.line_bytes

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        addr = event.line_addr
        region = self._region_of(addr)
        offset = self._offset_of(addr)

        if region in self._active:
            pc, trigger_offset, footprint = self._active[region]
            self._active[region] = (pc, trigger_offset, footprint | (1 << offset))
            return []

        # New region generation: retire the oldest if at capacity.
        if len(self._active) >= self.max_regions:
            old_region, (pc, trigger_offset, footprint) = next(
                iter(self._active.items())
            )
            del self._active[old_region]
            self._long[(pc, old_region)] = footprint
            self._short[(pc, trigger_offset)] = footprint
        self._active[region] = (event.pc, offset, 1 << offset)

        # Predict from history: long event first, then short event.
        footprint = self._long.get((event.pc, region))
        if footprint is None:
            footprint = self._short.get((event.pc, offset))
        if footprint is None:
            return []

        base = region * self.region_bytes
        lines_per_region = self.region_bytes // self.line_bytes
        return [
            PrefetchRequest(base_addr=base + i * self.line_bytes, depth=1)
            for i in range(lines_per_region)
            if footprint >> i & 1 and i != offset
        ]

    def table_accesses(self) -> int:
        return self._accesses
