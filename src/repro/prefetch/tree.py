"""Tree spatial prefetcher (Tree comparison point; Ganguly et al. [15]).

The paper adapts this CPU-GPU unified-memory prefetcher to the GPU context:
the global address space is viewed as 64 KB chunks and, once a chunk is
touched, its lines are prefetched into the L1.  We model the tree's
progressive expansion with a per-chunk cursor: every demand access to a
chunk prefetches the next ``burst`` not-yet-requested lines of that chunk.
The aggression (lots of possibly-unused data) is the point — it is what
makes Tree polluting in Figs 16-18.
"""

from __future__ import annotations

from typing import Dict, List

from .base import AccessEvent, Prefetcher, PrefetchRequest, register

CHUNK_BYTES = 64 * 1024


@register("tree")
class TreePrefetcher(Prefetcher):
    """Chunk-based spatial prefetcher."""

    def __init__(self, burst: int = 8, line_bytes: int = 128) -> None:
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.burst = burst
        self.line_bytes = line_bytes
        self._cursor: Dict[int, int] = {}  # chunk id -> next line offset
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        chunk = event.base_addr // CHUNK_BYTES
        chunk_base = chunk * CHUNK_BYTES
        cursor = self._cursor.get(
            chunk, (event.base_addr - chunk_base) // self.line_bytes + 1
        )
        lines_per_chunk = CHUNK_BYTES // self.line_bytes
        requests: List[PrefetchRequest] = []
        for _ in range(self.burst):
            if cursor >= lines_per_chunk:
                break
            requests.append(
                PrefetchRequest(
                    base_addr=chunk_base + cursor * self.line_bytes,
                    depth=len(requests) + 1,
                )
            )
            cursor += 1
        self._cursor[chunk] = cursor
        return requests

    def table_accesses(self) -> int:
        return self._accesses
