"""CTA-aware prefetcher (CTA comparison point; Koo et al. [25]).

Warps *within* a CTA share a stride but run too close in time for prefetching
to help; the stride *between* corresponding warps of different CTAs is also
fixed and offers timeliness.  The detector learns, per load PC, the address
delta between matching warp slots of consecutive CTAs (using each CTA's base
— the first observed address per (pc, cta)), then prefetches the same access
for the next CTAs.  The detection period (two full CTAs must be observed)
is what limits its coverage in the paper (Fig 16, fifth observation).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import AccessEvent, Prefetcher, PrefetchRequest, register
from .stride import ConsensusTracker


@register("cta")
class CTAAwarePrefetcher(Prefetcher):
    """Prefetch ``addr + k * cta_stride`` for the next ``degree`` CTAs."""

    def __init__(
        self, degree: int = 1, train_threshold: int = 2, cta_step: int = 1
    ) -> None:
        if degree < 1 or cta_step < 1:
            raise ValueError("degree and cta_step must be >= 1")
        self.degree = degree
        self.cta_step = cta_step  # id distance to the next CTA on this SM
        # pc -> {cta: base addr} for the CTAs this SM has executed.
        self._base: Dict[int, Dict[int, int]] = {}
        self._consensus: Dict[int, ConsensusTracker] = {}
        self.train_threshold = train_threshold
        self._accesses = 0

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._accesses += 1
        history = self._base.setdefault(event.pc, {})
        if event.cta_id not in history:
            history[event.cta_id] = event.base_addr
            tracker = self._consensus.setdefault(
                event.pc, ConsensusTracker(threshold=self.train_threshold)
            )
            # CTAs are distributed over SMs, so the previous CTA this SM saw
            # may be several ids back; normalize the delta by the id gap.
            lower = [c for c in history if c < event.cta_id]
            if lower:
                nearest = max(lower)
                gap = event.cta_id - nearest
                delta = event.base_addr - history[nearest]
                if delta % gap == 0:
                    tracker.vote(event.cta_id, delta // gap)

        tracker = self._consensus.get(event.pc)
        if tracker is None or tracker.trained_stride is None:
            return []
        stride = tracker.trained_stride * self.cta_step
        return [
            PrefetchRequest(base_addr=event.base_addr + k * stride, depth=k)
            for k in range(1, self.degree + 1)
            if event.base_addr + k * stride >= 0
        ]

    def table_accesses(self) -> int:
        return self._accesses
