"""The worker side of the scheduler/worker split.

:func:`worker_main` is the entry point a
:class:`~repro.runner.transport.SubprocessTransport` slot runs: a claim
loop that receives ``assign`` messages, executes the job via the shared
:func:`repro.runner.jobs.execute_job` machinery, proves liveness with a
heartbeat thread while the simulation is in flight, and ships the
outcome back as a ``result`` message.  Typed failures travel as data
(:func:`execute_payload`); a worker that dies without sending (SIGKILL,
interpreter abort) is classified by the scheduler from its exit code and
its job recovered through the lease machinery.

Workers ignore ``SIGINT``: on a ^C the *scheduler* decides what happens
(graceful drain — in-flight jobs finish and checkpoint — versus abort),
and a worker that killed itself on the shared terminal signal would turn
every drain into a crash storm.

Chaos hooks (:class:`~repro.gpusim.faults.RunnerFaultPlan`): the
``worker.kill`` site SIGKILLs the process at a seeded lease phase —
``claim`` (assignment received, nothing ran) or ``report`` (job executed
fully, result never sent) — and ``worker.heartbeat_stall`` suppresses
the heartbeat thread and withholds the finished result past the lease
window, so the scheduler must steal the job back and another worker must
re-run it.  Both decide from a pure hash of (seed, site, key, attempt),
so a respawned worker keeps the exact fault schedule of its predecessor.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from typing import Any, Dict, Optional

from repro.gpusim.faults import RunnerFaultInjector, RunnerFaultPlan

from .errors import JobError
from .jobs import JobSpec, execute_job


def execute_payload(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job in the current process; return the wire-form body of
    its ``result`` message (``status`` plus ``stats`` or ``error``).

    Shared by the subprocess worker loop and the inline transport so the
    two modes classify failures identically.
    """
    try:
        spec = JobSpec.from_dict(spec_dict)
        stats = execute_job(spec)
        return {"status": "ok", "stats": stats.to_json_dict()}
    except JobError as exc:
        return {
            "status": "failed",
            "error": {
                "kind": exc.kind,
                "message": str(exc),
                "state_dump": exc.state_dump,
            },
        }
    except BaseException as exc:  # noqa: BLE001 - the wire is the only way out
        return {
            "status": "failed",
            "error": {
                "kind": "JobCrash",
                "message": "worker raised %s: %s\n%s"
                % (type(exc).__name__, exc, traceback.format_exc(limit=10)),
                "state_dump": {},
            },
        }


class _HeartbeatThread(threading.Thread):
    """Sends one heartbeat per interval while a job is in flight."""

    def __init__(self, send: Any, worker_id: int, key: str, attempt: int,
                 interval_s: float) -> None:
        super().__init__(daemon=True)
        self._send = send
        self._message = {
            "type": "heartbeat", "worker": worker_id, "key": key,
            "attempt": attempt,
        }
        self._interval_s = interval_s
        # NB: not "_stop" — that would shadow threading.Thread internals.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            self._send(dict(self._message))

    def finish(self) -> None:
        self._halt.set()
        self.join(timeout=1.0)


def worker_main(worker_id: int, conn: Any, heartbeat_s: float,
                fault_plan: Optional[Dict[str, Any]] = None) -> None:
    """Subprocess entry: the claim/execute/report loop (see module doc)."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass  # non-main thread in an embedded context; drain still works
    injector = (
        RunnerFaultInjector(RunnerFaultPlan.from_dict(fault_plan))
        if fault_plan else None
    )
    send_lock = threading.Lock()

    def send(message: Dict[str, Any]) -> None:
        try:
            with send_lock:
                conn.send(message)
        except (OSError, ValueError):
            pass  # scheduler went away; the claim loop exits on recv

    send({"type": "ready", "worker": worker_id})
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, dict) or message.get("type") == "stop":
            break
        if message.get("type") != "assign":
            continue
        key = str(message["key"])
        attempt = int(message["attempt"])
        killed = injector is not None and injector.job_fires(
            "worker.kill", key, attempt,
        )
        phase = injector.kill_phase(key, attempt) if (
            killed and injector is not None
        ) else ""
        if killed and phase == "claim":
            os.kill(os.getpid(), signal.SIGKILL)
        stalled = injector is not None and injector.job_fires(
            "worker.heartbeat_stall", key, attempt,
        )
        heartbeat: Optional[_HeartbeatThread] = None
        if not stalled:
            heartbeat = _HeartbeatThread(
                send, worker_id, key, attempt, heartbeat_s
            )
            heartbeat.start()
        payload = execute_payload(message["spec"])
        if heartbeat is not None:
            heartbeat.finish()
        if killed and phase == "report":
            os.kill(os.getpid(), signal.SIGKILL)
        if stalled and injector is not None:
            time.sleep(injector.stall_s(key, attempt))
        result: Dict[str, Any] = {
            "type": "result", "worker": worker_id, "key": key,
            "attempt": attempt,
        }
        result.update(payload)
        send(result)
    try:
        conn.close()
    except (OSError, ValueError):
        pass


__all__ = ["execute_payload", "worker_main"]
