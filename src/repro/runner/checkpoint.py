"""Append-only JSONL sweep checkpoint with atomic replace.

One record per finished job (success or permanent failure), keyed by the
deterministic job hash::

    {"key": "5f0c…", "spec": {...}, "status": "ok",     "attempts": 1,
     "elapsed_s": 3.1, "stats": {...}}
    {"key": "a91b…", "spec": {...}, "status": "failed", "attempts": 3,
     "elapsed_s": 9.0, "error": {"kind": "JobCrash", "message": "...",
                                 "state_dump": {}}}

Durability strategy: the in-memory record map is the source of truth; every
:meth:`Checkpoint.append` rewrites the whole file to ``<path>.tmp`` and
``os.replace``-s it into place.  The rename is atomic on POSIX, so a
reader (or a resumed run) sees either the previous complete checkpoint or
the new complete checkpoint — never a torn line.  Sweep cells run for
seconds while records are a few hundred bytes, so the rewrite cost is
noise; if a checkpoint produced by some other writer *does* end in a torn
line, :meth:`Checkpoint.load` quarantines the trailing fragment to
``<checkpoint>.corrupt`` (taxonomy kind ``checkpoint:torn``) and resumes
from the intact records — the affected job simply re-runs.  The
``checkpoint.torn`` chaos site (:meth:`Checkpoint.tear`) fabricates
exactly that condition so the recovery path is exercised end to end.

Resume semantics (``docs/ROBUSTNESS.md``): a job whose hash has an ``ok``
record is never re-run; a ``failed`` record is re-run only when
``retry_failed`` is requested.  Because the key hashes *every*
result-relevant knob, resuming with a changed grid simply runs the new
cells and reuses the overlap — no duplicated jobs either way.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from repro.durable import (
    JsonlCorruptionError,
    corrupt_sidecar,
    quarantine_fragment,
    scan_jsonl,
)
from repro.gpusim.stats import SimStats

from .errors import FailedResult

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """The checkpoint file is unusable (corrupt beyond the trailing line)."""


class Checkpoint:
    """The record map plus its on-disk JSONL mirror."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.records: Dict[str, dict] = {}
        #: torn trailing fragments diverted to ``<path>.corrupt`` by
        #: :meth:`load` (0 on a clean load)
        self.quarantined = 0

    # ------------------------------------------------------------------
    # Persistence

    @property
    def corrupt_path(self) -> Path:
        """Where torn fragments are quarantined on load."""
        return corrupt_sidecar(self.path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        """Read an existing checkpoint (missing file -> empty checkpoint).

        A torn trailing line (killed writer from a non-atomic producer) is
        quarantined to ``<path>.corrupt`` — preserved for forensics, never
        resumed from — and the affected job simply re-runs.  Corruption
        anywhere earlier raises :class:`CheckpointError`: silently
        skipping completed work would duplicate jobs on resume.  Both
        behaviours come from the shared, separately-audited
        :func:`repro.durable.scan_jsonl` recovery helper (the serve
        journal recovers through the same code).
        """
        checkpoint = cls(path)
        path = checkpoint.path
        if not path.exists():
            return checkpoint
        try:
            scan = scan_jsonl(path.read_bytes(), path=path)
        except JsonlCorruptionError as exc:
            raise CheckpointError(
                "corrupt checkpoint %s: undecodable record %d (%s)"
                % (path, exc.line_index, exc)
            ) from exc
        if scan.torn is not None:
            quarantine_fragment(path, scan.torn)
            checkpoint.quarantined += 1  # torn final line: the job re-runs
        for index, record in enumerate(scan.records):
            if not isinstance(record, dict) or "key" not in record:
                raise CheckpointError(
                    "corrupt checkpoint %s: record %d has no job key" % (path, index)
                )
            checkpoint.records[record["key"]] = record
        return checkpoint

    def tear(self) -> None:
        """Chaos hook (``checkpoint.torn``): append a torn half-record to
        the on-disk file, as a writer killed mid-append would leave it.
        The in-memory map is untouched, so the *next* :meth:`append`
        heals the file; only a tear landing after the final append
        survives to be quarantined by the next :meth:`load`."""
        with self.path.open("ab") as handle:
            handle.write(b'{"key": "torn-by-chaos", "spec": {"app": "inco')

    def append(self, record: dict) -> None:
        """Add (or supersede) one record and atomically persist the file."""
        if "key" not in record:
            raise CheckpointError("checkpoint record needs a 'key'")
        self.records[record["key"]] = record
        self._flush()

    def _flush(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records.values()
        )
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    def discard(self) -> None:
        """Forget all records and remove the file (a non-resume fresh start)."""
        self.records.clear()
        if self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------
    # Interpretation

    def result_for(self, key: str) -> Union[SimStats, FailedResult, None]:
        """Materialize the stored outcome: ``SimStats``, ``FailedResult``,
        or ``None`` when the key has no record."""
        record = self.records.get(key)
        if record is None:
            return None
        if record.get("status") == "ok":
            return SimStats.from_json_dict(record["stats"])
        return FailedResult.from_json_dict(record.get("error") or {})

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def canonical_bytes(self) -> bytes:
        """The checkpoint's *result content* in canonical form: records
        sorted by key, volatile per-run fields (``attempts``,
        ``elapsed_s``) projected out.  Two sweeps computed the same cells
        iff their canonical bytes match — this is the equality the chaos
        harness asserts between faulted and fault-free runs, where retry
        counts legitimately differ but results must not."""
        lines = []
        for key in sorted(self.records):
            record = self.records[key]
            slim: Dict[str, object] = {
                "key": record.get("key"),
                "spec": record.get("spec"),
                "status": record.get("status"),
            }
            if "stats" in record:
                slim["stats"] = record["stats"]
            if "error" in record:
                error = dict(record.get("error") or {})
                error.pop("attempts", None)
                slim["error"] = error
            lines.append(json.dumps(slim, sort_keys=True))
        return ("\n".join(lines) + "\n").encode("utf-8")


def make_record(key: str, spec_dict: dict, result: Union[SimStats, FailedResult],
                attempts: int, elapsed_s: float) -> dict:
    """Build the JSONL record for one finished job."""
    record = {
        "version": FORMAT_VERSION,
        "key": key,
        "spec": spec_dict,
        "attempts": attempts,
        "elapsed_s": round(elapsed_s, 3),
    }
    if isinstance(result, FailedResult):
        record["status"] = "failed"
        record["error"] = result.to_json_dict()
    else:
        record["status"] = "ok"
        record["stats"] = result.to_json_dict()
    return record


__all__ = ["Checkpoint", "CheckpointError", "make_record"]
