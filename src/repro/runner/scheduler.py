"""The sweep scheduler: leases, heartbeats, and chaos-proof work stealing.

:class:`Scheduler` drives a set of :class:`~repro.runner.jobs.JobSpec`
cells to completion over a pluggable :class:`~repro.runner.transport.
Transport`.  It owns four pieces of state and nothing else:

* **Shard queues** — pending jobs are sharded by their deterministic job
  hash (:func:`~repro.runner.jobs.shard_of`), one deque per worker slot.
  An idle worker drains its own shard first and *steals* from the tail
  of the longest other shard when its own runs dry, so a straggler shard
  never idles the fleet while assignment stays deterministic for a given
  message ordering.
* **The lease table** — every in-flight job is held under an expiring
  :class:`~repro.runner.leases.Lease`, renewed by worker heartbeats.
  Silence past the lease window revokes the job (``worker-lost``) and
  requeues it with backoff; too many consecutive losses quarantine the
  cell as ``FAILED(poison)`` so one wedging job degrades gracefully
  instead of wedging the sweep.
* **The settled set** — results are deduplicated by job hash: the first
  result for a key settles it (checkpoint append + ``on_result``,
  exactly once); any later delivery — a duplicated message, a stale
  worker racing its replacement — is counted and dropped.
* **The checkpoint** — finished cells stream into the atomic JSONL
  checkpoint *before* ``on_result`` fires, so SIGKILLing the scheduler
  at any instant loses only in-flight cells and ``--resume`` replays
  byte-identically.

Failure taxonomy as the scheduler sees it (see
:mod:`repro.runner.errors` and ``docs/ROBUSTNESS.md``):

==================  ====================================================
observation         recovery
==================  ====================================================
worker process died requeue with backoff while the crash budget
without a result    (``retries``) lasts, then ``FAILED(JobCrash)``
lease expired       revoke + SIGKILL the silent worker, requeue as
(heartbeats stopped ``worker-lost``; after ``max_losses`` losses the
while leased)       cell is quarantined ``FAILED(poison)``
job over its        SIGKILL the worker, ``FAILED(JobTimeout)``, never
wall-clock budget   retried (deterministic for a given load regime)
worker *reported*   retried only on an isolating transport (an inline
a retryable error   "crash" already ran in this process; re-running
                    it in the same process cannot help)
duplicate result    dropped (exactly-once effects via the settled set)
==================  ====================================================

Time is injected (:class:`~repro.runner.transport.WallClock` /
:class:`~repro.runner.transport.VirtualClock`); the scheduler never
calls ``time.*`` directly, so every recovery path above — including the
full chaos soak — runs deterministically with no real waiting.

Graceful drain: :meth:`Scheduler.request_drain` (wired to SIGINT /
SIGTERM by the CLI) stops new assignments, lets in-flight jobs finish
within ``drain_timeout_s``, flushes the checkpoint and returns a
:class:`SweepResult` with ``drained=True`` — the remainder resumes with
``--resume``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union,
)

from repro.gpusim.faults import RunnerFaultInjector
from repro.gpusim.stats import SimStats
from repro.obs.events import BusLike, NULL_BUS, RunnerJobEvent, RunnerLeaseEvent

from .checkpoint import Checkpoint, make_record
from .errors import FailedResult, is_retryable
from .jobs import JobSpec, job_hash, shard_of
from .leases import DEFAULT_LEASE_S, Lease, LeaseTable
from .transport import (
    InlineTransport,
    Message,
    SubprocessTransport,
    Transport,
    VirtualClock,
    WallClock,
)

#: Default per-crash retry budget (attempts = retries + 1).
DEFAULT_RETRIES = 2
#: First backoff delay; doubles per attempt.
DEFAULT_BACKOFF_S = 0.25
#: Consecutive lease losses before a job is quarantined as poison.
DEFAULT_MAX_LOSSES = 3
#: How long a graceful drain waits for in-flight jobs before killing them.
DEFAULT_DRAIN_TIMEOUT_S = 30.0
#: Idle poll interval (also the virtual-clock tick in tests).
POLL_INTERVAL_S = 0.005

Clock = Union[WallClock, VirtualClock]
Outcome = Union[SimStats, FailedResult]
OnResult = Callable[[str, JobSpec, object], None]


@dataclass
class SweepResult:
    """Outcome of one scheduler run (or :func:`repro.runner.pool.run_jobs`).

    ``results`` maps job hash -> ``SimStats`` | :class:`FailedResult`;
    ``specs`` maps the same hashes back to their specs.  ``executed`` /
    ``reused`` / ``failed`` count cells run this invocation, cells
    satisfied from the checkpoint, and cells that ended failed (either
    way).  The remaining fields are the scheduler's robustness ledger:
    ``drained`` (a graceful shutdown cut the run short, ``remaining``
    cells unrun), ``duplicates`` (results dropped by exactly-once
    dedup), ``losses`` (lease expiries), ``steals`` (cross-shard
    claims).
    """

    results: Dict[str, object] = field(default_factory=dict)
    specs: Dict[str, JobSpec] = field(default_factory=dict)
    executed: int = 0
    reused: int = 0
    failed: int = 0
    drained: bool = False
    remaining: int = 0
    duplicates: int = 0
    losses: int = 0
    steals: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def cells(self) -> Dict[str, Dict[str, object]]:
        """Nested ``{app: {mechanism: result}}`` view of a grid sweep."""
        out: Dict[str, Dict[str, object]] = {}
        for key, spec in self.specs.items():
            out.setdefault(spec.app, {})[spec.mechanism] = self.results[key]
        return out


@dataclass
class _Pending:
    """One queue entry: a job waiting (possibly under backoff) to run."""

    spec: JobSpec
    key: str
    attempt: int
    not_before: float = 0.0


class Scheduler:
    """See the module docstring for the architecture."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        *,
        transport: Optional[Transport] = None,
        jobs: int = 0,
        timeout: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        lease_s: Optional[float] = None,
        max_losses: int = DEFAULT_MAX_LOSSES,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        checkpoint: Optional[Checkpoint] = None,
        resume: bool = False,
        retry_failed: bool = False,
        on_result: Optional[OnResult] = None,
        obs: Optional[BusLike] = None,
        clock: Optional[Clock] = None,
        faults: Optional[RunnerFaultInjector] = None,
    ) -> None:
        self._specs = list(specs)
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff_s = float(backoff_s)
        self._max_losses = max(1, int(max_losses))
        self._drain_timeout_s = float(drain_timeout_s)
        self._checkpoint = checkpoint
        self._resume = resume
        self._retry_failed = retry_failed
        self._on_result = on_result
        self._bus: BusLike = obs if obs is not None else NULL_BUS
        self._clock: Clock = clock if clock is not None else WallClock()
        self._faults = faults
        if lease_s is None:
            # Inline virtual workers cannot die silently without a fault
            # injector, so the legacy jobs=0 mode runs lease-less.
            lease_s = DEFAULT_LEASE_S if (jobs > 0 or faults is not None) else 0.0
        self._lease_s = float(lease_s)
        if transport is None:
            transport = self._default_transport(jobs)
        self._transport = transport

        # Mutable run state.
        self._result = SweepResult()
        self._shards: List[Deque[_Pending]] = [
            deque() for _ in range(self._transport.workers)
        ]
        self._leases = LeaseTable()
        self._idle: Set[int] = set()
        self._settled: Set[str] = set()
        self._crashes: Dict[str, int] = {}
        self._loss_count: Dict[str, int] = {}
        self._first_start: Dict[str, float] = {}
        self._remaining = 0
        self._draining = False
        self._drain_deadline: Optional[float] = None
        #: workers known dead and deliberately left down (drain mode)
        self._down: Set[int] = set()

    def _default_transport(self, jobs: int) -> Transport:
        if jobs <= 0:
            return InlineTransport(workers=1, faults=self._faults)
        plan = self._faults.plan.to_dict() if self._faults is not None else None
        return SubprocessTransport(
            jobs, lease_s=self._lease_s or DEFAULT_LEASE_S,
            faults=self._faults, fault_plan=plan,
        )

    # ------------------------------------------------------------------
    # Public surface

    def request_drain(self) -> None:
        """Begin a graceful shutdown: no new assignments; in-flight jobs
        get ``drain_timeout_s`` to finish and checkpoint, then die.
        Idempotent, async-signal-safe (sets flags only)."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def run(self) -> SweepResult:
        """Run every spec to settlement (or drain); never raises for a
        failing *cell* — see :class:`FailedResult`."""
        todo = self._prepare()
        if not todo:
            return self._result
        for pending in todo:
            self._enqueue(pending)
        self._remaining = len(todo)
        self._transport.start()
        try:
            self._loop()
        finally:
            self._transport.stop()
        if self._remaining:
            self._result.drained = True
            self._result.remaining = self._remaining
        return self._result

    # ------------------------------------------------------------------
    # Setup: dedup, checkpoint reuse

    def _prepare(self) -> List[_Pending]:
        result = self._result
        ordered: List[JobSpec] = []
        for spec in self._specs:
            key = job_hash(spec)
            if key in result.specs:
                continue
            result.specs[key] = spec
            ordered.append(spec)
        if self._checkpoint is not None and not self._resume:
            self._checkpoint.discard()
        todo: List[_Pending] = []
        for spec in ordered:
            key = job_hash(spec)
            prior = (
                self._checkpoint.result_for(key)
                if self._checkpoint is not None else None
            )
            if prior is not None and not (
                self._retry_failed and getattr(prior, "failed", False)
            ):
                result.results[key] = prior
                result.reused += 1
                if getattr(prior, "failed", False):
                    result.failed += 1
                self._emit_job(key, spec, phase="reused")
                continue
            todo.append(_Pending(spec=spec, key=key, attempt=1))
        return todo

    # ------------------------------------------------------------------
    # The event loop

    def _loop(self) -> None:
        while self._remaining:
            now = self._clock.now()
            progressed = False
            for worker, message in self._transport.poll(now):
                if self._handle_message(worker, message, now):
                    progressed = True
            if self._reap_dead(now):
                progressed = True
            if self._enforce_deadlines(now):
                progressed = True
            if self._enforce_leases(now):
                progressed = True
            if self._draining:
                if self._drain_deadline is None:
                    self._drain_deadline = now + self._drain_timeout_s
                    self._emit_lease(
                        "", -1, "drain",
                        detail="%d in flight, %d queued"
                        % (len(self._leases), self._queued()),
                    )
                if len(self._leases) == 0:
                    break
                if now >= self._drain_deadline:
                    for lease in self._leases.active():
                        self._revoke(lease, now)
                    break
            elif self._assign(now):
                progressed = True
            if not progressed and self._remaining:
                self._clock.sleep(POLL_INTERVAL_S)

    def _queued(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------
    # Message handling

    def _handle_message(self, worker: int, message: Message,
                        now: float) -> bool:
        kind = message.get("type")
        if kind == "ready":
            self._idle.add(worker)
            return True
        if kind == "heartbeat":
            lease = self._leases.for_worker(worker)
            if (
                lease is not None
                and lease.key == message.get("key")
                and lease.attempt == message.get("attempt")
            ):
                lease.renew(now)
                self._emit_lease(
                    lease.key, worker, "renew", attempt=lease.attempt,
                    detail="heartbeat %d" % lease.heartbeats,
                )
            return False
        if kind == "result":
            return self._handle_result(worker, message, now)
        return False

    def _handle_result(self, worker: int, message: Message,
                       now: float) -> bool:
        key = str(message.get("key", ""))
        attempt = int(message.get("attempt", 1))
        lease = self._leases.for_worker(worker)
        if lease is not None and lease.key == key:
            self._leases.release(worker)
            self._emit_lease(key, worker, "release", attempt=lease.attempt)
            if self._transport.alive(worker):
                self._idle.add(worker)
        if key in self._settled or key not in self._result.specs:
            self._result.duplicates += 1
            self._emit_lease(
                key, worker, "duplicate", attempt=attempt,
                detail="result for settled job dropped",
            )
            return True
        spec = self._result.specs[key]
        if message.get("status") == "ok":
            self._settle(
                spec, key, SimStats.from_json_dict(message["stats"]),
                attempts=attempt, now=now,
            )
            return True
        error = message.get("error") or {}
        kind = str(error.get("kind", "JobCrash"))
        failure = FailedResult(
            kind=kind,
            message=str(error.get("message", "")),
            attempts=attempt,
            state_dump=error.get("state_dump") or {},
        )
        if is_retryable(kind) and self._transport.isolated:
            self._crashes[key] = self._crashes.get(key, 0) + 1
            if self._crashes[key] <= self._retries:
                self._requeue_crash(spec, key, attempt, now, kind)
                return True
        self._settle(spec, key, failure, attempts=attempt, now=now)
        return True

    # ------------------------------------------------------------------
    # Failure detection: dead workers, deadlines, lease expiry

    def _reap_dead(self, now: float) -> bool:
        progressed = False
        for worker in range(self._transport.workers):
            if worker in self._down or self._transport.alive(worker):
                continue
            progressed = True
            self._idle.discard(worker)
            detail = self._transport.exit_detail(worker)
            lease = self._leases.for_worker(worker)
            if lease is not None:
                self._leases.release(worker)
                self._transport.kill(worker, now)
                key, spec = lease.key, self._result.specs[lease.key]
                self._emit_lease(
                    key, worker, "release", attempt=lease.attempt,
                    detail="worker died: %s" % detail,
                )
                if key not in self._settled:
                    self._crashes[key] = self._crashes.get(key, 0) + 1
                    if self._crashes[key] <= self._retries:
                        self._requeue_crash(
                            spec, key, lease.attempt, now, "JobCrash"
                        )
                    else:
                        self._settle(
                            spec, key,
                            FailedResult(
                                kind="JobCrash",
                                message="worker died (%s) without reporting"
                                % detail,
                                attempts=lease.attempt,
                            ),
                            attempts=lease.attempt, now=now,
                        )
            else:
                self._transport.kill(worker, now)
            if self._draining:
                self._down.add(worker)
            else:
                self._transport.respawn(worker, now)
        return progressed

    def _enforce_deadlines(self, now: float) -> bool:
        progressed = False
        for lease in self._leases.timed_out(now):
            progressed = True
            spec = self._result.specs[lease.key]
            self._revoke(lease, now)
            self._settle(
                spec, lease.key,
                FailedResult(
                    kind="JobTimeout",
                    message="job %s exceeded the %.1fs wall-clock timeout"
                    % (spec.label(), self._timeout or 0.0),
                    attempts=lease.attempt,
                ),
                attempts=lease.attempt, now=now,
            )
        return progressed

    def _enforce_leases(self, now: float) -> bool:
        progressed = False
        for lease in self._leases.expired(now):
            progressed = True
            key = lease.key
            spec = self._result.specs[key]
            self._result.losses += 1
            self._loss_count[key] = self._loss_count.get(key, 0) + 1
            self._emit_lease(
                key, lease.worker, "expire", attempt=lease.attempt,
                detail="no heartbeat for %.1fs (lease %.1fs)"
                % (now - lease.last_heartbeat, lease.lease_s),
            )
            self._revoke(lease, now)
            if self._loss_count[key] >= self._max_losses:
                self._emit_lease(
                    key, lease.worker, "quarantine", attempt=lease.attempt,
                    detail="poisoned after %d lost workers"
                    % self._loss_count[key],
                )
                self._settle(
                    spec, key,
                    FailedResult(
                        kind="poison",
                        message="job %s lost %d workers in a row "
                        "(last: lease expired on worker %d); quarantined"
                        % (spec.label(), self._loss_count[key], lease.worker),
                        attempts=lease.attempt,
                    ),
                    attempts=lease.attempt, now=now,
                )
            else:
                backoff = self._backoff_s * (2 ** (self._loss_count[key] - 1))
                self._emit_job(
                    key, spec, phase="retry", attempt=lease.attempt + 1,
                    error_kind="worker-lost",
                )
                self._enqueue(
                    _Pending(
                        spec=spec, key=key, attempt=lease.attempt + 1,
                        not_before=now + backoff,
                    )
                )
        return progressed

    def _revoke(self, lease: Lease, now: float) -> None:
        """Take a job back from its worker by force: release the lease,
        SIGKILL the (wedged, stalled, or over-budget) worker, respawn."""
        self._leases.release(lease.worker)
        self._idle.discard(lease.worker)
        self._transport.kill(lease.worker, now)
        if self._draining:
            self._down.add(lease.worker)
        else:
            self._transport.respawn(lease.worker, now)

    def _requeue_crash(self, spec: JobSpec, key: str, attempt: int,
                       now: float, error_kind: str) -> None:
        backoff = self._backoff_s * (2 ** (self._crashes.get(key, 1) - 1))
        self._emit_job(
            key, spec, phase="retry", attempt=attempt + 1,
            error_kind=error_kind,
        )
        self._enqueue(
            _Pending(
                spec=spec, key=key, attempt=attempt + 1,
                not_before=now + backoff,
            )
        )

    # ------------------------------------------------------------------
    # Assignment: shard queues + work stealing

    def _enqueue(self, pending: _Pending) -> None:
        shard = shard_of(pending.key, len(self._shards))
        self._shards[shard].append(pending)

    def _claim(self, worker: int, now: float) -> Optional[Tuple[_Pending, int]]:
        """Next runnable entry for ``worker``: own shard first, then the
        tail of the longest other shard (a steal).  Returns the entry and
        the shard it was stolen from (-1 = the worker's own shard)."""
        own = self._shards[worker]
        for index, pending in enumerate(own):
            if pending.not_before <= now:
                del own[index]
                return pending, -1
        victims = sorted(
            (shard for shard in range(len(self._shards)) if shard != worker),
            key=lambda shard: len(self._shards[shard]),
            reverse=True,
        )
        for victim in victims:
            queue = self._shards[victim]
            for index in range(len(queue) - 1, -1, -1):
                if queue[index].not_before <= now:
                    pending = queue[index]
                    del queue[index]
                    self._result.steals += 1
                    self._emit_lease(
                        pending.key, worker, "steal", attempt=pending.attempt,
                        detail="from shard %d" % victim,
                    )
                    return pending, victim
        return None

    def _assign(self, now: float) -> bool:
        progressed = False
        for worker in sorted(self._idle):
            if self._leases.for_worker(worker) is not None:
                continue
            claimed = self._claim(worker, now)
            if claimed is None:
                continue
            pending, stolen_from = claimed
            self._idle.discard(worker)
            deadline = (now + self._timeout) if self._timeout else None
            lease = self._leases.grant(
                pending.key, worker, pending.attempt, now,
                self._lease_s, deadline=deadline, stolen_from=stolen_from,
            )
            self._first_start.setdefault(pending.key, now)
            self._emit_lease(
                pending.key, worker, "grant", attempt=pending.attempt,
                detail="lease %.1fs" % lease.lease_s,
            )
            self._emit_job(
                pending.key, pending.spec,
                phase="start" if pending.attempt == 1 else "retry",
                attempt=pending.attempt,
            )
            self._transport.assign(
                worker,
                {
                    "type": "assign",
                    "key": pending.key,
                    "spec": pending.spec.to_dict(),
                    "attempt": pending.attempt,
                    "lease_s": self._lease_s,
                },
            )
            progressed = True
        return progressed

    # ------------------------------------------------------------------
    # Settlement: exactly-once effects

    def _settle(self, spec: JobSpec, key: str, outcome: Outcome,
                attempts: int, now: float) -> None:
        if key in self._settled:
            return
        self._settled.add(key)
        self._remaining -= 1
        result = self._result
        elapsed = now - self._first_start.get(key, now)
        result.results[key] = outcome
        result.executed += 1
        failed = bool(getattr(outcome, "failed", False))
        if failed:
            result.failed += 1
        if self._checkpoint is not None:
            self._checkpoint.append(
                make_record(key, spec.to_dict(), outcome, attempts, elapsed)
            )
            if self._faults is not None and self._faults.message_fires(
                "checkpoint.torn", key,
                detail="torn trailing write after %s" % key,
            ):
                self._checkpoint.tear()
        self._emit_job(
            key, spec,
            phase="failed" if failed else "done",
            attempt=attempts,
            error_kind=outcome.kind if isinstance(outcome, FailedResult) else "",
            elapsed_s=elapsed,
        )
        if self._on_result is not None:
            self._on_result(key, spec, outcome)

    # ------------------------------------------------------------------
    # Telemetry

    def _emit_job(self, key: str, spec: JobSpec, *, phase: str,
                  attempt: int = 1, error_kind: str = "",
                  elapsed_s: float = 0.0) -> None:
        if self._bus.enabled:
            self._bus.emit(
                RunnerJobEvent(
                    cycle=0, sm_id=-1, key=key, app=spec.app,
                    mechanism=spec.mechanism, phase=phase, attempt=attempt,
                    error_kind=error_kind, elapsed_s=elapsed_s,
                )
            )

    def _emit_lease(self, key: str, worker: int, action: str, *,
                    attempt: int = 1, detail: str = "") -> None:
        if self._bus.enabled:
            self._bus.emit(
                RunnerLeaseEvent(
                    cycle=0, sm_id=-1, key=key, worker=worker, action=action,
                    attempt=attempt, detail=detail,
                )
            )


__all__ = [
    "DEFAULT_BACKOFF_S",
    "DEFAULT_DRAIN_TIMEOUT_S",
    "DEFAULT_MAX_LOSSES",
    "DEFAULT_RETRIES",
    "POLL_INTERVAL_S",
    "Scheduler",
    "SweepResult",
]
