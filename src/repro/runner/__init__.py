"""Fault-tolerant experiment execution (the sweep runner).

The paper's evaluation is a large (app x mechanism x config x scale x
seed) grid; this package makes running it resilient — a fleet-grade
scheduler/worker architecture:

* :mod:`repro.runner.jobs` — :class:`JobSpec` (one grid cell) and the
  deterministic :func:`job_hash` that is the cell's identity everywhere
  (checkpoint key, dedup key, work-stealing shard key).
* :mod:`repro.runner.scheduler` — the :class:`Scheduler`: shard queues
  with work stealing, expiring leases renewed by heartbeats, retry /
  ``worker-lost`` / poison-quarantine recovery, exactly-once settlement
  by job hash, and graceful SIGINT/SIGTERM drain.
* :mod:`repro.runner.leases` — the lease table (liveness window vs
  absolute per-job deadline).
* :mod:`repro.runner.transport` — the pluggable message plane between
  scheduler and workers (inline virtual workers, persistent subprocess
  workers; socket-shaped for a future distributed plane).
* :mod:`repro.runner.worker` — the worker-process claim/execute/report
  loop and its heartbeat thread.
* :mod:`repro.runner.pool` — the stable facade: :func:`run_jobs` /
  :func:`run_grid` with the legacy inline (``jobs=0``) and subprocess
  (``jobs>=1``) semantics.
* :mod:`repro.runner.checkpoint` — atomic JSONL checkpointing, the
  ``--resume`` semantics, and torn-line quarantine.
* :mod:`repro.runner.errors` — the structured error taxonomy
  (``JobTimeout`` / ``JobCrash`` / ``SimulationHang`` / ``InvalidConfig``
  / ``invariant:<name>`` / ``worker-lost`` / ``poison`` /
  ``checkpoint:torn``).

The full walkthrough (formats, tuning, chaos hooks, the failure-mode ->
detection -> recovery matrix) is ``docs/ROBUSTNESS.md``; the CLI front
ends are ``snake-repro sweep`` and ``snake-repro chaos --runner``.
"""

from .checkpoint import Checkpoint, CheckpointError
from .errors import (
    ERROR_KINDS,
    CheckpointTorn,
    FailedResult,
    InvalidConfig,
    InvalidConfigError,
    InvariantViolation,
    InvariantViolationError,
    JobCrash,
    JobError,
    JobTimeout,
    PoisonedJob,
    SimulationHang,
    SimulationHangError,
    WorkerLost,
    is_retryable,
)
from .jobs import JobSpec, engine_fingerprint, execute_job, job_hash, shard_of
from .leases import Lease, LeaseTable
from .pool import SweepResult, default_jobs, grid_specs, run_grid, run_jobs
from .scheduler import Scheduler
from .transport import (
    InlineTransport,
    SubprocessTransport,
    Transport,
    VirtualClock,
    WallClock,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointTorn",
    "ERROR_KINDS",
    "FailedResult",
    "InlineTransport",
    "InvalidConfig",
    "InvalidConfigError",
    "InvariantViolation",
    "InvariantViolationError",
    "JobCrash",
    "JobError",
    "JobSpec",
    "JobTimeout",
    "Lease",
    "LeaseTable",
    "PoisonedJob",
    "Scheduler",
    "SimulationHang",
    "SimulationHangError",
    "SubprocessTransport",
    "SweepResult",
    "Transport",
    "VirtualClock",
    "WallClock",
    "WorkerLost",
    "default_jobs",
    "engine_fingerprint",
    "execute_job",
    "grid_specs",
    "is_retryable",
    "job_hash",
    "run_grid",
    "run_jobs",
    "shard_of",
]
