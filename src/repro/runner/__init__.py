"""Fault-tolerant experiment execution (the sweep runner).

The paper's evaluation is a large (app x mechanism x config x scale x
seed) grid; this package makes running it resilient:

* :mod:`repro.runner.jobs` — :class:`JobSpec` (one grid cell) and the
  deterministic :func:`job_hash` that is the cell's identity everywhere.
* :mod:`repro.runner.pool` — :func:`run_jobs` / :func:`run_grid`:
  crash-isolated subprocess execution with per-job timeouts, bounded
  retry with exponential backoff, and graceful ``FailedResult`` cells.
* :mod:`repro.runner.checkpoint` — atomic JSONL checkpointing and the
  ``--resume`` semantics.
* :mod:`repro.runner.errors` — the structured error taxonomy
  (``JobTimeout`` / ``JobCrash`` / ``SimulationHang`` / ``InvalidConfig``
  / ``invariant:<name>`` from the simulation sanitizer).

The full walkthrough (formats, tuning, chaos hooks) is
``docs/ROBUSTNESS.md``; the CLI front end is ``snake-repro sweep``.
"""

from .checkpoint import Checkpoint, CheckpointError
from .errors import (
    ERROR_KINDS,
    FailedResult,
    InvalidConfig,
    InvalidConfigError,
    InvariantViolation,
    InvariantViolationError,
    JobCrash,
    JobError,
    JobTimeout,
    SimulationHang,
    SimulationHangError,
    is_retryable,
)
from .jobs import JobSpec, engine_fingerprint, execute_job, job_hash
from .pool import SweepResult, default_jobs, grid_specs, run_grid, run_jobs

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "ERROR_KINDS",
    "FailedResult",
    "InvalidConfig",
    "InvalidConfigError",
    "InvariantViolation",
    "InvariantViolationError",
    "JobCrash",
    "JobError",
    "JobSpec",
    "JobTimeout",
    "SimulationHang",
    "SimulationHangError",
    "SweepResult",
    "default_jobs",
    "engine_fingerprint",
    "execute_job",
    "grid_specs",
    "is_retryable",
    "job_hash",
    "run_grid",
    "run_jobs",
]
