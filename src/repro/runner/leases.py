"""Expiring job leases: the liveness contract between scheduler and workers.

A worker never *owns* a job — it holds a :class:`Lease` on it.  The lease
is granted when the scheduler assigns the job, renewed by every heartbeat
the worker sends, and revoked the moment the scheduler decides the worker
is gone: either the process died (fast path, detected from the exit
code) or the heartbeats stopped for longer than the lease duration (slow
path — the process may be wedged, paused, or on the far side of a dead
transport; the scheduler cannot tell and does not need to).  Either way
the job goes back on the queue and another worker steals it.

Two separate clocks-of-death ride on one lease:

* ``lease_s`` — the *liveness* window.  ``expired()`` is true when no
  heartbeat has arrived for longer than this; the job is requeued with a
  ``worker-lost`` taxonomy kind and the loss is counted toward the
  poison-quarantine threshold.
* ``deadline`` — the absolute per-job wall-clock *budget* (the sweep's
  ``--timeout``).  ``timed_out()`` is deliberately independent of
  heartbeats: a worker that heartbeats forever while the simulation
  never finishes is alive but still over budget, and becomes
  ``FAILED(JobTimeout)`` exactly as in the pre-lease runner.

All timestamps are plain floats from the scheduler's injected clock, so
the whole table is testable (and chaos-soakable) on a virtual clock with
no real waiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default liveness window in seconds.  Heartbeats arrive every
#: ``lease_s / HEARTBEATS_PER_LEASE``, so several must be lost in a row
#: before a lease expires — one dropped message never kills a worker.
DEFAULT_LEASE_S = 15.0
HEARTBEATS_PER_LEASE = 5


def heartbeat_interval(lease_s: float) -> float:
    """How often a worker must prove liveness for the given lease."""
    return max(lease_s / HEARTBEATS_PER_LEASE, 0.01)


@dataclass
class Lease:
    """One job leased to one worker, with its liveness bookkeeping."""

    key: str
    worker: int
    attempt: int
    granted_at: float
    lease_s: float
    deadline: Optional[float] = None
    last_heartbeat: float = 0.0
    heartbeats: int = 0
    #: shard the job was stolen from (-1 = the worker's own shard)
    stolen_from: int = -1

    def __post_init__(self) -> None:
        if self.last_heartbeat == 0.0:
            self.last_heartbeat = self.granted_at

    def renew(self, now: float) -> None:
        """Book one heartbeat: the worker proved liveness at ``now``."""
        self.last_heartbeat = now
        self.heartbeats += 1

    def expired(self, now: float) -> bool:
        """True when the liveness window has lapsed (``lease_s <= 0``
        means the lease never expires — the inline transport's mode)."""
        return self.lease_s > 0 and (now - self.last_heartbeat) > self.lease_s

    def timed_out(self, now: float) -> bool:
        """True when the job is over its absolute wall-clock budget."""
        return self.deadline is not None and now >= self.deadline

    def age(self, now: float) -> float:
        return now - self.granted_at


class LeaseTable:
    """All active leases, indexed both ways (worker -> lease, key -> lease).

    Invariants the table enforces: a worker holds at most one lease, and
    a job is leased to at most one worker at a time.  (A *revoked* job
    can be re-leased while a stale result from the old worker is still
    in flight — that is the scheduler's dedup-by-job-hash department,
    not the table's.)
    """

    def __init__(self) -> None:
        self._by_worker: Dict[int, Lease] = {}
        self._by_key: Dict[str, Lease] = {}

    def grant(
        self,
        key: str,
        worker: int,
        attempt: int,
        now: float,
        lease_s: float,
        deadline: Optional[float] = None,
        stolen_from: int = -1,
    ) -> Lease:
        if worker in self._by_worker:
            raise ValueError(
                "worker %d already holds a lease on %s"
                % (worker, self._by_worker[worker].key)
            )
        if key in self._by_key:
            raise ValueError(
                "job %s is already leased to worker %d"
                % (key, self._by_key[key].worker)
            )
        lease = Lease(
            key=key, worker=worker, attempt=attempt, granted_at=now,
            lease_s=lease_s, deadline=deadline, stolen_from=stolen_from,
        )
        self._by_worker[worker] = lease
        self._by_key[key] = lease
        return lease

    def renew(self, worker: int, now: float) -> Optional[Lease]:
        """Heartbeat from ``worker``; returns the renewed lease (or
        ``None`` for a heartbeat that outlived its lease — stale, benign)."""
        lease = self._by_worker.get(worker)
        if lease is not None:
            lease.renew(now)
        return lease

    def release(self, worker: int) -> Optional[Lease]:
        """Drop the lease a worker holds (job finished or revoked)."""
        lease = self._by_worker.pop(worker, None)
        if lease is not None:
            self._by_key.pop(lease.key, None)
        return lease

    def for_worker(self, worker: int) -> Optional[Lease]:
        return self._by_worker.get(worker)

    def for_key(self, key: str) -> Optional[Lease]:
        return self._by_key.get(key)

    def expired(self, now: float) -> List[Lease]:
        """Leases whose liveness window lapsed, in grant order."""
        return sorted(
            (l for l in self._by_worker.values() if l.expired(now)),
            key=lambda l: l.granted_at,
        )

    def timed_out(self, now: float) -> List[Lease]:
        """Leases over their absolute job budget, in grant order."""
        return sorted(
            (l for l in self._by_worker.values() if l.timed_out(now)),
            key=lambda l: l.granted_at,
        )

    def active(self) -> List[Lease]:
        return sorted(self._by_worker.values(), key=lambda l: l.granted_at)

    def __len__(self) -> int:
        return len(self._by_worker)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key


__all__ = [
    "DEFAULT_LEASE_S",
    "HEARTBEATS_PER_LEASE",
    "Lease",
    "LeaseTable",
    "heartbeat_interval",
]
