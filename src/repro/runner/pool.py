"""Crash-isolated parallel job execution with checkpointing.

:func:`run_jobs` drives a set of :class:`~repro.runner.jobs.JobSpec` cells
to completion.  With ``jobs >= 1`` each cell runs in its own subprocess
(one process per job, results over a pipe), which buys three properties a
shared pool cannot:

* **Crash isolation** — a SIGKILL'd / OOM'd / crashed worker loses one
  cell, not the sweep; the parent classifies the silent exit as
  :class:`~repro.runner.errors.JobCrash` and retries with exponential
  backoff.
* **Enforceable timeouts** — the parent holds a per-job wall-clock
  deadline and ``kill()``-s the worker past it (``JobTimeout``); no
  cooperation from the (possibly hung) child is needed.
* **Hang containment** — the in-simulator watchdog converts livelocks to
  ``SimulationHang`` *inside* the worker, complete with a state dump that
  travels back over the pipe.

With ``jobs = 0`` cells execute inline in the calling process — no
isolation and no timeout enforcement, but zero process overhead and full
monkeypatchability; the memoized figure paths in
:mod:`repro.analysis.experiments` use this mode.

Finished cells stream into an atomic JSONL checkpoint as they land (see
:mod:`repro.runner.checkpoint`), so killing the orchestrator at any point
loses at most the in-flight cells; ``resume=True`` reuses every completed
record and runs only the remainder.  Job lifecycle transitions are emitted
as :class:`~repro.obs.events.RunnerJobEvent` on a caller-supplied
``repro.obs`` bus.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import os
import time
from multiprocessing.connection import Connection
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.gpusim.config import GPUConfig
from repro.gpusim.stats import SimStats
from repro.obs.events import BusLike, NULL_BUS, RunnerJobEvent

from .checkpoint import Checkpoint, make_record
from .errors import FailedResult, JobError, is_retryable
from .jobs import JobSpec, execute_job, job_hash

#: Default per-crash retry budget (attempts = retries + 1).
DEFAULT_RETRIES = 2
#: First backoff delay; doubles per attempt.
DEFAULT_BACKOFF_S = 0.25


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (fast, inherits the loaded modules); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_entry(spec_dict: dict, conn: Connection) -> None:
    """Subprocess entry: run one job, ship the outcome over the pipe.

    Typed failures travel as data; anything else becomes a ``JobCrash``
    wire record.  A worker that dies without sending (SIGKILL, interpreter
    abort) is classified by the parent from its exit code.
    """
    try:
        spec = JobSpec.from_dict(spec_dict)
        stats = execute_job(spec)
        conn.send({"status": "ok", "stats": stats.to_json_dict()})
    except JobError as exc:
        conn.send(
            {
                "status": "failed",
                "error": {
                    "kind": exc.kind,
                    "message": str(exc),
                    "state_dump": exc.state_dump,
                },
            }
        )
    except BaseException as exc:  # noqa: BLE001 - the pipe is the only channel out
        import traceback

        try:
            conn.send(
                {
                    "status": "failed",
                    "error": {
                        "kind": "JobCrash",
                        "message": "worker raised %s: %s\n%s"
                        % (type(exc).__name__, exc, traceback.format_exc(limit=10)),
                        "state_dump": {},
                    },
                }
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class _Running:
    spec: JobSpec
    key: str
    attempt: int
    proc: "multiprocessing.Process"
    conn: object
    started: float
    deadline: Optional[float]


@dataclass
class SweepResult:
    """Outcome of one :func:`run_jobs` invocation.

    ``results`` maps job hash -> ``SimStats`` | :class:`FailedResult`;
    ``specs`` maps the same hashes back to their specs.  ``executed`` /
    ``reused`` / ``failed`` count cells run this invocation, cells
    satisfied from the checkpoint, and cells that ended failed (either
    way), respectively.
    """

    results: Dict[str, object] = field(default_factory=dict)
    specs: Dict[str, JobSpec] = field(default_factory=dict)
    executed: int = 0
    reused: int = 0
    failed: int = 0

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def cells(self) -> Dict[str, Dict[str, object]]:
        """Nested ``{app: {mechanism: result}}`` view of a grid sweep."""
        out: Dict[str, Dict[str, object]] = {}
        for key, spec in self.specs.items():
            out.setdefault(spec.app, {})[spec.mechanism] = self.results[key]
        return out


def _classify_exception(exc: Exception) -> FailedResult:
    if isinstance(exc, JobError):
        return FailedResult(kind=exc.kind, message=str(exc), state_dump=exc.state_dump)
    return FailedResult(kind="JobCrash", message="%s: %s" % (type(exc).__name__, exc))


def _wire_to_failure(error: dict, attempts: int) -> FailedResult:
    return FailedResult(
        kind=error.get("kind", "JobCrash"),
        message=error.get("message", ""),
        attempts=attempts,
        state_dump=error.get("state_dump") or {},
    )


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 0,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    checkpoint: Optional[Checkpoint] = None,
    resume: bool = False,
    retry_failed: bool = False,
    on_result: Optional[Callable[[str, JobSpec, object], None]] = None,
    obs: Optional[BusLike] = None,
) -> SweepResult:
    """Run every spec; never raises for a failing *cell*.

    ``jobs`` — worker process count (0 = inline, no isolation).
    ``timeout`` — per-job wall-clock seconds (subprocess mode only).
    ``retries`` — extra attempts for transient (``JobCrash``) failures.
    ``checkpoint`` — streams finished cells; with ``resume`` their records
    short-circuit re-execution (``retry_failed`` re-runs failed ones).
    ``on_result(key, spec, result)`` fires for each cell finished *this*
    invocation, after its checkpoint record is durable — an exception it
    raises aborts the sweep without losing completed work.
    ``obs`` — a ``repro.obs`` bus for ``RunnerJobEvent`` lifecycle events.
    """
    bus = obs if obs is not None else NULL_BUS
    result = SweepResult()

    # Dedup while preserving order: a grid with repeated cells runs each once.
    ordered: List[JobSpec] = []
    for spec in specs:
        key = job_hash(spec)
        if key in result.specs:
            continue
        result.specs[key] = spec
        ordered.append(spec)

    if checkpoint is not None and not resume:
        checkpoint.discard()

    todo: List[JobSpec] = []
    for spec in ordered:
        key = job_hash(spec)
        prior = checkpoint.result_for(key) if checkpoint is not None else None
        if prior is not None and not (
            retry_failed and getattr(prior, "failed", False)
        ):
            result.results[key] = prior
            result.reused += 1
            if getattr(prior, "failed", False):
                result.failed += 1
            if bus.enabled:
                bus.emit(
                    RunnerJobEvent(
                        cycle=0, sm_id=-1, key=key, app=spec.app,
                        mechanism=spec.mechanism, phase="reused",
                    )
                )
            continue
        todo.append(spec)

    def finish(spec: JobSpec, key: str, outcome: Union[SimStats, FailedResult],
               attempts: int, started: float) -> None:
        elapsed = time.monotonic() - started
        result.results[key] = outcome
        result.executed += 1
        failed = getattr(outcome, "failed", False)
        if failed:
            result.failed += 1
        if checkpoint is not None:
            checkpoint.append(
                make_record(key, spec.to_dict(), outcome, attempts, elapsed)
            )
        if bus.enabled:
            bus.emit(
                RunnerJobEvent(
                    cycle=0, sm_id=-1, key=key, app=spec.app,
                    mechanism=spec.mechanism,
                    phase="failed" if failed else "done",
                    attempt=attempts,
                    error_kind=outcome.kind if failed else "",
                    elapsed_s=elapsed,
                )
            )
        if on_result is not None:
            on_result(key, spec, outcome)

    if jobs <= 0:
        _run_inline(todo, result, finish, bus)
    else:
        _run_pooled(
            todo, result, finish, bus,
            jobs=jobs, timeout=timeout, retries=retries, backoff_s=backoff_s,
        )
    return result


def _run_inline(todo: Sequence[JobSpec], result: SweepResult,
                finish: Callable[..., None], bus: BusLike) -> None:
    for spec in todo:
        key = job_hash(spec)
        started = time.monotonic()
        if bus.enabled:
            bus.emit(
                RunnerJobEvent(
                    cycle=0, sm_id=-1, key=key, app=spec.app,
                    mechanism=spec.mechanism, phase="start",
                )
            )
        try:
            outcome = execute_job(spec)
        except Exception as exc:  # one poisoned cell must not kill the sweep
            outcome = _classify_exception(exc)
        finish(spec, key, outcome, attempts=1, started=started)


def _run_pooled(todo: Sequence[JobSpec], result: SweepResult,
                finish: Callable[..., None], bus: BusLike, *, jobs: int,
                timeout: Optional[float], retries: int,
                backoff_s: float) -> None:
    ctx = _pool_context()
    # (spec, key, attempt, not_before, first_started)
    pending: List[tuple] = [
        (spec, job_hash(spec), 1, 0.0, None) for spec in todo
    ]
    running: List[_Running] = []

    def launch(spec: JobSpec, key: str, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry, args=(spec.to_dict(), send), daemon=True
        )
        proc.start()
        send.close()  # parent keeps only the receiving end
        now = time.monotonic()
        running.append(
            _Running(
                spec=spec, key=key, attempt=attempt, proc=proc, conn=recv,
                started=now, deadline=(now + timeout) if timeout else None,
            )
        )
        if bus.enabled:
            bus.emit(
                RunnerJobEvent(
                    cycle=0, sm_id=-1, key=key, app=spec.app,
                    mechanism=spec.mechanism,
                    phase="start" if attempt == 1 else "retry", attempt=attempt,
                )
            )

    def settle(entry: _Running, outcome: Union[SimStats, FailedResult],
               first_started: Optional[float]) -> None:
        finish(
            entry.spec, entry.key, outcome, attempts=entry.attempt,
            started=first_started if first_started is not None else entry.started,
        )

    first_start: Dict[str, float] = {}
    try:
        while pending or running:
            now = time.monotonic()
            while pending and len(running) < jobs:
                spec, key, attempt, not_before, first = pending[0]
                if not_before > now:
                    break
                pending.pop(0)
                first_start.setdefault(key, now)
                launch(spec, key, attempt)
            progressed = False
            for entry in list(running):
                message = None
                if entry.conn.poll(0):
                    try:
                        message = entry.conn.recv()
                    except EOFError:
                        message = None
                outcome = None
                retry_after = None
                if message is not None:
                    entry.proc.join()
                    if message.get("status") == "ok":
                        from repro.gpusim.stats import SimStats

                        outcome = SimStats.from_json_dict(message["stats"])
                    else:
                        error = message.get("error") or {}
                        failure = _wire_to_failure(error, entry.attempt)
                        if (
                            is_retryable(error.get("kind", ""))
                            and entry.attempt <= retries
                        ):
                            retry_after = backoff_s * (2 ** (entry.attempt - 1))
                        else:
                            outcome = failure
                elif not entry.proc.is_alive():
                    entry.proc.join()
                    code = entry.proc.exitcode
                    detail = (
                        "killed by signal %d" % -code
                        if code is not None and code < 0
                        else "exit code %s" % code
                    )
                    if entry.attempt <= retries:
                        retry_after = backoff_s * (2 ** (entry.attempt - 1))
                    else:
                        outcome = FailedResult(
                            kind="JobCrash",
                            message="worker died (%s) without reporting" % detail,
                            attempts=entry.attempt,
                        )
                elif entry.deadline is not None and now >= entry.deadline:
                    entry.proc.kill()
                    entry.proc.join()
                    outcome = FailedResult(
                        kind="JobTimeout",
                        message="job %s exceeded the %.1fs wall-clock timeout"
                        % (entry.spec.label(), timeout),
                        attempts=entry.attempt,
                    )
                else:
                    continue
                running.remove(entry)
                progressed = True
                try:
                    entry.conn.close()
                except Exception:
                    pass
                if retry_after is not None:
                    if bus.enabled:
                        bus.emit(
                            RunnerJobEvent(
                                cycle=0, sm_id=-1, key=entry.key,
                                app=entry.spec.app, mechanism=entry.spec.mechanism,
                                phase="retry", attempt=entry.attempt + 1,
                                error_kind="JobCrash",
                            )
                        )
                    pending.append(
                        (
                            entry.spec, entry.key, entry.attempt + 1,
                            now + retry_after, first_start.get(entry.key),
                        )
                    )
                else:
                    settle(entry, outcome, first_start.get(entry.key))
            if not progressed:
                time.sleep(0.005)
    finally:
        for entry in running:
            try:
                entry.proc.kill()
                entry.proc.join()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# Grid convenience.


def grid_specs(
    apps: Sequence[str],
    mechanisms: Sequence[str],
    *,
    config: Union[GPUConfig, Mapping[str, Any], None] = None,
    scale: float = 1.0,
    seed: int = 1,
    faults: Optional[Dict[tuple, str]] = None,
) -> List[JobSpec]:
    """The (app x mechanism) cross product as job specs.

    ``faults`` optionally maps ``(app, mechanism)`` to a chaos fault for
    the resilience tests.
    """
    faults = faults or {}
    return [
        JobSpec.make(
            app, mech, config=config, scale=scale, seed=seed,
            fault=faults.get((app, mech)),
        )
        for app in apps
        for mech in mechanisms
    ]


def run_grid(
    apps: Sequence[str],
    mechanisms: Sequence[str],
    *,
    config: Union[GPUConfig, Mapping[str, Any], None] = None,
    scale: float = 1.0,
    seed: int = 1,
    faults: Optional[Dict[tuple, str]] = None,
    **run_kwargs: Any,
) -> SweepResult:
    """Run the full (app x mechanism) grid; see :func:`run_jobs`."""
    return run_jobs(
        grid_specs(
            apps, mechanisms, config=config, scale=scale, seed=seed, faults=faults
        ),
        **run_kwargs,
    )


def default_jobs() -> int:
    """A conservative parallelism default for the CLI."""
    return max(1, min(4, (os.cpu_count() or 2) - 1))


__all__ = [
    "SweepResult",
    "default_jobs",
    "grid_specs",
    "run_grid",
    "run_jobs",
]
