"""Compatibility facade over the scheduler/worker architecture.

Historically this module *was* the runner: an ad-hoc process pool with
one subprocess per job.  The execution engine now lives in
:mod:`repro.runner.scheduler` (lease-based scheduling, heartbeats,
work-stealing shard queues, exactly-once settlement) with the worker
planes in :mod:`repro.runner.transport` / :mod:`repro.runner.worker`;
this module keeps the stable public surface — :func:`run_jobs`,
:func:`run_grid`, :func:`grid_specs`, :func:`default_jobs`,
:class:`SweepResult` — as a thin shim so existing callers (the CLI, the
figure pipeline in :mod:`repro.analysis.experiments`, external scripts)
need not change.

The legacy semantics are preserved exactly:

* ``jobs = 0`` — inline execution in the calling process over an
  :class:`~repro.runner.transport.InlineTransport`: no isolation, no
  timeout enforcement, no retries, full monkeypatchability.
* ``jobs >= 1`` — crash-isolated persistent worker subprocesses: silent
  worker death classifies as ``JobCrash`` and retries with exponential
  backoff, per-job wall-clock timeouts are enforced by SIGKILL, and the
  in-simulator watchdog converts livelocks to ``SimulationHang`` with a
  state dump.  (The pre-scheduler runner spawned one process per job;
  workers are now persistent and leased, which changes no outcome, only
  process counts.)

Finished cells stream into an atomic JSONL checkpoint as they land, so
killing the orchestrator at any point loses at most in-flight cells;
``resume=True`` reuses every completed record and runs only the
remainder.  Lifecycle transitions are emitted as
:class:`~repro.obs.events.RunnerJobEvent` (plus the scheduler's
:class:`~repro.obs.events.RunnerLeaseEvent`) on a caller-supplied
``repro.obs`` bus.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.gpusim.config import GPUConfig
from repro.gpusim.faults import RunnerFaultInjector, RunnerFaultPlan
from repro.obs.events import BusLike

from .checkpoint import Checkpoint
from .jobs import JobSpec
from .scheduler import (
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    Scheduler,
    SweepResult,
)

def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 0,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    checkpoint: Optional[Checkpoint] = None,
    resume: bool = False,
    retry_failed: bool = False,
    on_result: Optional[Callable[[str, JobSpec, object], None]] = None,
    obs: Optional[BusLike] = None,
    lease_s: Optional[float] = None,
    fault_plan: Optional[RunnerFaultPlan] = None,
) -> SweepResult:
    """Run every spec; never raises for a failing *cell*.

    ``jobs`` — worker process count (0 = inline, no isolation).
    ``timeout`` — per-job wall-clock seconds (subprocess mode only).
    ``retries`` — extra attempts for transient (``JobCrash``) failures.
    ``checkpoint`` — streams finished cells; with ``resume`` their records
    short-circuit re-execution (``retry_failed`` re-runs failed ones).
    ``on_result(key, spec, result)`` fires for each cell finished *this*
    invocation, after its checkpoint record is durable — an exception it
    raises aborts the sweep without losing completed work.
    ``obs`` — a ``repro.obs`` bus for lifecycle / lease events.
    ``lease_s`` — worker liveness window (default: 15 s for subprocess
    workers, lease-less inline).  ``fault_plan`` — a seeded
    :class:`~repro.gpusim.faults.RunnerFaultPlan` for chaos testing.
    """
    faults = (
        RunnerFaultInjector(fault_plan, obs=obs) if fault_plan is not None
        else None
    )
    return Scheduler(
        specs,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        backoff_s=backoff_s,
        lease_s=lease_s,
        checkpoint=checkpoint,
        resume=resume,
        retry_failed=retry_failed,
        on_result=on_result,
        obs=obs,
        faults=faults,
    ).run()


# ---------------------------------------------------------------------------
# Grid convenience.


def grid_specs(
    apps: Sequence[str],
    mechanisms: Sequence[str],
    *,
    config: Union[GPUConfig, Mapping[str, Any], None] = None,
    scale: float = 1.0,
    seed: int = 1,
    faults: Optional[Dict[tuple, str]] = None,
) -> List[JobSpec]:
    """The (app x mechanism) cross product as job specs.

    ``faults`` optionally maps ``(app, mechanism)`` to a chaos fault for
    the resilience tests.
    """
    faults = faults or {}
    return [
        JobSpec.make(
            app, mech, config=config, scale=scale, seed=seed,
            fault=faults.get((app, mech)),
        )
        for app in apps
        for mech in mechanisms
    ]


def run_grid(
    apps: Sequence[str],
    mechanisms: Sequence[str],
    *,
    config: Union[GPUConfig, Mapping[str, Any], None] = None,
    scale: float = 1.0,
    seed: int = 1,
    faults: Optional[Dict[tuple, str]] = None,
    **run_kwargs: Any,
) -> SweepResult:
    """Run the full (app x mechanism) grid; see :func:`run_jobs`."""
    return run_jobs(
        grid_specs(
            apps, mechanisms, config=config, scale=scale, seed=seed, faults=faults
        ),
        **run_kwargs,
    )


def default_jobs() -> int:
    """A conservative parallelism default for the CLI."""
    return max(1, min(4, (os.cpu_count() or 2) - 1))


__all__ = [
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "SweepResult",
    "default_jobs",
    "grid_specs",
    "run_grid",
    "run_jobs",
]
