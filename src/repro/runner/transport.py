"""Pluggable message plane between the sweep :class:`Scheduler` and its
workers.

A :class:`Transport` owns a fixed set of worker *slots* and moves plain
``dict`` messages between them and the scheduler:

* scheduler -> worker: ``{"type": "assign", "key", "spec", "attempt",
  "lease_s"}`` and ``{"type": "stop"}``;
* worker -> scheduler: ``{"type": "ready"}``, ``{"type": "heartbeat"}``
  and ``{"type": "result", "status": "ok" | "failed", ...}``, each
  carrying the worker slot and (for job messages) the job key/attempt.

Two implementations ship today, deliberately shaped so a socket
transport can slot in later without touching the scheduler:

* :class:`InlineTransport` — virtual workers in the scheduler's own
  process; an assignment executes synchronously at the next
  :meth:`poll`.  Zero isolation, full monkeypatchability (the legacy
  ``jobs=0`` mode), and — paired with :class:`VirtualClock` and a
  :class:`~repro.gpusim.faults.RunnerFaultInjector` — a deterministic,
  no-real-waiting harness for the whole lease/steal/requeue machinery.
* :class:`SubprocessTransport` — one persistent OS process per slot
  (fork when available), duplex pipes, a heartbeat thread per in-flight
  job.  Crash isolation and enforceable kill, the ``jobs >= 1`` mode.

Every inbound message funnels through one :class:`Inbox`, which is where
the ``transport.*`` chaos faults live: a seeded
:class:`~repro.gpusim.faults.RunnerFaultInjector` may drop, delay or
duplicate heartbeat/result deliveries (never ``ready`` — a worker that
cannot announce itself would deadlock the fleet, which is an
availability bug, not a robustness scenario).  The scheduler recovers
from all three through the lease machinery plus dedup-by-job-hash.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.gpusim.faults import RunnerFaultInjector

from .leases import heartbeat_interval
from .worker import execute_payload, worker_main

Message = Dict[str, Any]


# ---------------------------------------------------------------------------
# Clocks.  The scheduler never calls time.* directly; it asks its clock,
# so the whole orchestration layer runs (and soaks) on virtual time.


class WallClock:
    """Real time: what production sweeps run on."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class VirtualClock:
    """Deterministic time for tests and the chaos soak: ``sleep`` simply
    advances ``now``, so a 15-second lease expires in microseconds of
    real time while preserving every ordering the wall clock would see."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds


# ---------------------------------------------------------------------------
# The faulty delivery buffer.


#: message types the chaos faults may touch
_FAULTABLE = ("heartbeat", "result")


class Inbox:
    """Ordered delivery buffer on the scheduler's receive path.

    Entries are (deliver_at, seq) ordered; ``sent_at`` records when the
    worker handed the message over, so a worker killed at time T loses
    exactly the messages it had not yet sent (``discard_unsent``) — the
    same semantics a real socket gives a dying peer.
    """

    def __init__(self, faults: Optional[RunnerFaultInjector] = None) -> None:
        self._heap: List[Tuple[float, int, float, int, Message]] = []
        self._seq = 0
        self._faults = faults

    def put(self, worker: int, message: Message, now: float,
            sent_at: Optional[float] = None) -> None:
        sent = now if sent_at is None else sent_at
        deliver = max(now, sent)
        faults = self._faults
        if faults is not None and message.get("type") in _FAULTABLE:
            key = str(message.get("key", ""))
            kind = str(message.get("type"))
            if faults.message_fires(
                "transport.drop", key, detail="dropped %s for %s" % (kind, key)
            ):
                return
            if faults.message_fires(
                "transport.delay", key, detail="delayed %s for %s" % (kind, key)
            ):
                deliver += faults.delay_s(key)
            if faults.message_fires(
                "transport.dup", key, detail="duplicated %s for %s" % (kind, key)
            ):
                self._push(deliver, sent, worker, dict(message))
        self._push(deliver, sent, worker, message)

    def _push(self, deliver_at: float, sent_at: float, worker: int,
              message: Message) -> None:
        heapq.heappush(
            self._heap, (deliver_at, self._seq, sent_at, worker, message)
        )
        self._seq += 1

    def drain(self, now: float) -> List[Tuple[int, Message]]:
        """Every message due by ``now``, in delivery order."""
        out: List[Tuple[int, Message]] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, _, worker, message = heapq.heappop(self._heap)
            out.append((worker, message))
        return out

    def discard_unsent(self, worker: int, killed_at: float) -> None:
        """Drop messages ``worker`` had not yet handed over when it was
        killed (sent messages survive, exactly like a real pipe)."""
        kept = [
            entry for entry in self._heap
            if not (entry[3] == worker and entry[2] > killed_at)
        ]
        if len(kept) != len(self._heap):
            self._heap = kept
            heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


# ---------------------------------------------------------------------------
# Transport interface.


class Transport:
    """What the scheduler requires of any worker plane.

    ``workers`` is the fixed slot count; ``isolated`` tells the
    scheduler whether a worker failure is contained (subprocesses) or
    shares its own fate (inline) — retry policy for worker-*reported*
    failures differs between the two (an inline "crash" already ran in
    this very process; re-running it could not help).
    """

    workers: int = 1
    isolated: bool = False

    def start(self) -> None:
        raise NotImplementedError

    def assign(self, worker: int, message: Message) -> None:
        raise NotImplementedError

    def poll(self, now: float) -> List[Tuple[int, Message]]:
        raise NotImplementedError

    def alive(self, worker: int) -> bool:
        raise NotImplementedError

    def exit_detail(self, worker: int) -> str:
        raise NotImplementedError

    def kill(self, worker: int, now: float) -> None:
        raise NotImplementedError

    def respawn(self, worker: int, now: float) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


class InlineTransport(Transport):
    """Virtual workers in the scheduler's process (the ``jobs=0`` mode).

    An assignment executes synchronously inside the next :meth:`poll`
    call — same process, so monkeypatched simulators and in-memory
    fixtures all apply.  With a fault injector attached, ``worker.kill``
    marks the virtual worker dead without producing a result (the
    scheduler sees a silent death, exactly like a SIGKILL'd subprocess)
    and ``worker.heartbeat_stall`` withholds the finished result until
    well past the lease window, so the expire -> steal -> requeue ->
    dedup path runs deterministically on a virtual clock.
    """

    isolated = False

    def __init__(self, workers: int = 1,
                 faults: Optional[RunnerFaultInjector] = None) -> None:
        self.workers = max(1, int(workers))
        self._faults = faults
        self._inbox = Inbox(faults)
        self._assignments: Dict[int, Message] = {}
        self._dead: Dict[int, str] = {}
        self._announced: Dict[int, bool] = {}

    def start(self) -> None:
        self._announced = {w: False for w in range(self.workers)}

    def assign(self, worker: int, message: Message) -> None:
        if message.get("type") == "assign":
            self._assignments[worker] = message

    def poll(self, now: float) -> List[Tuple[int, Message]]:
        out: List[Tuple[int, Message]] = []
        for worker in range(self.workers):
            if not self._announced.get(worker, False) and worker not in self._dead:
                self._announced[worker] = True
                out.append((worker, {"type": "ready", "worker": worker}))
        for worker in sorted(self._assignments):
            if worker in self._dead:
                continue
            message = self._assignments.pop(worker)
            self._run(worker, message, now)
        out.extend(self._inbox.drain(now))
        return out

    def _run(self, worker: int, message: Message, now: float) -> None:
        key = str(message["key"])
        attempt = int(message["attempt"])
        faults = self._faults
        killed = faults is not None and faults.job_fires(
            "worker.kill", key, attempt,
            detail="%s attempt %d" % (key, attempt),
        )
        if killed and faults is not None and faults.kill_phase(key, attempt) == "claim":
            self._dead[worker] = "killed by signal 9 (chaos worker.kill, claim)"
            return
        payload = execute_payload(message["spec"])
        if killed:
            self._dead[worker] = "killed by signal 9 (chaos worker.kill, report)"
            return
        sent_at = now
        if faults is not None and faults.job_fires(
            "worker.heartbeat_stall", key, attempt,
            detail="%s attempt %d" % (key, attempt),
        ):
            sent_at = now + faults.stall_s(key, attempt)
        result: Message = {
            "type": "result", "worker": worker, "key": key,
            "attempt": attempt,
        }
        result.update(payload)
        self._inbox.put(worker, result, now, sent_at=sent_at)

    def alive(self, worker: int) -> bool:
        return worker not in self._dead

    def exit_detail(self, worker: int) -> str:
        return self._dead.get(worker, "exit code None")

    def kill(self, worker: int, now: float) -> None:
        self._dead.setdefault(worker, "killed by scheduler")
        self._assignments.pop(worker, None)
        self._inbox.discard_unsent(worker, now)

    def respawn(self, worker: int, now: float) -> None:
        self._dead.pop(worker, None)
        self._announced[worker] = False

    def stop(self) -> None:
        self._assignments.clear()


@dataclass
class _Slot:
    proc: Any
    conn: Any


class SubprocessTransport(Transport):
    """One persistent worker process per slot (the ``jobs >= 1`` mode).

    Workers run :func:`repro.runner.worker.worker_main`: a claim loop
    that executes assignments via the shared job machinery, heartbeats
    from a side thread while a job is in flight, and dies safely on a
    closed pipe.  The scheduler enforces deadlines and lease expiry with
    ``SIGKILL`` + respawn — no cooperation from a wedged worker needed.
    """

    isolated = True

    def __init__(self, workers: int, *, lease_s: float,
                 faults: Optional[RunnerFaultInjector] = None,
                 fault_plan: Optional[Dict[str, Any]] = None) -> None:
        import multiprocessing

        self.workers = max(1, int(workers))
        self._heartbeat_s = heartbeat_interval(lease_s)
        self._fault_plan = fault_plan
        self._inbox = Inbox(faults)
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._slots: Dict[int, _Slot] = {}
        self._exit_details: Dict[int, str] = {}

    def start(self) -> None:
        for worker in range(self.workers):
            self._spawn(worker)

    def _spawn(self, worker: int) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(worker, child, self._heartbeat_s, self._fault_plan),
            daemon=True,
        )
        proc.start()
        child.close()
        self._slots[worker] = _Slot(proc=proc, conn=parent)
        self._exit_details.pop(worker, None)

    def assign(self, worker: int, message: Message) -> None:
        slot = self._slots.get(worker)
        if slot is None:
            return
        try:
            slot.conn.send(message)
        except (OSError, ValueError):
            pass  # death is detected via alive(); the job's lease recovers it

    def poll(self, now: float) -> List[Tuple[int, Message]]:
        for worker, slot in self._slots.items():
            while True:
                try:
                    if not slot.conn.poll(0):
                        break
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    break
                if isinstance(message, dict):
                    self._inbox.put(worker, message, now)
        return self._inbox.drain(now)

    def alive(self, worker: int) -> bool:
        slot = self._slots.get(worker)
        return slot is not None and slot.proc.is_alive()

    def exit_detail(self, worker: int) -> str:
        if worker in self._exit_details:
            return self._exit_details[worker]
        slot = self._slots.get(worker)
        if slot is None:
            return "no such worker"
        code = slot.proc.exitcode
        detail = (
            "killed by signal %d" % -code
            if code is not None and code < 0
            else "exit code %s" % code
        )
        self._exit_details[worker] = detail
        return detail

    def kill(self, worker: int, now: float) -> None:
        slot = self._slots.get(worker)
        if slot is None:
            return
        self.exit_detail(worker)  # snapshot before we overwrite the cause
        try:
            slot.proc.kill()
            slot.proc.join()
        except (OSError, ValueError):
            pass
        try:
            slot.conn.close()
        except (OSError, ValueError):
            pass
        del self._slots[worker]

    def respawn(self, worker: int, now: float) -> None:
        if worker in self._slots:
            self.kill(worker, now)
        self._spawn(worker)

    def stop(self) -> None:
        for slot in self._slots.values():
            try:
                slot.conn.send({"type": "stop"})
            except (OSError, ValueError):
                pass
        for slot in self._slots.values():
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():
                try:
                    slot.proc.kill()
                    slot.proc.join()
                except (OSError, ValueError):
                    pass
            try:
                slot.conn.close()
            except (OSError, ValueError):
                pass
        self._slots.clear()


__all__ = [
    "Inbox",
    "InlineTransport",
    "Message",
    "SubprocessTransport",
    "Transport",
    "VirtualClock",
    "WallClock",
]
