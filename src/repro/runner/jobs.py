"""Job specification, deterministic hashing, and in-worker execution.

A :class:`JobSpec` pins *every* knob that changes a simulation's result:
application, mechanism, scale, seed, the full GPU configuration and all
mechanism kwargs.  :func:`job_hash` digests the canonical JSON form, and
that hash is the one identity used everywhere — the sweep memo key in
:mod:`repro.analysis.experiments` (replacing the old ad-hoc tuple that
silently ignored ``mech_kwargs``), the checkpoint record key, and the
resume dedup key.  Two specs hash equal iff they simulate identically.

``fault`` is the chaos-injection hook for the resilience test suite: it
lets a test make a *real* subprocess worker crash (SIGKILL), stall, or
livelock on demand, so crash isolation and the watchdog are exercised end
to end rather than mocked.  Production sweeps leave it ``None``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Tuple, Union

from repro.bench.schema import BENCH_SCHEMA_VERSION
from repro.gpusim import GPUConfig, SimStats
from repro.gpusim.config import InvalidConfigError
from repro.gpusim.gpu import GPU
from repro.gpusim.sanitizer import InvariantViolationError

from .errors import (
    InvalidConfig,
    InvariantViolation,
    SimulationHang,
    SimulationHangError,
)


@dataclass(frozen=True)
class JobSpec:
    """One (app, mechanism, config, scale, seed) grid cell.

    ``config`` is the plain-dict form of a :class:`GPUConfig` (``None`` =
    the ``scaled()`` preset) and ``mech_kwargs`` a sorted tuple of pairs,
    so a spec is picklable for the worker pipe and JSON-safe for the
    checkpoint.  Build via :meth:`make`, not the raw constructor.
    """

    app: str
    mechanism: str
    scale: float = 1.0
    seed: int = 1
    config: Optional[Mapping[str, Any]] = None
    mech_kwargs: Tuple[Tuple[str, Any], ...] = ()
    fault: Optional[str] = None  # chaos hook; see module docstring

    @classmethod
    def make(
        cls,
        app: str,
        mechanism: str,
        config: Union[GPUConfig, Mapping[str, Any], None] = None,
        scale: float = 1.0,
        seed: int = 1,
        fault: Optional[str] = None,
        **mech_kwargs: Any,
    ) -> "JobSpec":
        if isinstance(config, GPUConfig):
            config = config.to_dict()
        elif config is not None:
            config = dict(config)
        return cls(
            app=app,
            mechanism=mechanism,
            scale=float(scale),
            seed=int(seed),
            config=config,
            mech_kwargs=tuple(sorted(mech_kwargs.items())),
            fault=fault,
        )

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "mechanism": self.mechanism,
            "scale": self.scale,
            "seed": self.seed,
            "config": dict(self.config) if self.config is not None else None,
            "mech_kwargs": {k: v for k, v in self.mech_kwargs},
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        return cls.make(
            data["app"],
            data["mechanism"],
            config=data.get("config"),
            scale=data.get("scale", 1.0),
            seed=data.get("seed", 1),
            fault=data.get("fault"),
            **(data.get("mech_kwargs") or {}),
        )

    def gpu_config(self) -> GPUConfig:
        if self.config is None:
            return GPUConfig.scaled()
        return GPUConfig.from_dict(self.config)

    def label(self) -> str:
        extra = ",".join("%s=%s" % kv for kv in self.mech_kwargs)
        return "%s/%s%s" % (self.app, self.mechanism, "[%s]" % extra if extra else "")


def engine_fingerprint(spec: JobSpec) -> dict:
    """The *implementation* identity a result depends on, beyond the
    spec's own knobs: which timing loop simulated it (the skip-ahead
    event core and the ``legacy_loop`` reference are cycle-identical by
    contract, but a checkpoint must never silently mix results from the
    two implementations) and the bench schema version (bumped when the
    recorded performance surface is reinterpreted)."""
    config_dict = spec.config or {}
    loop = "legacy" if config_dict.get("legacy_loop") else "skip-ahead"
    return {"loop": loop, "bench_schema": BENCH_SCHEMA_VERSION}


def job_hash(spec: JobSpec) -> str:
    """Deterministic 16-hex-digit digest of a spec's canonical JSON form
    plus the engine fingerprint."""
    payload = json.dumps(
        {"spec": spec.to_dict(), "engine": engine_fingerprint(spec)},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard for a job hash: the scheduler's work-stealing
    queues are keyed by the leading 32 bits of the (already uniform)
    digest, so the same grid shards identically on every run and on
    every resume regardless of submission order."""
    if shards <= 1:
        return 0
    return int(key[:8], 16) % shards


# ---------------------------------------------------------------------------
# Chaos faults (resilience tests only).


@contextlib.contextmanager
def _fault_context(fault: Optional[str]) -> Iterator[None]:
    """Apply a chaos fault for the duration of one job execution.

    * ``crash`` — SIGKILL the current process immediately (a worker dying
      mid-job; the parent sees a silent exit and classifies ``JobCrash``).
    * ``crash-once:<sentinel-path>`` — SIGKILL only if the sentinel file
      does not exist yet (creating it first), so the retry succeeds:
      exercises the transient-failure/backoff path.
    * ``sleep:<seconds>`` — stall before simulating: exercises the per-job
      wall-clock timeout.
    * ``livelock`` — patch the L1 so every demand load reservation-fails
      forever: a genuine no-forward-progress loop the in-simulator
      watchdog must catch.
    """
    if not fault:
        yield
        return
    if fault == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if fault.startswith("crash-once:"):
        sentinel = Path(fault.split(":", 1)[1])
        if not sentinel.exists():
            sentinel.write_text("armed")
            os.kill(os.getpid(), signal.SIGKILL)
        yield
        return
    if fault.startswith("sleep:"):
        time.sleep(float(fault.split(":", 1)[1]))
        yield
        return
    if fault == "livelock":
        from repro.gpusim.unified_cache import L1Outcome, UnifiedL1Cache

        def _always_fail(
            self: UnifiedL1Cache, line_addr: int, now: int,
            sector_mask: int = -1,
        ) -> Tuple[L1Outcome, int]:
            self.stats.l1_reservation_fails += 1
            return (L1Outcome.RESERVATION_FAIL, now + self.config.replay_interval)

        original = UnifiedL1Cache.demand_load
        UnifiedL1Cache.demand_load = _always_fail
        try:
            yield
        finally:
            UnifiedL1Cache.demand_load = original
        return
    raise InvalidConfig("unknown chaos fault %r" % fault)


# ---------------------------------------------------------------------------
# Execution.


def execute_job(spec: JobSpec) -> SimStats:
    """Run one job to completion in the current process.

    Raises the typed taxonomy errors (:class:`InvalidConfig`,
    :class:`SimulationHang`) — the process-pool worker forwards them over
    its pipe; inline callers catch them directly.
    """
    from repro.prefetch import build_setup
    from repro.workloads import build_kernel

    with _fault_context(spec.fault):
        try:
            config = spec.gpu_config()
            config.validate()
        except InvalidConfigError as exc:
            raise InvalidConfig(str(exc)) from exc
        try:
            kernel = build_kernel(spec.app, scale=spec.scale, seed=spec.seed)
            setup = build_setup(spec.mechanism, config, **dict(spec.mech_kwargs))
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidConfig(
                "job %s cannot be built: %s" % (spec.label(), exc)
            ) from exc
        gpu = GPU(
            config=setup.config,
            prefetcher_factory=setup.prefetcher_factory,
            throttle_factory=setup.throttle_factory,
            storage_mode=setup.storage_mode,
        )
        try:
            return gpu.run(kernel)
        except SimulationHangError as exc:
            raise SimulationHang(
                "job %s: %s" % (spec.label(), exc), state_dump=exc.state_dump
            ) from exc
        except InvariantViolationError as exc:
            raise InvariantViolation(
                "job %s: %s" % (spec.label(), exc),
                invariant=exc.invariant,
                state_dump=exc.state_dump,
            ) from exc


__all__ = ["JobSpec", "engine_fingerprint", "execute_job", "job_hash", "shard_of"]
