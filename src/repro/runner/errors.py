"""The runner's structured error taxonomy.

Every way a sweep cell can die maps to exactly one class, so retry policy,
checkpoint records and report markers all branch on one ``kind`` string:

======================  =============================================  =========
kind                    meaning                                        retried?
======================  =============================================  =========
``JobTimeout``          worker exceeded the per-job wall-clock budget  no
``JobCrash``            worker died (signal/exit) or raised            yes
``SimulationHang``      the in-simulator watchdog fired                no
``InvalidConfig``       the job spec can never run (bad config/app)    no
``invariant:<name>``    the simulation sanitizer caught a broken       no
                        conservation law (:class:`InvariantViolation`)
``worker-lost``         a worker's lease expired (heartbeats stopped   yes
                        while the job was still leased to it)
``poison``              the same job lost too many leases in a row;    no
                        quarantined so it cannot wedge the sweep
``checkpoint:torn``     a checkpoint record was torn by a killed       no
                        writer; the fragment is quarantined to
                        ``<checkpoint>.corrupt`` and the job re-runs
======================  =============================================  =========

Timeouts and hangs are deterministic for a given (spec, machine-load
regime) and invalid configs are deterministic outright, so retrying them
burns the budget for nothing; crashes are treated as transient (OOM kill,
stray signal) and get bounded retry with exponential backoff.  Invariant
violations are the most deterministic of all — the simulation is seeded,
so the same broken law fires at the same cycle on every attempt — and,
worse, a retry that happened to "pass" would launder corrupt accounting
into the result set.  They are therefore never retried, and their wire
kind carries the specific invariant (``invariant:mshr_balance``) so a
report's ``FAILED(...)`` marker names the broken law directly.

A cell that still fails after retries becomes a :class:`FailedResult` —
a stand-in value that flows through sweeps, checkpoints and reports where
a ``SimStats`` would, rendering as ``FAILED(kind)`` instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Type

# Re-exported so runner users need one import for the whole taxonomy.
from repro.gpusim.config import InvalidConfigError
from repro.gpusim.sanitizer import InvariantViolationError
from repro.gpusim.watchdog import SimulationHangError


class JobError(Exception):
    """Base class: one sweep cell failed. ``kind`` is the stable wire name."""

    kind = "JobError"
    retryable = False

    def __init__(self, message: str, state_dump: Optional[dict] = None) -> None:
        super().__init__(message)
        self.state_dump = dict(state_dump or {})


class JobTimeout(JobError):
    """The worker exceeded the per-job wall-clock timeout and was killed."""

    kind = "JobTimeout"


class JobCrash(JobError):
    """The worker process died (signal / nonzero exit) or raised an
    unclassified exception.  The one *transient* failure: retried with
    exponential backoff up to the retry budget."""

    kind = "JobCrash"
    retryable = True


class SimulationHang(JobError):
    """The forward-progress watchdog (or ``max_cycles`` deadman) fired
    inside the simulator; ``state_dump`` carries its diagnostic snapshot."""

    kind = "SimulationHang"


class InvalidConfig(JobError):
    """The job spec cannot run: bad GPU configuration, unknown app or
    mechanism.  Never retried."""

    kind = "InvalidConfig"


class WorkerLost(JobError):
    """A worker's lease expired: its heartbeats stopped while the job was
    still leased to it (process wedged, machine partitioned, heartbeat
    path stalled).  Retryable — the scheduler requeues the job with
    backoff — but every loss is counted, and a job that keeps losing
    workers is quarantined as :class:`PoisonedJob` instead of retrying
    forever."""

    kind = "worker-lost"
    retryable = True


class PoisonedJob(JobError):
    """The same job lost its worker too many consecutive times
    (``Scheduler`` ``max_losses``).  The overwhelmingly likely cause is
    the job itself (it OOMs or wedges every host it touches), so it is
    quarantined as ``FAILED(poison)`` — the sweep degrades gracefully
    instead of grinding on a cell that will never finish."""

    kind = "poison"


class CheckpointTorn(JobError):
    """A checkpoint record was torn mid-write by a killed writer.  The
    fragment is quarantined to ``<checkpoint>.corrupt`` on load and the
    affected job simply re-runs; the kind exists so the taxonomy (and
    :func:`is_retryable`) can name the condition — it is never retried
    *as a job error* because it never reaches a worker."""

    kind = "checkpoint:torn"


class InvariantViolation(JobError):
    """The simulation sanitizer (:mod:`repro.gpusim.sanitizer`) caught a
    broken conservation law mid-run.  The instance ``kind`` is
    ``invariant:<name>`` so the wire form / ``FAILED(...)`` marker names
    the specific law; the class-level kind is the taxonomy family.  Never
    retried: the simulation is seeded, so the violation is deterministic,
    and the stats it would produce are corrupt by definition."""

    kind = "InvariantViolation"

    def __init__(self, message: str, invariant: str = "unknown",
                 state_dump: Optional[dict] = None) -> None:
        super().__init__(message, state_dump=state_dump)
        self.invariant = invariant
        self.kind = "invariant:%s" % invariant


ERROR_KINDS: Dict[str, Type[JobError]] = {
    cls.kind: cls
    for cls in (
        JobTimeout, JobCrash, SimulationHang, InvalidConfig,
        InvariantViolation, WorkerLost, PoisonedJob, CheckpointTorn,
    )
}


def error_from_kind(kind: str, message: str,
                    state_dump: Optional[dict] = None) -> JobError:
    """Rebuild a typed error from its wire form (worker pipe / checkpoint)."""
    if kind.startswith("invariant:"):
        return InvariantViolation(
            message, invariant=kind.split(":", 1)[1], state_dump=state_dump
        )
    return ERROR_KINDS.get(kind, JobCrash)(message, state_dump=state_dump)


def is_retryable(kind: str) -> bool:
    """Retry policy from the wire kind alone (what the pool sees).  Only
    known-transient kinds retry; anything unrecognized — including every
    ``invariant:<name>`` — is presumed deterministic and fails fast."""
    if kind.startswith("invariant:"):
        return False
    cls = ERROR_KINDS.get(kind)
    return bool(cls is not None and cls.retryable)


@dataclass
class FailedResult:
    """Graceful stand-in for a cell whose simulation never produced stats.

    Carries ``failed = True`` so figure/report code can detect it with one
    ``getattr`` and render ``FAILED(kind)`` markers instead of raising.
    """

    kind: str
    message: str = ""
    attempts: int = 1
    state_dump: dict = field(default_factory=dict)

    failed = True

    @property
    def reason(self) -> str:
        return self.kind

    def __str__(self) -> str:
        return "FAILED(%s)" % self.kind

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "state_dump": self.state_dump,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FailedResult":
        return cls(
            kind=data.get("kind", "JobCrash"),
            message=data.get("message", ""),
            attempts=data.get("attempts", 1),
            state_dump=data.get("state_dump") or {},
        )


__all__ = [
    "ERROR_KINDS",
    "CheckpointTorn",
    "FailedResult",
    "InvalidConfig",
    "InvalidConfigError",
    "InvariantViolation",
    "InvariantViolationError",
    "JobCrash",
    "JobError",
    "JobTimeout",
    "PoisonedJob",
    "SimulationHang",
    "SimulationHangError",
    "WorkerLost",
    "error_from_kind",
    "is_retryable",
]
