"""Runtime conservation auditor for the GPU timing model.

A timing simulator fails in two ways: loudly (a crash, a hang the watchdog
catches) or *quietly* — a leaked MSHR entry, a NoC horizon that rewinds, a
coverage numerator that creeps past its denominator.  Quiet failures
produce plausible-looking numbers that are simply wrong, which for a
reproduction study is the worst outcome.  :class:`SimSanitizer` is the
defence: an opt-in auditor (``GPUConfig.sanitize`` / ``--sanitize``) that
walks the whole machine at a configurable cycle cadence
(``GPUConfig.sanitize_interval``) and checks every conservation law the
model is supposed to obey:

* **Request conservation** — every issued memory request retires exactly
  once: per-MSHR ``allocated - released == occupancy``, occupancy within
  capacity, merge counts within the configured width, miss queues within
  depth.
* **Resource monotonicity** — ``Interconnect.next_free`` /
  ``priority_next_free`` (and the L2 bank / DRAM bank+channel analogues)
  never decrease between checks, the demand (priority) horizon never runs
  ahead of the combined one, and measured utilization stays in [0, 1].
* **Storage structure** — L1 tag store and isolated-mode side buffer pass
  :meth:`SetAssocCache.structural_violations`; in isolated mode no
  prefetched line may live in the main store; a transferred line is by
  definition no longer prefetch-flagged.
* **Snake table structure** — Head tables within capacity; Tail tables
  pass :meth:`TailTable.structural_violations` (bounded entry counts,
  in-field warp vectors, valid train states, chain walks that terminate
  within the table size).
* **Stats conservation** — every per-SM :class:`SimStats` passes
  :meth:`SimStats.conservation_violations`, and the figure-driving
  counters only ever grow.
* **Cross-layer conservation** — L2 hits+misses equal the L1-side
  requests that were sent down (demand misses + issued prefetches), and
  DRAM reads equal L2 misses.

A broken law raises :class:`InvariantViolationError` carrying the cycle,
the first broken invariant's name, and a watchdog-format state dump (see
:func:`repro.gpusim.watchdog.collect_state_dump`); the runner maps it to
its own non-retryable failure taxonomy (``FAILED(invariant:...)``).

When ``sanitize`` is off the GPU never constructs a sanitizer, so the
simulation pays nothing — not even a method call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # import cycle: gpu.py imports this module at runtime
    from .gpu import GPU


class InvariantViolationError(RuntimeError):
    """A conservation invariant broke mid-simulation.

    ``invariant`` names the first broken law (e.g. ``mshr_balance``),
    ``cycle`` is the simulated time of the failing check, and
    ``state_dump`` is the same plain-data machine snapshot a hang report
    carries, plus the full violation list.
    """

    def __init__(
        self,
        message: str,
        invariant: str = "unknown",
        cycle: int = 0,
        state_dump: Optional[Mapping[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.cycle = cycle
        self.state_dump = dict(state_dump or {})


class SimSanitizer:
    """Cycle-cadence auditor over a live :class:`repro.gpusim.gpu.GPU`.

    The GPU's run loop calls :meth:`maybe_check` alongside the watchdog
    (sparsely — every 256 loop iterations); the cadence gate inside keeps
    full audits ``interval`` simulated cycles apart.  :meth:`check` runs
    one full audit unconditionally (the run loop calls it once more after
    the last SM retires, so every run ends on a clean audit).
    """

    def __init__(self, gpu: "GPU", interval: int = 2000) -> None:
        self.gpu = gpu
        self.interval = max(1, interval)
        self.checks = 0
        self.last_snapshot: dict = {}
        self._next_check = 0
        # Monotonicity baselines from the previous audit.
        self._icnt_last: Dict[Tuple[int, str], dict] = {}
        self._stats_last: Dict[int, Tuple[int, ...]] = {}
        self._l2_last: Optional[dict] = None
        self._dram_last: Optional[dict] = None

    # ------------------------------------------------------------------

    def maybe_check(self, now: int) -> None:
        """Audit iff the cadence interval has elapsed."""
        if now >= self._next_check:
            self.check(now)

    def check(self, now: int) -> None:
        """Run one full audit; raise on the first broken invariant."""
        violations: List[Tuple[str, str]] = []
        self._check_sms(now, violations)
        self._check_l2(violations)
        self._check_dram(violations)
        self._check_cross_layer(violations)
        self.checks += 1
        self._next_check = now + self.interval
        if violations:
            self._raise(now, violations)
        self.last_snapshot = self._build_snapshot(now)

    def snapshot(self) -> dict:
        """Plain-data audit trail for hang / violation state dumps: how
        many audits ran and the machine summary at the last clean one."""
        return {
            "checks": self.checks,
            "interval": self.interval,
            "last_clean": dict(self.last_snapshot),
        }

    # ------------------------------------------------------------------
    # Per-layer audits

    def _check_sms(self, now: int, v: List[Tuple[str, str]]) -> None:
        for sm in self.gpu.sms:
            label = "sm%d" % sm.sm_id
            l1 = sm.l1
            mshr = l1._mshr

            # Request conservation: allocate/release balance and capacity.
            occ = mshr.occupancy
            if occ > mshr.entries:
                v.append((
                    "mshr_capacity",
                    "%s MSHR occupancy %d exceeds %d entries"
                    % (label, occ, mshr.entries),
                ))
            if mshr.allocated - mshr.released != occ:
                v.append((
                    "mshr_balance",
                    "%s MSHR allocated(%d) - released(%d) != occupancy(%d): "
                    "a request leaked or retired twice"
                    % (label, mshr.allocated, mshr.released, occ),
                ))
            for entry in mshr.entries_inflight():
                if not 1 <= entry.merges <= mshr.merge_width:
                    v.append((
                        "mshr_merge",
                        "%s MSHR line %#x carries %d merges (width %d)"
                        % (label, entry.line_addr, entry.merges,
                           mshr.merge_width),
                    ))
            if len(l1._miss_queue) > sm.config.miss_queue_depth:
                v.append((
                    "miss_queue_depth",
                    "%s miss queue holds %d > depth %d"
                    % (label, len(l1._miss_queue),
                       sm.config.miss_queue_depth),
                ))

            # NoC port monotonicity and priority ordering.
            for port_name, port in (("req", sm.icnt_req), ("resp", sm.icnt_resp)):
                snap = port.snapshot()
                key = (sm.sm_id, port_name)
                prev = self._icnt_last.get(key)
                if snap["next_free"] < 0 or snap["priority_next_free"] < 0:
                    v.append((
                        "icnt_negative",
                        "%s icnt_%s horizon went negative: %r"
                        % (label, port_name, snap),
                    ))
                if snap["priority_next_free"] > snap["next_free"]:
                    v.append((
                        "icnt_priority",
                        "%s icnt_%s demand horizon %d ahead of combined %d: "
                        "priority traffic scheduled behind best-effort"
                        % (label, port_name, snap["priority_next_free"],
                           snap["next_free"]),
                    ))
                if prev is not None and (
                    snap["next_free"] < prev["next_free"]
                    or snap["priority_next_free"] < prev["priority_next_free"]
                    or snap["bytes_transferred"] < prev["bytes_transferred"]
                ):
                    v.append((
                        "icnt_monotonic",
                        "%s icnt_%s rewound between audits: %r -> %r"
                        % (label, port_name, prev, snap),
                    ))
                self._icnt_last[key] = snap
                util = port.measured_utilization(now)
                if not 0.0 <= util <= 1.0:
                    v.append((
                        "icnt_utilization",
                        "%s icnt_%s utilization %f outside [0, 1]"
                        % (label, port_name, util),
                    ))

            # Storage structure: main store, prefetch partition, side buffer.
            for msg in l1.store.structural_violations("%s.l1" % label):
                v.append(("l1_structure", msg))
            if l1.store.occupancy > l1.store.config.num_lines:
                v.append((
                    "l1_occupancy",
                    "%s L1 holds %d lines > capacity %d"
                    % (label, l1.store.occupancy, l1.store.config.num_lines),
                ))
            for line in l1.store.all_lines():
                if line.transferred and line.is_prefetch:
                    v.append((
                        "l1_partition",
                        "%s line %#x is both transferred and prefetch-flagged"
                        % (label, line.addr),
                    ))
                elif line.is_prefetch and l1.side_buffer is not None:
                    v.append((
                        "l1_partition",
                        "%s isolated mode but prefetched line %#x sits in "
                        "the main store" % (label, line.addr),
                    ))
            if l1.side_buffer is not None:
                for msg in l1.side_buffer.structural_violations(
                    "%s.side" % label
                ):
                    v.append(("l1_structure", msg))
            if l1._prefetch_inserted < 0 or l1._prefetch_transferred < 0:
                v.append((
                    "l1_partition",
                    "%s prefetch transfer counters went negative (%d/%d)"
                    % (label, l1._prefetch_transferred, l1._prefetch_inserted),
                ))

            # Stats conservation + monotonicity of figure-driving counters.
            for msg in sm.stats.conservation_violations():
                v.append(("stats_conservation", "%s %s" % (label, msg)))
            digest = (
                sm.stats.instructions,
                sm.stats.warps_finished,
                sm.stats.l1_hits,
                sm.stats.l1_misses,
                sm.stats.l1_reserved,
                sm.stats.l1_reservation_fails,
                sm.stats.icnt_bytes,
                sm.stats.prefetch.issued,
                sm.stats.prefetch.demand_covered,
                sm.stats.prefetch.demand_timely,
            )
            prev_digest = self._stats_last.get(sm.sm_id)
            if prev_digest is not None and any(
                a < b for a, b in zip(digest, prev_digest)
            ):
                v.append((
                    "stats_monotonic",
                    "%s a cumulative counter decreased between audits: "
                    "%r -> %r" % (label, prev_digest, digest),
                ))
            self._stats_last[sm.sm_id] = digest

            # Throttle bookkeeping.
            throttle = sm.throttle.snapshot()
            if throttle["space_halts"] < 0 or throttle["bw_halts"] < 0:
                v.append((
                    "throttle_counters",
                    "%s throttle halt counters negative: %r" % (label, throttle),
                ))

            # Snake table structure (any prefetcher exposing tables()).
            tables = getattr(sm.prefetcher, "tables", None)
            if tables is not None:
                for app_id, head, tail in tables():
                    if len(head) > head.capacity:
                        v.append((
                            "head_capacity",
                            "%s app %d Head table holds %d rows > capacity %d"
                            % (label, app_id, len(head), head.capacity),
                        ))
                    for msg in tail.structural_violations(
                        "%s app %d Tail" % (label, app_id)
                    ):
                        v.append(("snake_table", msg))

    def _check_l2(self, v: List[Tuple[str, str]]) -> None:
        l2 = self.gpu.l2
        snap = {
            "bank_next_free": list(l2._bank_next_free),
            "bank_priority_next_free": list(l2._bank_priority_next_free),
            "hits": l2.hits,
            "misses": l2.misses,
        }
        for bank, (nf, pnf) in enumerate(
            zip(snap["bank_next_free"], snap["bank_priority_next_free"])
        ):
            if nf < 0 or pnf < 0:
                v.append((
                    "l2_bank",
                    "L2 bank %d horizon negative (nf=%d pnf=%d)"
                    % (bank, nf, pnf),
                ))
            if pnf > nf:
                v.append((
                    "l2_bank",
                    "L2 bank %d demand horizon %d ahead of combined %d"
                    % (bank, pnf, nf),
                ))
        prev = self._l2_last
        if prev is not None:
            if snap["hits"] < prev["hits"] or snap["misses"] < prev["misses"]:
                v.append((
                    "l2_stats",
                    "L2 hit/miss counters decreased: %r -> %r" % (prev, snap),
                ))
            if any(
                a < b for a, b in
                zip(snap["bank_next_free"], prev["bank_next_free"])
            ) or any(
                a < b for a, b in zip(
                    snap["bank_priority_next_free"],
                    prev["bank_priority_next_free"],
                )
            ):
                v.append((
                    "l2_bank",
                    "an L2 bank horizon rewound between audits",
                ))
        self._l2_last = snap

    def _check_dram(self, v: List[Tuple[str, str]]) -> None:
        dram = self.gpu.dram
        horizons: List[int] = []
        for ch_idx, channel in enumerate(dram._channels):
            pairs = [(channel.next_free, channel.priority_next_free, "channel")]
            pairs.extend(
                (bank.next_free, bank.priority_next_free, "bank %d" % i)
                for i, bank in enumerate(channel.banks)
            )
            for nf, pnf, what in pairs:
                if nf < 0 or pnf < 0:
                    v.append((
                        "dram_bank",
                        "DRAM channel %d %s horizon negative (nf=%d pnf=%d)"
                        % (ch_idx, what, nf, pnf),
                    ))
                if pnf > nf:
                    v.append((
                        "dram_bank",
                        "DRAM channel %d %s demand horizon %d ahead of "
                        "combined %d" % (ch_idx, what, pnf, nf),
                    ))
                horizons.extend((nf, pnf))
            for i, bank in enumerate(channel.banks):
                if bank.open_row < -1:
                    v.append((
                        "dram_bank",
                        "DRAM channel %d bank %d open row %d malformed"
                        % (ch_idx, i, bank.open_row),
                    ))
        snap = {
            "horizons": horizons,
            "reads": dram.reads,
            "row_hits": dram.row_hits,
            "row_misses": dram.row_misses,
        }
        prev = self._dram_last
        if prev is not None:
            if any(a < b for a, b in zip(horizons, prev["horizons"])):
                v.append((
                    "dram_bank",
                    "a DRAM bank/channel horizon rewound between audits",
                ))
            if (
                snap["reads"] < prev["reads"]
                or snap["row_hits"] < prev["row_hits"]
                or snap["row_misses"] < prev["row_misses"]
            ):
                v.append((
                    "dram_stats",
                    "DRAM counters decreased: %r -> %r" % (prev, snap),
                ))
        self._dram_last = snap

    def _check_cross_layer(self, v: List[Tuple[str, str]]) -> None:
        """The laws that tie the layers together.  Stores never leave the
        L1 (write-through to the NoC only) and magic prefetches bypass the
        hierarchy, so every L2 access is a demand L1 miss or an issued
        hardware prefetch — and every L2 miss is exactly one DRAM read."""
        l2 = self.gpu.l2
        sent_down = sum(
            sm.stats.l1_misses + sm.stats.prefetch.issued
            for sm in self.gpu.sms
        )
        if l2.hits + l2.misses != sent_down:
            v.append((
                "l2_conservation",
                "L2 saw %d accesses (hits %d + misses %d) but the L1s sent "
                "%d requests down" % (l2.hits + l2.misses, l2.hits,
                                      l2.misses, sent_down),
            ))
        if self.gpu.dram.reads != l2.misses:
            v.append((
                "dram_conservation",
                "DRAM serviced %d reads but L2 recorded %d misses"
                % (self.gpu.dram.reads, l2.misses),
            ))

    # ------------------------------------------------------------------

    def _build_snapshot(self, now: int) -> dict:
        return {
            "cycle": now,
            "sms": [
                {
                    "sm_id": sm.sm_id,
                    "mshr_allocated": sm.l1._mshr.allocated,
                    "mshr_released": sm.l1._mshr.released,
                    "mshr_occupancy": sm.l1._mshr.occupancy,
                    "store_occupancy": sm.l1.store.occupancy,
                    "icnt_req": sm.icnt_req.snapshot(),
                    "icnt_resp": sm.icnt_resp.snapshot(),
                    "throttle": sm.throttle.snapshot(),
                }
                for sm in self.gpu.sms
            ],
            "l2": {"hits": self.gpu.l2.hits, "misses": self.gpu.l2.misses},
            "dram": {
                "reads": self.gpu.dram.reads,
                "row_hits": self.gpu.dram.row_hits,
                "row_misses": self.gpu.dram.row_misses,
            },
        }

    def _raise(self, now: int, violations: List[Tuple[str, str]]) -> None:
        from .watchdog import collect_state_dump

        messages = ["%s: %s" % pair for pair in violations]
        dump = collect_state_dump(self.gpu, sanitizer=self)
        dump["cycle"] = now
        dump["violations"] = messages
        raise InvariantViolationError(
            "conservation invariant broken at cycle %d (%d problem%s):\n%s"
            % (
                now,
                len(violations),
                "" if len(violations) == 1 else "s",
                "\n".join("  - " + m for m in messages),
            ),
            invariant=violations[0][0],
            cycle=now,
            state_dump=dump,
        )


__all__ = ["InvariantViolationError", "SimSanitizer"]
