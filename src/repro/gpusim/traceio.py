"""Kernel-trace serialization.

A :class:`~repro.gpusim.trace.KernelTrace` can be saved to (and loaded
from) a compact JSON-lines format, so traces can be generated once, kept
under version control, or produced by external tools (e.g. converted from
an Accel-Sim SASS trace) and replayed through this simulator.

Format (one JSON object per line):

* header line: ``{"kernel": name, "version": 1}``
* CTA line:    ``{"cta": id}`` — opens a CTA; warps follow
* warp line:   ``{"warp": id, "instrs": [[pc, op, base, stride, size, div], ...]}``

Memory operands are omitted for non-memory ops, keeping files small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from .trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace

FORMAT_VERSION = 1

_OP_CODE = {op: op.value for op in Op}
_CODE_OP = {op.value: op for op in Op}


class TraceFormatError(ValueError):
    """A trace file is malformed (truncated, corrupt, or wrong schema).

    Carries the byte ``offset`` of the offending line and its ``record_index``
    (0 = header) so the broken spot can be inspected directly, instead of an
    opaque ``struct.error`` / ``IndexError`` from deep inside decoding.
    Subclasses ``ValueError`` for compatibility with pre-existing callers.
    """

    def __init__(self, message: str, *, path: Union[str, Path, None] = None,
                 offset: int = 0, record_index: int = 0) -> None:
        self.path = str(path) if path is not None else None
        self.offset = offset
        self.record_index = record_index
        where = "record %d at byte offset %d" % (record_index, offset)
        if self.path:
            where = "%s, %s" % (self.path, where)
        super().__init__("%s (%s)" % (message, where))


def _encode_instr(instr: WarpInstr) -> list:
    if instr.is_mem:
        return [
            instr.pc,
            instr.op.value,
            instr.base_addr,
            instr.thread_stride,
            instr.size_bytes,
            int(instr.divergent),
        ]
    return [instr.pc, instr.op.value]


def _require_int(value: object, what: str, minimum: Optional[int] = None,
                 maximum: Optional[int] = None) -> int:
    """Validate one numeric trace field.

    External converters feed this loader, so every arithmetic-bearing
    field must be a plain JSON integer: booleans (a Python ``int``
    subclass), floats — including the ``NaN``/``Infinity`` literals
    Python's ``json`` accepts by default — and strings are all rejected
    here rather than poisoning address arithmetic deep in the simulator.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError("%s must be an integer, got %r" % (what, value))
    if minimum is not None and value < minimum:
        raise ValueError("%s must be >= %d, got %d" % (what, minimum, value))
    if maximum is not None and value > maximum:
        raise ValueError("%s must be <= %d, got %d" % (what, maximum, value))
    return value


#: Address-space bound for external traces: beyond 2^64 a record is
#: corrupt, not a big kernel.
_MAX_ADDR = (1 << 64) - 1


def _decode_instr(record: list) -> WarpInstr:
    if not isinstance(record, list) or len(record) not in (2, 6):
        raise ValueError(
            "instruction record must have 2 or 6 fields, got %r" % (record,)
        )
    opcode = record[1]
    if isinstance(opcode, bool) or opcode not in _CODE_OP:
        raise ValueError("unknown opcode %r" % (opcode,))
    if len(record) == 2:
        return WarpInstr(
            pc=_require_int(record[0], "pc", minimum=0),
            op=_CODE_OP[opcode],
        )
    pc, op, base, stride, size, divergent = record
    if not isinstance(divergent, (bool, int)):
        raise ValueError("divergent flag must be 0/1, got %r" % (divergent,))
    return WarpInstr(
        pc=_require_int(pc, "pc", minimum=0),
        op=_CODE_OP[op],
        base_addr=_require_int(base, "base_addr", minimum=0, maximum=_MAX_ADDR),
        thread_stride=_require_int(stride, "thread_stride",
                                   minimum=-_MAX_ADDR, maximum=_MAX_ADDR),
        size_bytes=_require_int(size, "size_bytes", minimum=1),
        divergent=bool(divergent),
    )


def save_trace(kernel: KernelTrace, path: Union[str, Path]) -> Path:
    """Write a kernel trace as JSON lines; returns the path written."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(
            json.dumps({"kernel": kernel.name, "version": FORMAT_VERSION}) + "\n"
        )
        for cta in kernel.ctas:
            handle.write(json.dumps({"cta": cta.cta_id}) + "\n")
            for warp in cta.warps:
                record = {
                    "warp": warp.warp_id,
                    "instrs": [_encode_instr(i) for i in warp.instrs],
                }
                handle.write(json.dumps(record) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Read a kernel trace written by :func:`save_trace`.

    Truncated or corrupt files raise :class:`TraceFormatError` pinpointing
    the byte offset and record index of the damage.
    """
    path = Path(path)
    raw = path.read_bytes()

    def fail(message: str, offset: int, index: int) -> "TraceFormatError":
        return TraceFormatError(
            message, path=path, offset=offset, record_index=index
        )

    offset = 0
    kernel: KernelTrace = None  # set by the header record
    current: List[WarpTrace] = []
    for index, line in enumerate(raw.split(b"\n")):
        if not line.strip():
            offset += len(line) + 1
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise fail(
                "malformed JSON line (truncated file?): %s" % exc, offset, index
            ) from exc
        if not isinstance(record, dict):
            raise fail("trace record is not an object: %r" % (record,), offset, index)

        if kernel is None:
            if "kernel" not in record:
                raise fail("first record is not a trace header", offset, index)
            if record.get("version") != FORMAT_VERSION:
                raise fail(
                    "unsupported trace version %r (expected %d)"
                    % (record.get("version"), FORMAT_VERSION),
                    offset, index,
                )
            if not isinstance(record["kernel"], str):
                raise fail(
                    "kernel name must be a string, got %r" % (record["kernel"],),
                    offset, index,
                )
            kernel = KernelTrace(name=record["kernel"])
        elif "cta" in record:
            try:
                cta = CTA(cta_id=_require_int(record["cta"], "cta id", minimum=0))
            except ValueError as exc:
                raise fail("corrupt CTA record: %s" % exc, offset, index) from exc
            kernel.ctas.append(cta)
            current = cta.warps
        elif "warp" in record:
            if not kernel.ctas:
                raise fail("warp record before any CTA record", offset, index)
            instrs = record.get("instrs")
            if not isinstance(instrs, list):
                raise fail("warp record carries no instruction list", offset, index)
            try:
                warp_id = _require_int(record["warp"], "warp id", minimum=0)
                decoded = [_decode_instr(r) for r in instrs]
            except (ValueError, TypeError, KeyError, IndexError) as exc:
                raise fail("corrupt instruction record: %s" % exc, offset, index) from exc
            current.append(WarpTrace(warp_id=warp_id, instrs=decoded))
        else:
            raise fail("unrecognized trace record: %r" % record, offset, index)
        offset += len(line) + 1

    if kernel is None:
        raise fail("empty trace file (no header record)", 0, 0)
    return kernel
