"""Kernel-trace serialization.

A :class:`~repro.gpusim.trace.KernelTrace` can be saved to (and loaded
from) a compact JSON-lines format, so traces can be generated once, kept
under version control, or produced by external tools (e.g. converted from
an Accel-Sim SASS trace) and replayed through this simulator.

Format (one JSON object per line):

* header line: ``{"kernel": name, "version": 1}``
* CTA line:    ``{"cta": id}`` — opens a CTA; warps follow
* warp line:   ``{"warp": id, "instrs": [[pc, op, base, stride, size, div], ...]}``

Memory operands are omitted for non-memory ops, keeping files small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace

FORMAT_VERSION = 1

_OP_CODE = {op: op.value for op in Op}
_CODE_OP = {op.value: op for op in Op}


def _encode_instr(instr: WarpInstr) -> list:
    if instr.is_mem:
        return [
            instr.pc,
            instr.op.value,
            instr.base_addr,
            instr.thread_stride,
            instr.size_bytes,
            int(instr.divergent),
        ]
    return [instr.pc, instr.op.value]


def _decode_instr(record: list) -> WarpInstr:
    if len(record) == 2:
        return WarpInstr(pc=record[0], op=_CODE_OP[record[1]])
    pc, op, base, stride, size, divergent = record
    return WarpInstr(
        pc=pc,
        op=_CODE_OP[op],
        base_addr=base,
        thread_stride=stride,
        size_bytes=size,
        divergent=bool(divergent),
    )


def save_trace(kernel: KernelTrace, path: Union[str, Path]) -> Path:
    """Write a kernel trace as JSON lines; returns the path written."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(
            json.dumps({"kernel": kernel.name, "version": FORMAT_VERSION}) + "\n"
        )
        for cta in kernel.ctas:
            handle.write(json.dumps({"cta": cta.cta_id}) + "\n")
            for warp in cta.warps:
                record = {
                    "warp": warp.warp_id,
                    "instrs": [_encode_instr(i) for i in warp.instrs],
                }
                handle.write(json.dumps(record) + "\n")
    return path


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Read a kernel trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                "unsupported trace version %r (expected %d)"
                % (header.get("version"), FORMAT_VERSION)
            )
        kernel = KernelTrace(name=header["kernel"])
        current: List[WarpTrace] = []
        for line in handle:
            record = json.loads(line)
            if "cta" in record:
                cta = CTA(cta_id=record["cta"])
                kernel.ctas.append(cta)
                current = cta.warps
            elif "warp" in record:
                if not kernel.ctas:
                    raise ValueError("warp record before any CTA record")
                current.append(
                    WarpTrace(
                        warp_id=record["warp"],
                        instrs=[_decode_instr(r) for r in record["instrs"]],
                    )
                )
            else:
                raise ValueError("unrecognized trace record: %r" % record)
    return kernel
