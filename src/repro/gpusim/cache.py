"""Set-associative tag store and MSHR file.

These are the building blocks of the L1 controller in
:mod:`repro.gpusim.unified_cache` and of the shared L2.  The tag store keeps
per-line flags needed by Snake's decoupling mechanism (§3.2): whether a line
holds prefetched or demand (L1) data, and whether it has been used — a
prefetch-space hit is "transferred" to the L1 side by flipping the flag, with
no data movement, exactly as the paper describes.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import CacheConfig


@dataclass(slots=True)
class LineState:
    """Metadata of one resident cache line."""

    addr: int
    inserted_at: int
    last_use: int
    is_prefetch: bool = False
    used: bool = False
    transferred: bool = False  # prefetch line later claimed by demand
    predicted: bool = False  # the prefetcher (re-)predicted this address
    sectors_valid: int = -1  # bitmask of fetched sectors (-1 = whole line)
    #: The owning set's OrderedDict, so touch/evict skip the XOR-fold set
    #: hash (structural back-pointer, not line state — excluded from
    #: comparisons and repr; audited by ``structural_violations``).
    home: Optional["OrderedDict[int, LineState]"] = field(
        default=None, repr=False, compare=False
    )


class SetAssocCache:
    """A set-associative, LRU tag store.

    The structure is deliberately policy-light: ``insert`` takes an explicit
    victim chosen by the caller (or picks plain LRU), so the L1 controller
    can layer Snake's decoupled-space eviction rules on top.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Geometry constants pulled out of the (property-computed) config:
        # ``set_index`` runs on every tag access.
        self._line_bytes = config.line_bytes
        self._set_count = config.num_sets
        # Each set is an OrderedDict addr -> LineState in LRU order
        # (oldest first).
        self._sets: List["OrderedDict[int, LineState]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        # Flat address -> line mirror of ``_sets``: ``lookup`` runs on every
        # demand and prefetch transaction, so it must not pay the XOR-fold
        # set hash — the mirror is maintained on the (much rarer) insert and
        # evict paths and holds exactly the union of all sets.
        self._flat: Dict[int, LineState] = {}
        # Incrementally-maintained aggregates.  ``occupancy`` and the
        # prefetched-but-unused backlog are read on every prefetch-throttle
        # decision, so they must not require walking the sets.  They change
        # in exactly three places: insert, evict and the first touch of a
        # prefetched line (which sets ``used``).
        self._occupancy = 0
        self._prefetch_unused = 0

    def set_index(self, line_addr: int) -> int:
        """XOR-folded set index (as GPU L1/L2 tag stores hash the index) so
        the power-of-two strides ubiquitous in GPU kernels do not collapse
        onto a single set."""
        line_no = line_addr // self._line_bytes
        folded = line_no ^ (line_no >> 4) ^ (line_no >> 9) ^ (line_no >> 15)
        return folded % self._set_count

    def _set_of(self, line_addr: int) -> "OrderedDict[int, LineState]":
        return self._sets[self.set_index(line_addr)]

    def lookup(self, line_addr: int) -> Optional[LineState]:
        """Return the line's state without touching LRU order."""
        return self._flat.get(line_addr)

    def touch(self, line_addr: int, now: int) -> Optional[LineState]:
        """Look up and, on hit, move to MRU position and stamp last_use."""
        state = self._flat.get(line_addr)
        if state is None:
            return None
        home = state.home
        if home is not None:
            home.move_to_end(line_addr)
        state.last_use = now
        if not state.used:
            if state.is_prefetch:
                self._prefetch_unused -= 1
            state.used = True
        return state

    def lines_in_set(self, set_idx: int) -> List[LineState]:
        """Lines of a set in LRU order (oldest first)."""
        return list(self._sets[set_idx].values())

    def set_is_full(self, set_idx: int) -> bool:
        return len(self._sets[set_idx]) >= self.config.assoc

    def count_in_set(self, set_idx: int, is_prefetch: bool) -> int:
        return sum(
            1
            for line in self._sets[set_idx].values()
            if line.is_prefetch == is_prefetch
        )

    def lru_victim(self, set_idx: int) -> Optional[LineState]:
        cache_set = self._sets[set_idx]
        if not cache_set:
            return None
        return next(iter(cache_set.values()))

    def evict(self, line_addr: int) -> Optional[LineState]:
        evicted = self._flat.pop(line_addr, None)
        if evicted is not None:
            home = evicted.home
            if home is not None:
                home.pop(line_addr, None)
            self._occupancy -= 1
            if evicted.is_prefetch and not evicted.used:
                self._prefetch_unused -= 1
        return evicted

    def insert(
        self,
        line_addr: int,
        now: int,
        is_prefetch: bool = False,
        victim: Optional[LineState] = None,
    ) -> Optional[LineState]:
        """Insert a line, evicting ``victim`` (or plain LRU) if the set is
        full.  Returns the evicted line, if any."""
        set_idx = self.set_index(line_addr)
        cache_set = self._sets[set_idx]
        if line_addr in cache_set:
            # Re-fill of a resident line: refresh metadata only.
            state = cache_set[line_addr]
            cache_set.move_to_end(line_addr)
            state.last_use = now
            return None
        evicted = None
        if len(cache_set) >= self.config.assoc:
            if victim is None:
                victim = self.lru_victim(set_idx)
            assert victim is not None
            evicted = cache_set.pop(victim.addr)
            del self._flat[victim.addr]
            self._occupancy -= 1
            if evicted.is_prefetch and not evicted.used:
                self._prefetch_unused -= 1
        state = LineState(
            addr=line_addr, inserted_at=now, last_use=now,
            is_prefetch=is_prefetch, home=cache_set,
        )
        cache_set[line_addr] = state
        self._flat[line_addr] = state
        self._occupancy += 1
        if is_prefetch:
            self._prefetch_unused += 1
        return evicted

    def structural_violations(self, label: str = "cache") -> List[str]:
        """Tag-store structural invariants (sanitizer hook): no set exceeds
        the associativity, every resident line lives in the set its address
        hashes to, and sector masks are well-formed."""
        violations: List[str] = []
        for set_idx, cache_set in enumerate(self._sets):
            if len(cache_set) > self.config.assoc:
                violations.append(
                    "%s set %d holds %d lines > assoc %d"
                    % (label, set_idx, len(cache_set), self.config.assoc)
                )
            for line in cache_set.values():
                if self.set_index(line.addr) != set_idx:
                    violations.append(
                        "%s line %#x resident in set %d but hashes to %d"
                        % (label, line.addr, set_idx, self.set_index(line.addr))
                    )
                if line.home is not cache_set:
                    violations.append(
                        "%s line %#x home pointer does not reference set %d"
                        % (label, line.addr, set_idx)
                    )
                if line.sectors_valid < -1:
                    violations.append(
                        "%s line %#x has malformed sector mask %d"
                        % (label, line.addr, line.sectors_valid)
                    )
        # The O(1) aggregates must agree with a full walk — a drifted
        # counter means some mutation path bypassed insert/evict/touch.
        walked = sum(len(s) for s in self._sets)
        if walked != self._occupancy:
            violations.append(
                "%s occupancy counter %d != walked %d"
                % (label, self._occupancy, walked)
            )
        if len(self._flat) != walked:
            violations.append(
                "%s flat mirror holds %d lines != walked %d"
                % (label, len(self._flat), walked)
            )
        walked_unused = sum(
            1
            for s in self._sets
            for line in s.values()
            if line.is_prefetch and not line.used
        )
        if walked_unused != self._prefetch_unused:
            violations.append(
                "%s prefetch-unused counter %d != walked %d"
                % (label, self._prefetch_unused, walked_unused)
            )
        return violations

    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def prefetch_unused(self) -> int:
        """Resident lines still flagged prefetch and never demanded — the
        backlog the space throttle watches (O(1), counter-maintained)."""
        return self._prefetch_unused

    @property
    def num_sets(self) -> int:
        return self._set_count

    def all_lines(self) -> List[LineState]:
        return [line for s in self._sets for line in s.values()]


@dataclass(slots=True)
class MSHREntry:
    """One in-flight miss."""

    line_addr: int
    fill_time: int
    merges: int = 1
    is_prefetch: bool = False
    demand_joined: bool = False  # a demand access merged into a prefetch miss
    predicted: bool = False  # the prefetcher predicted this in-flight address
    sectors: int = -1  # sector mask the fill will deliver (-1 = whole line)
    dropped: bool = False  # chaos fault: the fill packet was lost in the NoC
    seq: int = 0  # allocation order, so retirement order matches it


class MSHR:
    """Miss Status Holding Register file with bounded merge width.

    A demand access to an in-flight line merges (the paper's *reserved*
    outcome) unless the entry already absorbed ``merge_width`` requests, in
    which case the access reservation-fails, matching §2's accounting.
    """

    def __init__(self, entries: int, merge_width: int) -> None:
        if entries < 1 or merge_width < 1:
            raise ValueError("MSHR needs at least one entry and merge slot")
        self.entries = entries
        self.merge_width = merge_width
        self._inflight: Dict[int, MSHREntry] = {}
        # Fill horizon: a min-heap of (fill_time, line_addr) lower bounds.
        # ``pop_filled`` is called on *every* L1 access, so it must answer
        # "nothing has filled yet" without walking the in-flight file.
        # Entries are pushed at allocate and again whenever a fill is
        # rescheduled earlier (demand promotion); fill times never move
        # later, so the heap head is an exact earliest-fill horizon and
        # superseded entries are skipped lazily on pop.
        self._fill_heap: List[Tuple[int, int]] = []
        # Lifetime conservation counters: every allocated entry must retire
        # exactly once, so ``allocated - released == occupancy`` at all
        # times.  The sanitizer audits the balance; a leaked or
        # double-retired entry breaks it immediately.
        self.allocated = 0
        self.released = 0

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._inflight.get(line_addr)

    @property
    def full(self) -> bool:
        return len(self._inflight) >= self.entries

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    @property
    def next_fill_at(self) -> Optional[int]:
        """Earliest-fill horizon lower bound (heap head), or None when no
        fill is in flight — lets batch callers skip no-op commit sweeps."""
        return self._fill_heap[0][0] if self._fill_heap else None

    def allocate(
        self, line_addr: int, fill_time: int, is_prefetch: bool = False
    ) -> MSHREntry:
        if self.full:
            raise RuntimeError("MSHR allocate on full file")
        if line_addr in self._inflight:
            raise RuntimeError("MSHR double allocate for line %#x" % line_addr)
        entry = MSHREntry(
            line_addr=line_addr,
            fill_time=fill_time,
            is_prefetch=is_prefetch,
            seq=self.allocated,
        )
        self._inflight[line_addr] = entry
        heapq.heappush(self._fill_heap, (fill_time, line_addr))
        self.allocated += 1
        return entry

    def reschedule(self, entry: MSHREntry, fill_time: int) -> None:
        """Move an in-flight fill *earlier* (demand promotion of a
        best-effort prefetch).  Later times are ignored — the fill horizon
        heap relies on fill times never moving backward."""
        if fill_time >= entry.fill_time:
            return
        entry.fill_time = fill_time
        heapq.heappush(self._fill_heap, (fill_time, entry.line_addr))

    def try_merge(self, line_addr: int, is_demand: bool) -> Optional[MSHREntry]:
        """Merge a request into an in-flight miss; None if merge slots are
        exhausted (caller records a reservation fail)."""
        entry = self._inflight.get(line_addr)
        if entry is None:
            return None
        if entry.merges >= self.merge_width:
            return None
        entry.merges += 1
        if is_demand and entry.is_prefetch:
            entry.demand_joined = True
        return entry

    def pop_filled(self, now: int) -> List[MSHREntry]:
        """Remove and return entries whose fill time has arrived, in
        allocation order (the order the old full-scan implementation
        produced, which downstream install/eviction decisions depend on)."""
        heap = self._fill_heap
        if not heap or heap[0][0] > now:
            return []
        filled: List[MSHREntry] = []
        while heap and heap[0][0] <= now:
            _, line_addr = heapq.heappop(heap)
            entry = self._inflight.get(line_addr)
            # Skip superseded horizon entries: the line already retired via
            # an earlier (promoted) horizon, or was re-allocated with a
            # fill still in the future.
            if entry is not None and entry.fill_time <= now:
                del self._inflight[line_addr]
                filled.append(entry)
        self.released += len(filled)
        filled.sort(key=lambda e: e.seq)
        return filled

    @property
    def fill_horizon(self) -> Optional[int]:
        """Lower bound on the earliest in-flight fill time (None when the
        horizon heap is empty) — the MSHR's next-interesting-cycle report
        under the event core's horizon contract (docs/PERFORMANCE.md)."""
        heap = self._fill_heap
        return heap[0][0] if heap else None

    def entries_inflight(self) -> List[MSHREntry]:
        """All in-flight entries (sanitizer / state-dump introspection)."""
        return list(self._inflight.values())
