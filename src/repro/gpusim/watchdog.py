"""Forward-progress watchdog for :meth:`repro.gpusim.gpu.GPU.run`.

A buggy prefetcher, a corrupt trace or a pathological configuration can
livelock the timing model (e.g. a reservation-fail replay storm where every
retry fails again).  Instead of spinning forever inside a sweep, the GPU
periodically hands the watchdog a *progress signature* — counters that only
move when an instruction retires or a memory request drains.  If simulated
time advances by more than ``GPUConfig.watchdog_cycles`` with the signature
frozen, the run is declared hung and :class:`SimulationHangError` carries a
diagnostic state dump (per-SM warp states, MSHR occupancy, in-flight
NoC/L2/DRAM queues) out to the caller.

Two details keep false positives out:

* **Reservation fails are not progress.**  The signature counts retired
  instructions, serviced demand accesses, L2 traffic and DRAM reads — a
  replay loop bumps only ``l1_reservation_fails``, which is exactly the
  livelock signature, so it is excluded.
* **Two-strike rule.**  The event-driven SM can legally jump its clock far
  into the future in a single step (every warp sleeping on a distant fill).
  A single over-window gap therefore only arms the watchdog; it fires on
  the *second* consecutive check without progress, by which point a live
  simulation would have retired something.

``GPUConfig.max_cycles`` is the blunt companion: a hard deadman on the SM
clock itself (0 = unlimited), for when any bound on total runtime is known.
Tuning guidance lives in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Tuple

if TYPE_CHECKING:  # import cycle: gpu.py imports this module at runtime
    from .gpu import GPU
    from .sanitizer import SimSanitizer


class SimulationHangError(RuntimeError):
    """The simulation stopped making forward progress (or passed the
    ``max_cycles`` deadman).  ``state_dump`` holds the machine state at
    detection time; ``reason`` is ``no_forward_progress`` or ``max_cycles``."""

    def __init__(self, message: str, reason: str = "no_forward_progress",
                 state_dump: Optional[Mapping[str, object]] = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.state_dump = dict(state_dump or {})


def collect_state_dump(gpu: "GPU", max_warps_per_sm: int = 64,
                       sanitizer: Optional["SimSanitizer"] = None) -> dict:
    """Snapshot the machine for hang diagnosis.

    Everything is plain data (ints/strings/lists) so the dump survives a
    trip through the runner's pipe and the JSONL checkpoint.  When the run
    carries a :class:`repro.gpusim.sanitizer.SimSanitizer`, its audit trail
    (check count plus the machine summary at the last *clean* audit) rides
    along under the ``sanitizer`` key — for a hang or violation, the last
    known-good state is usually the most useful diagnostic anchor.
    """
    sms = []
    for sm in gpu.sms:
        warps = []
        for warp in sm._warps:
            if warp.finished:
                continue
            if len(warps) >= max_warps_per_sm:
                break
            warps.append(
                {
                    "warp_id": warp.warp_id,
                    "cta_id": warp.cta_id,
                    "ip": warp.ip,
                    "ready_at": warp.ready_at,
                    "at_barrier": warp.at_barrier,
                    "waiting_on_memory": warp.waiting_on_memory,
                    "replay_lines": len(warp.replay_lines),
                }
            )
        sms.append(
            {
                "sm_id": sm.sm_id,
                "now": sm.now,
                "live_warps": sum(1 for w in sm._warps if not w.finished),
                "queued_ctas": len(sm._cta_queue),
                "instructions": sm.stats.instructions,
                "mshr_occupancy": sm.l1.mshr_occupancy,
                "miss_queue_depth": len(sm.l1._miss_queue),
                "icnt_req_next_free": sm.icnt_req.next_free,
                "icnt_resp_next_free": sm.icnt_resp.next_free,
                "warps": warps,
            }
        )
    dump = {
        "sms": sms,
        "l2": {
            "hits": gpu.l2.hits,
            "misses": gpu.l2.misses,
            "inflight_lines": len(gpu.l2._inflight),
            "bank_next_free": list(gpu.l2._bank_next_free),
        },
        "dram": {
            "reads": gpu.dram.reads,
            "row_hits": gpu.dram.row_hits,
            "row_misses": gpu.dram.row_misses,
        },
    }
    if sanitizer is not None:
        dump["sanitizer"] = sanitizer.snapshot()
    return dump


class Watchdog:
    """Tracks the progress signature across ``GPU.run_many`` loop checks."""

    def __init__(self, gpu: "GPU", window_cycles: int, max_cycles: int,
                 sanitizer: Optional["SimSanitizer"] = None) -> None:
        self.gpu = gpu
        self.window = window_cycles
        self.max_cycles = max_cycles
        self.sanitizer = sanitizer
        self._last_signature: Tuple[int, ...] = ()
        self._last_progress_now = 0
        self._strikes = 0

    def _signature(self) -> Tuple[int, ...]:
        instructions = 0
        demand = 0
        finished = 0
        for sm in self.gpu.sms:
            stats = sm.stats
            instructions += stats.instructions
            finished += stats.warps_finished
            # Excludes reservation fails on purpose: a replay storm that
            # never succeeds must read as "no progress".
            demand += stats.l1_hits + stats.l1_misses + stats.l1_reserved
        l2 = self.gpu.l2
        return (
            instructions,
            finished,
            demand,
            l2.hits + l2.misses,
            self.gpu.dram.reads,
        )

    def check(self, now: int) -> None:
        """Raise :class:`SimulationHangError` if the run is hung at ``now``."""
        if self.max_cycles and now > self.max_cycles:
            raise SimulationHangError(
                "simulation passed the max_cycles deadman (%d > %d)"
                % (now, self.max_cycles),
                reason="max_cycles",
                state_dump=collect_state_dump(self.gpu, sanitizer=self.sanitizer),
            )
        if not self.window:
            return
        signature = self._signature()
        if signature != self._last_signature:
            self._last_signature = signature
            self._last_progress_now = now
            self._strikes = 0
            return
        if now - self._last_progress_now < self.window:
            return
        self._strikes += 1
        if self._strikes < 2:
            return
        raise SimulationHangError(
            "no forward progress for %d cycles (window %d): no instruction "
            "retired and no memory request drained since cycle %d"
            % (now - self._last_progress_now, self.window, self._last_progress_now),
            reason="no_forward_progress",
            state_dump=collect_state_dump(self.gpu, sanitizer=self.sanitizer),
        )
