"""Unified L1 data cache controller.

This is the per-SM memory front end: tag store + MSHR + miss queue, the
interconnect/L2 path for misses, and the three storage disciplines the paper
compares:

* ``coupled`` — baseline: prefetched lines share the L1 with demand data
  (Snake-DT and the decoupling-less competitors).
* ``decoupled`` — Snake's scheme (§3.2): prefetch and demand lines live in
  the same unified SRAM but are distinguished by a flag; a prefetch-space hit
  "transfers" the line by flipping the flag; when a set fills up, 25 % of it
  is freed by LRU from the prefetch or demand side depending on whether more
  than 80 % of prefetched lines were transferred; while the prefetcher is
  untrained, demand data may claim at most 50 % of the ways.
* ``isolated`` — Isolated-Snake (§5.7): prefetched lines go to a dedicated
  side buffer and never contend with demand data.

Outcomes follow §2 footnote 1: HIT, MISS, RESERVED (merged into an in-flight
miss) and RESERVATION_FAIL (no MSHR/miss-queue resources — the access will be
replayed).
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Set, Tuple

from repro.obs.events import (
    BusLike,
    NULL_BUS,
    PrefetchDropEvent,
    PrefetchFillEvent,
    PrefetchUseEvent,
)

from .cache import LineState, MSHR, SetAssocCache
from .config import CacheConfig, GPUConfig
from .faults import FaultInjector
from .interconnect import Interconnect
from .l2 import L2Cache
from .stats import SimStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> gpusim)
    from repro.core.throttle import Throttle

_REQUEST_BYTES = 8  # read-request / write-through packet header


class L1Outcome(enum.Enum):
    HIT = "hit"
    MISS = "miss"
    RESERVED = "reserved"
    RESERVATION_FAIL = "reservation_fail"


class StorageMode(enum.Enum):
    COUPLED = "coupled"
    DECOUPLED = "decoupled"
    ISOLATED = "isolated"


class UnifiedL1Cache:
    """Per-SM L1 data cache with a prefetch-aware storage policy."""

    def __init__(
        self,
        config: GPUConfig,
        icnt_req: Interconnect,
        icnt_resp: Interconnect,
        l2: L2Cache,
        stats: SimStats,
        mode: StorageMode = StorageMode.COUPLED,
        obs: Optional[BusLike] = None,
        sm_id: int = -1,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.mode = mode
        self._obs = obs if obs is not None else NULL_BUS
        self._sm_id = sm_id
        # Optional chaos hook (repro.gpusim.faults.FaultInjector).  Every
        # use is None-guarded: without a fault plan the cache pays one
        # attribute test per injection site and nothing more.
        self._faults = faults
        self._store = SetAssocCache(config.l1)
        self._mshr = MSHR(config.mshr_entries, config.mshr_merge)
        self._miss_queue: Deque[int] = deque()  # icnt-acceptance times
        self._icnt_req = icnt_req
        self._icnt_resp = icnt_resp
        self._l2 = l2
        self.stats = stats
        # Hot-path scalars hoisted out of the frozen config (attribute-chain
        # reads on every demand access otherwise).
        self._l1_latency = config.l1.latency
        self._replay_interval = config.replay_interval
        self._sector_bytes = config.l1_sector_bytes

        if mode is StorageMode.ISOLATED:
            side = CacheConfig(
                size_bytes=config.l1.size_bytes // 2,
                assoc=max(1, config.l1.assoc // 2),
                line_bytes=config.l1.line_bytes,
                latency=config.l1.latency,
            )
            self._side_buffer: Optional[SetAssocCache] = SetAssocCache(side)
        else:
            self._side_buffer = None

        # The space the throttle triggers watch (side buffer when isolated,
        # the unified store otherwise) and its size — resolved once; both
        # fractions are polled on every prefetch decision.
        self._pf_store = (
            self._side_buffer if self._side_buffer is not None else self._store
        )
        self._pf_capacity = self._pf_store.config.num_lines

        # Ideal-prefetcher magic storage: infinite, zero-latency.
        self._magic_lines: Set[int] = set()

        # Decoupling state.  The transfer counters decay so the 80 % rule
        # tracks *recent* prefetch usefulness rather than all of history.
        self.prefetcher_trained = False
        self.throttled_until = -1
        self._prefetch_inserted = 0
        self._prefetch_transferred = 0

    # ------------------------------------------------------------------
    # Plumbing

    @property
    def line_bytes(self) -> int:
        return self.config.l1.line_bytes

    def line_of(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _commit_fills(self, now: int) -> None:
        # Hot-path early exit: on most calls nothing has filled and the
        # miss queue head is still in the future, so answer without the
        # pop_filled round trip (the heap head is an exact lower bound).
        heap = self._mshr._fill_heap
        queue = self._miss_queue
        if (not heap or heap[0][0] > now) and (not queue or queue[0] > now):
            return
        for entry in self._mshr.pop_filled(now):
            if entry.dropped and not entry.demand_joined:
                # Chaos icnt.drop_fill: the best-effort fill packet was lost.
                # The MSHR entry still retires exactly once (conservation),
                # but no line lands — a lost prefetch opportunity, nothing
                # more.  A demand-joined entry is never dropped: the merge
                # promoted the packet to the demand channel.
                continue
            resident = self._store.lookup(entry.line_addr)
            if resident is not None and self._sector_bytes:
                # sector fill into an already-resident line
                if entry.sectors == -1 or resident.sectors_valid == -1:
                    resident.sectors_valid = -1
                else:
                    resident.sectors_valid |= entry.sectors
            if entry.is_prefetch and self._obs.enabled:
                self._obs.emit(
                    PrefetchFillEvent(
                        cycle=entry.fill_time,
                        sm_id=self._sm_id,
                        line_addr=entry.line_addr,
                        demand_joined=entry.demand_joined,
                    )
                )
            if entry.is_prefetch and entry.demand_joined:
                # The prediction was right but late: a demand merged while
                # the line was in flight.  It lands as demand data and counts
                # as a successful transfer for the 80 % rule.
                self._prefetch_inserted += 1
                self._prefetch_transferred += 1
                self._install(
                    entry.line_addr, entry.fill_time, False, sectors=entry.sectors
                )
            else:
                self._install(
                    entry.line_addr,
                    entry.fill_time,
                    entry.is_prefetch,
                    sectors=entry.sectors,
                )
        while self._miss_queue and self._miss_queue[0] <= now:
            self._miss_queue.popleft()

    def _miss_queue_full(self, now: int) -> bool:
        while self._miss_queue and self._miss_queue[0] <= now:
            self._miss_queue.popleft()
        return len(self._miss_queue) >= self.config.miss_queue_depth

    def _send_to_l2(
        self,
        line_addr: int,
        now: int,
        is_write: bool,
        is_prefetch: bool = False,
        nbytes: Optional[int] = None,
    ) -> int:
        """Push a request out and return the fill time of the response.

        Demand traffic rides the priority virtual channel; prefetch traffic
        is best-effort and yields to it (§3.3's premise that prefetching
        must not slow demand responses down).
        """
        priority = not is_prefetch
        request_arrival = self._icnt_req.send(
            now, _REQUEST_BYTES, priority=priority
        )
        # The miss-queue entry drains when the NoC accepts the request.
        self._miss_queue.append(self._icnt_req.next_free)
        self.stats.icnt_bytes += _REQUEST_BYTES
        l2_ready = self._l2.access(
            line_addr, request_arrival, is_write=is_write, priority=priority
        )
        fill_bytes = nbytes if nbytes is not None else self.line_bytes
        fill_time = self._icnt_resp.send(l2_ready, fill_bytes, priority=priority)
        self.stats.icnt_bytes += fill_bytes
        if is_prefetch and self._faults is not None:
            # Chaos icnt.delay_fill: the best-effort fill dawdles in the NoC.
            fill_time += self._faults.delay("icnt.delay_fill", now, self._sm_id)
        return fill_time

    # ------------------------------------------------------------------
    # Storage policy

    def _transfer_ratio(self) -> float:
        """Recent fraction of prefetched lines claimed by demand.  Starts
        optimistic (1.0) so the decoupled policy protects prefetched data
        until there is actual evidence of misbehaviour — otherwise the 80 %
        rule can never bootstrap (no protection -> no transfers -> no
        protection)."""
        if self._prefetch_inserted < 16:
            return 1.0
        return self._prefetch_transferred / self._prefetch_inserted

    def _free_quarter(self, set_idx: int, now: int) -> None:
        """Free 25 % of a full set by LRU — §3.2's response to the cache
        running completely out of space.  Evicts demand-side lines if >80 %
        of prefetched lines were transferred (prefetching is behaving),
        otherwise old prefetched lines.  Routine fills use the single-victim
        rule in :meth:`_decoupled_victim` instead."""
        evict_demand_side = self._transfer_ratio() > 0.80
        quota = max(1, math.ceil(self.config.l1.assoc * 0.25))
        lines = self._store.lines_in_set(set_idx)  # LRU order
        preferred = [
            l for l in lines if l.is_prefetch != evict_demand_side
        ]
        others = [l for l in lines if l.is_prefetch == evict_demand_side]
        for line in (preferred + others)[:quota]:
            self._evict_line(line)

    def _evict_line(self, line: LineState) -> None:
        self._store.evict(line.addr)
        if line.is_prefetch and not line.used:
            self.stats.prefetch.unused_evicted += 1

    def _install(
        self, line_addr: int, now: int, is_prefetch: bool, sectors: int = -1
    ) -> None:
        """Insert a filled line per the active storage mode."""
        if is_prefetch and self._side_buffer is not None:
            self._side_buffer.insert(line_addr, now, is_prefetch=True)
            self._prefetch_inserted += 1
            return

        store = self._store
        set_idx = store.set_index(line_addr)
        victim: Optional[LineState] = None

        if self.mode is StorageMode.DECOUPLED:
            if store.set_is_full(set_idx):
                victim = self._decoupled_victim(set_idx, now, is_prefetch)
            elif not is_prefetch:
                # Training/throttle confinement applies even before the set
                # fills: demand data may claim at most half the ways, the
                # rest being reserved for prefetched data (§3.2).  The set
                # is not full, so the tag store will not evict on insert —
                # recycle the demand-side LRU line explicitly.
                confined = (
                    not self.prefetcher_trained
                ) or now < self.throttled_until
                if confined:
                    demand_side = [
                        l
                        for l in store.lines_in_set(set_idx)
                        if not l.is_prefetch
                    ]
                    if len(demand_side) >= self.config.l1.assoc // 2:
                        self._evict_line(demand_side[0])

        evicted = store.insert(line_addr, now, is_prefetch=is_prefetch, victim=victim)
        if self._sector_bytes:
            line = store.lookup(line_addr)
            if line is not None and line.sectors_valid != -1:
                line.sectors_valid |= sectors if sectors != -1 else -1
            elif line is not None:
                line.sectors_valid = sectors
        self._decay_transfer_counters()
        if is_prefetch:
            self._prefetch_inserted += 1
        if evicted is not None and evicted.is_prefetch and not evicted.used:
            self.stats.prefetch.unused_evicted += 1
            if not is_prefetch:
                # a demand fill displaced a never-used prefetched line
                self.stats.prefetch.early_evictions += 1

    def _decoupled_victim(
        self, set_idx: int, now: int, inserting_prefetch: bool
    ) -> LineState:
        """Single-victim choice for a fill into a full set (§3.2).

        The 80 %-transfer rule decides which side yields: when prefetching
        is behaving (most prefetched lines get claimed by demand), the
        demand side gives up its LRU line; otherwise stale prefetched lines
        are recycled.  While the prefetcher is untrained or the throttle has
        confined the demand side, demand fills recycle their own LRU once
        they hold half the ways."""
        lines = self._store.lines_in_set(set_idx)  # LRU order
        prefetch_side = [l for l in lines if l.is_prefetch]
        demand_side = [l for l in lines if not l.is_prefetch]

        if not inserting_prefetch:
            confined = (not self.prefetcher_trained) or now < self.throttled_until
            half = self.config.l1.assoc // 2
            if confined and len(demand_side) >= half:
                return demand_side[0]

        # Protect prefetched data while it is behaving (80 % rule) or still
        # within its consumption window: the transfer ratio lags fills by a
        # full memory round trip, so a grace age keeps the policy from
        # recycling lines that simply have not had time to be used yet.
        grace = self.config.decouple_grace
        fresh = bool(prefetch_side) and now - prefetch_side[0].inserted_at < grace
        if self._transfer_ratio() > 0.80 or fresh:
            victim_pool = demand_side or prefetch_side
        else:
            victim_pool = prefetch_side or demand_side
        return victim_pool[0]

    def _decay_transfer_counters(self) -> None:
        """Halve the transfer-ratio counters periodically so the 80 % rule
        follows the prefetcher's recent behaviour."""
        if self._prefetch_inserted >= 256:
            self._prefetch_inserted //= 2
            self._prefetch_transferred //= 2

    # ------------------------------------------------------------------
    # Demand path

    def demand_load(
        self, line_addr: int, now: int, sector_mask: int = -1
    ) -> Tuple[L1Outcome, int]:
        """A warp's demand load of one line.  Returns (outcome, ready time).
        On RESERVATION_FAIL the ready time is a retry time.

        With a sectored L1 (``l1_sector_bytes`` > 0) ``sector_mask`` names
        the sectors the warp touches; a resident line missing some of them
        takes the miss path for just those sectors."""
        self._commit_fills(now)

        if line_addr in self._magic_lines:
            self.stats.l1_hits += 1
            self.stats.prefetch.demand_covered += 1
            self.stats.prefetch.demand_timely += 1
            return L1Outcome.HIT, now + self._l1_latency

        state = self._store.touch(line_addr, now)
        if state is not None and not self._sectors_present(state, sector_mask):
            # sector miss: the line is resident but these sectors are not
            state = None
        if state is not None:
            self.stats.l1_hits += 1
            if state.is_prefetch or state.predicted:
                self.stats.prefetch.demand_covered += 1
                self.stats.prefetch.demand_timely += 1
                state.predicted = False  # credit a prediction once
            if state.is_prefetch:
                state.is_prefetch = False  # flag-flip transfer, no data move
                state.transferred = True
                self._prefetch_transferred += 1
                if self._obs.enabled:
                    self._obs.emit(
                        PrefetchUseEvent(
                            cycle=now, sm_id=self._sm_id, line_addr=line_addr
                        )
                    )
            return L1Outcome.HIT, now + self._l1_latency

        if self._side_buffer is not None:
            side = self._side_buffer.touch(line_addr, now)
            if side is not None:
                self.stats.l1_hits += 1
                self.stats.prefetch.demand_covered += 1
                self.stats.prefetch.demand_timely += 1
                if self._obs.enabled:
                    self._obs.emit(
                        PrefetchUseEvent(
                            cycle=now, sm_id=self._sm_id, line_addr=line_addr
                        )
                    )
                return L1Outcome.HIT, now + self._l1_latency

        inflight = self._mshr.lookup(line_addr)
        if inflight is not None:
            merged = self._mshr.try_merge(line_addr, is_demand=True)
            if merged is None:
                self.stats.l1_reservation_fails += 1
                return (
                    L1Outcome.RESERVATION_FAIL,
                    now + self._replay_interval,
                )
            self.stats.l1_reserved += 1
            if merged.is_prefetch or merged.predicted:
                # Correctly predicted but late: covered, not timely.
                self.stats.prefetch.demand_covered += 1
                merged.predicted = False
            if merged.is_prefetch:
                # The prefetch rides the best-effort virtual channel; once a
                # demand merges, hardware promotes the packet.  Model the
                # promotion analytically: the fill completes no later than a
                # fresh unloaded demand round trip from now (its bandwidth
                # was already reserved on the best-effort channel).
                promoted = now + self._unloaded_round_trip()
                self._mshr.reschedule(merged, promoted)
            return L1Outcome.RESERVED, merged.fill_time + 1

        if (
            self._mshr.full
            or self._miss_queue_full(now)
            or (
                self._faults is not None
                and self._faults.fires(
                    "l1.mshr_refuse", now, self._sm_id, "demand %#x" % line_addr
                )
            )
        ):
            self.stats.l1_reservation_fails += 1
            return L1Outcome.RESERVATION_FAIL, now + self._replay_interval

        self.stats.l1_misses += 1
        fill_time = self._send_to_l2(
            line_addr, now, is_write=False, nbytes=self._fetch_bytes(sector_mask)
        )
        entry = self._mshr.allocate(line_addr, fill_time, is_prefetch=False)
        entry.sectors = sector_mask if self._sector_bytes else -1
        return L1Outcome.MISS, fill_time + 1

    def _sectors_present(self, state: LineState, sector_mask: int) -> bool:
        """Does the resident line hold every requested sector?"""
        if not self._sector_bytes or sector_mask == -1:
            return True
        if state.sectors_valid == -1:
            return True
        return (state.sectors_valid & sector_mask) == sector_mask

    def _fetch_bytes(self, sector_mask: int) -> Optional[int]:
        """Transfer size for a demand fill (None = whole line)."""
        sector = self._sector_bytes
        if not sector or sector_mask == -1:
            return None
        return max(sector, bin(sector_mask & ((1 << 64) - 1)).count("1") * sector)

    def _unloaded_round_trip(self) -> int:
        """Queue-free demand latency: request hop + L2/DRAM service + the
        response hop and line serialization."""
        line_cycles = math.ceil(self.line_bytes / self._icnt_resp.bytes_per_cycle)
        return (
            self._icnt_req.latency
            + self.config.l2.latency
            + self._icnt_resp.latency
            + line_cycles
        )

    def demand_store(self, line_addr: int, now: int) -> int:
        """Write-through, no-allocate store; returns completion time for the
        warp (stores do not block on the round trip)."""
        self._commit_fills(now)
        state = self._store.touch(line_addr, now)
        if state is not None and state.is_prefetch:
            state.is_prefetch = False
            state.transferred = True
            self._prefetch_transferred += 1
        self._icnt_req.send(now, _REQUEST_BYTES)
        self.stats.icnt_bytes += _REQUEST_BYTES
        return now + 1

    # ------------------------------------------------------------------
    # Prefetch path

    def prefetch(self, line_addr: int, now: int) -> bool:
        """Issue a hardware prefetch for one line.  Returns True when a
        request actually left for L2."""
        self._commit_fills(now)
        if self._faults is not None and self._faults.should("l1.evict_storm"):
            evicted = self._evict_prefetch_storm()
            self._faults.record(
                "l1.evict_storm", now, self._sm_id,
                "evicted %d prefetched lines" % evicted,
            )
        resident = self._store.lookup(line_addr)
        if resident is None and self._side_buffer is not None:
            resident = self._side_buffer.lookup(line_addr)
        if resident is not None:
            # Already cached: the prediction was correct — remember it so the
            # demand access counts toward coverage (the paper's metric counts
            # correctly predicted addresses, §4).
            resident.predicted = True
            self.stats.prefetch.dropped_duplicate += 1
            if self._obs.enabled:
                self._obs.emit(
                    PrefetchDropEvent(
                        cycle=now, sm_id=self._sm_id, line_addr=line_addr,
                        reason="duplicate",
                    )
                )
            return False
        inflight = self._mshr.lookup(line_addr)
        if inflight is not None:
            inflight.predicted = True
            self.stats.prefetch.dropped_duplicate += 1
            if self._obs.enabled:
                self._obs.emit(
                    PrefetchDropEvent(
                        cycle=now, sm_id=self._sm_id, line_addr=line_addr,
                        reason="duplicate",
                    )
                )
            return False
        # Leave headroom for demand misses: prefetches may not take the last
        # quarter of the MSHR nor the last miss-queue slot.
        mshr_cap = max(1, (self.config.mshr_entries * 3) // 4)
        queue_cap = max(1, self.config.miss_queue_depth - 1)
        while self._miss_queue and self._miss_queue[0] <= now:
            self._miss_queue.popleft()
        refused = (
            self._mshr.occupancy >= mshr_cap
            or len(self._miss_queue) >= queue_cap
        )
        reason = "headroom"
        if (
            not refused
            and self._faults is not None
            and self._faults.fires(
                "l1.mshr_refuse", now, self._sm_id, "prefetch %#x" % line_addr
            )
        ):
            # Chaos l1.mshr_refuse on the best-effort path: the prefetch is
            # simply dropped before issue, so it never reaches L2 and the
            # cross-layer request conservation stays exact.
            refused = True
            reason = "fault"
        if refused:
            self.stats.prefetch.dropped_throttled += 1
            if self._obs.enabled:
                self._obs.emit(
                    PrefetchDropEvent(
                        cycle=now, sm_id=self._sm_id, line_addr=line_addr,
                        reason=reason,
                    )
                )
            return False
        fill_time = self._send_to_l2(
            line_addr, now, is_write=False, is_prefetch=True
        )
        entry = self._mshr.allocate(line_addr, fill_time, is_prefetch=True)
        if self._faults is not None and self._faults.fires(
            "icnt.drop_fill", now, self._sm_id, "prefetch %#x" % line_addr
        ):
            entry.dropped = True
        self.stats.prefetch.issued += 1
        return True

    def prefetch_batch(self, line_addrs: List[int], now: int) -> List[bool]:
        """Issue one trigger's whole line vector in a single pass
        (``config.batched_issue``): duplicate/in-flight filtering, MSHR and
        miss-queue headroom, and L2 hand-off run per line over hoisted
        state instead of N :meth:`prefetch` round trips.  The observable
        sequence — counters, drop events, MSHR/NoC state — is identical to
        N sequential ``prefetch()`` calls (the retained scalar oracle),
        pinned by property tests.  With a fault injector armed it delegates
        to the scalar path outright so chaos RNG draws keep their order.
        """
        if self._faults is not None:
            return [self.prefetch(line, now) for line in line_addrs]
        self._commit_fills(now)
        store_get = self._store._flat.get
        side = self._side_buffer
        mshr = self._mshr
        mshr_get = mshr._inflight.get
        inflight_file = mshr._inflight
        fill_heap = mshr._fill_heap
        stats_pf = self.stats.prefetch
        obs = self._obs
        observing = obs.enabled
        miss_queue = self._miss_queue
        mshr_cap = max(1, (self.config.mshr_entries * 3) // 4)
        queue_cap = max(1, self.config.miss_queue_depth - 1)
        sent: List[bool] = []
        for line_addr in line_addrs:
            # The scalar path re-commits fills before every line; only the
            # heap head can make that a non-no-op.
            if fill_heap and fill_heap[0][0] <= now:
                self._commit_fills(now)
            resident = store_get(line_addr)
            if resident is None and side is not None:
                resident = side.lookup(line_addr)
            if resident is not None:
                resident.predicted = True
                stats_pf.dropped_duplicate += 1
                if observing:
                    obs.emit(
                        PrefetchDropEvent(
                            cycle=now, sm_id=self._sm_id,
                            line_addr=line_addr, reason="duplicate",
                        )
                    )
                sent.append(False)
                continue
            inflight = mshr_get(line_addr)
            if inflight is not None:
                inflight.predicted = True
                stats_pf.dropped_duplicate += 1
                if observing:
                    obs.emit(
                        PrefetchDropEvent(
                            cycle=now, sm_id=self._sm_id,
                            line_addr=line_addr, reason="duplicate",
                        )
                    )
                sent.append(False)
                continue
            while miss_queue and miss_queue[0] <= now:
                miss_queue.popleft()
            if len(inflight_file) >= mshr_cap or len(miss_queue) >= queue_cap:
                stats_pf.dropped_throttled += 1
                if observing:
                    obs.emit(
                        PrefetchDropEvent(
                            cycle=now, sm_id=self._sm_id,
                            line_addr=line_addr, reason="headroom",
                        )
                    )
                sent.append(False)
                continue
            fill_time = self._send_to_l2(
                line_addr, now, is_write=False, is_prefetch=True
            )
            mshr.allocate(line_addr, fill_time, is_prefetch=True)
            stats_pf.issued += 1
            sent.append(True)
        return sent

    def prefetch_trigger(
        self,
        vectors: List[List[int]],
        now: int,
        issue_at: int,
        throttle: "Throttle",
    ) -> None:
        """Issue a whole trigger's candidate requests — one coalesced line
        vector per prefetch request — in a single call
        (``config.batched_issue``).

        Per request the throttle still votes in sequence at ``now``, but
        the vote is memoized: ``Throttle.allow`` is a deterministic,
        repeat-idempotent function of (utilization, L1 occupancy, prefetch
        backlog) at a fixed cycle, and within one trigger those inputs only
        move when a request actually sends bytes or a fill commits — so
        re-votes with unchanged inputs are provable no-ops, and once the
        vote is False nothing can flip it back this trigger: every
        remaining request drops, exactly what the scalar oracle concludes
        one ``allow``/``prefetch()`` call at a time.  Counters, drop
        events and MSHR/NoC state are identical to the scalar sequence
        (pinned by property tests); telemetry runs take the scalar path in
        the SM so event interleaving stays byte-stable.  With a fault
        injector armed the line issue delegates to scalar :meth:`prefetch`
        so chaos RNG draws keep their per-line cadence.
        """
        stats_pf = self.stats.prefetch
        pf_store = self._pf_store
        req_util = self._icnt_req.measured_utilization
        resp_util = self._icnt_resp.measured_utilization
        allow = throttle.allow
        utilization = 0.0
        need_vote = True
        sent_since_vote = True
        last_occ = -1
        last_unused = -1
        if self._faults is not None:
            prefetch = self.prefetch
            for index, vector in enumerate(vectors):
                if sent_since_vote:
                    utilization = 0.5 * (req_util(now) + resp_util(now))
                elif (
                    pf_store._occupancy != last_occ
                    or pf_store._prefetch_unused != last_unused
                ):
                    need_vote = True  # fills committed: space inputs moved
                if need_vote:
                    if not allow(now, self, utilization):
                        stats_pf.dropped_throttled += len(vectors) - index
                        return
                    last_occ = pf_store._occupancy
                    last_unused = pf_store._prefetch_unused
                    need_vote = False
                    sent_since_vote = False
                # Every line must reach prefetch() so chaos RNG draws keep
                # their cadence — no short-circuit on first send.
                if True in [prefetch(line, issue_at) for line in vector]:
                    need_vote = True
                    sent_since_vote = True
            return

        store_get = self._store._flat.get
        side = self._side_buffer
        mshr = self._mshr
        mshr_get = mshr._inflight.get
        inflight_file = mshr._inflight
        fill_heap = mshr._fill_heap
        obs = self._obs
        observing = obs.enabled
        miss_queue = self._miss_queue
        mshr_cap = max(1, (self.config.mshr_entries * 3) // 4)
        queue_cap = max(1, self.config.miss_queue_depth - 1)
        for index, vector in enumerate(vectors):
            if sent_since_vote:
                utilization = 0.5 * (req_util(now) + resp_util(now))
            elif (
                pf_store._occupancy != last_occ
                or pf_store._prefetch_unused != last_unused
            ):
                need_vote = True  # fills committed: space inputs moved
            if need_vote:
                if not allow(now, self, utilization):
                    stats_pf.dropped_throttled += len(vectors) - index
                    return
                last_occ = pf_store._occupancy
                last_unused = pf_store._prefetch_unused
                need_vote = False
                sent_since_vote = False
            sent_any = False
            for line_addr in vector:
                # The scalar path commits fills before every line; this
                # guard replicates _commit_fills' own early-exit inline.
                if (fill_heap and fill_heap[0][0] <= issue_at) or (
                    miss_queue and miss_queue[0] <= issue_at
                ):
                    self._commit_fills(issue_at)
                resident = store_get(line_addr)
                if resident is None and side is not None:
                    resident = side.lookup(line_addr)
                if resident is not None:
                    resident.predicted = True
                    stats_pf.dropped_duplicate += 1
                    if observing:
                        obs.emit(
                            PrefetchDropEvent(
                                cycle=issue_at, sm_id=self._sm_id,
                                line_addr=line_addr, reason="duplicate",
                            )
                        )
                    continue
                inflight = mshr_get(line_addr)
                if inflight is not None:
                    inflight.predicted = True
                    stats_pf.dropped_duplicate += 1
                    if observing:
                        obs.emit(
                            PrefetchDropEvent(
                                cycle=issue_at, sm_id=self._sm_id,
                                line_addr=line_addr, reason="duplicate",
                            )
                        )
                    continue
                while miss_queue and miss_queue[0] <= issue_at:
                    miss_queue.popleft()
                if (
                    len(inflight_file) >= mshr_cap
                    or len(miss_queue) >= queue_cap
                ):
                    stats_pf.dropped_throttled += 1
                    if observing:
                        obs.emit(
                            PrefetchDropEvent(
                                cycle=issue_at, sm_id=self._sm_id,
                                line_addr=line_addr, reason="headroom",
                            )
                        )
                    continue
                fill_time = self._send_to_l2(
                    line_addr, issue_at, is_write=False, is_prefetch=True
                )
                mshr.allocate(line_addr, fill_time, is_prefetch=True)
                stats_pf.issued += 1
                sent_any = True
            if sent_any:
                need_vote = True
                sent_since_vote = True

    def _evict_prefetch_storm(self) -> int:
        """Chaos l1.evict_storm: flush every still-prefetch-flagged line
        from one random set (plus the matching side-buffer set in isolated
        mode).  Returns the number of lines evicted."""
        assert self._faults is not None
        evicted = 0
        set_idx = self._faults.rand_index(self._store.num_sets)
        for line in self._store.lines_in_set(set_idx):
            if line.is_prefetch:
                self._evict_line(line)
                evicted += 1
        if self._side_buffer is not None:
            side_idx = self._faults.rand_index(self._side_buffer.num_sets)
            for line in self._side_buffer.lines_in_set(side_idx):
                if line.is_prefetch:
                    self._side_buffer.evict(line.addr)
                    if not line.used:
                        self.stats.prefetch.unused_evicted += 1
                    evicted += 1
        return evicted

    def magic_prefetch(self, line_addr: int) -> None:
        """Ideal-prefetcher fill: infinite storage, zero latency (§1)."""
        self._magic_lines.add(line_addr)

    # ------------------------------------------------------------------
    # Introspection (throttle triggers, tests)

    def free_space_fraction(self, now: int) -> float:
        """Free fraction of the space prefetched data competes for (the
        side buffer in isolated mode, the unified store otherwise)."""
        self._commit_fills(now)
        capacity = self._pf_capacity
        return 1.0 - self._pf_store.occupancy / capacity if capacity else 0.0

    def unused_prefetch_fraction(self, now: int) -> float:
        """Fraction of prefetch-space capacity holding not-yet-used
        prefetched lines — the backlog the space throttle watches."""
        self._commit_fills(now)
        capacity = self._pf_capacity
        if not capacity:
            return 0.0
        return self._pf_store.prefetch_unused / capacity

    @property
    def mshr_occupancy(self) -> int:
        return self._mshr.occupancy

    @property
    def store(self) -> SetAssocCache:
        return self._store

    @property
    def side_buffer(self) -> Optional[SetAssocCache]:
        return self._side_buffer
