"""Row-buffer DRAM timing model.

Each bank keeps its open row and next-free time; a row hit costs tCL, a row
miss pays precharge + activate + CAS (tRP + tRCD + tCL), and tRC bounds
back-to-back activates — the Table 1 parameters drive all of it.  Times are
kept in core cycles; DRAM timings are converted through the configured
core/memory clock ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import BusLike, DramRowActivateEvent, NULL_BUS

from .config import DRAMTimings
from .faults import FaultInjector


@dataclass
class _BankState:
    open_row: int = -1
    next_free: int = 0
    priority_next_free: int = 0
    last_activate: int = -(10**9)
    # Activate spacing is tracked per priority class: a best-effort prefetch
    # scheduled far in the future must not drag demand activates behind it
    # (the controller serves demand first and replays the prefetch after).
    last_priority_activate: int = -(10**9)


@dataclass
class _ChannelState:
    next_free: int = 0
    priority_next_free: int = 0
    banks: List[_BankState] = field(default_factory=list)


class DRAM:
    """A multi-channel, multi-bank DRAM with open-page policy."""

    BURST_BYTES_PER_MEM_CYCLE = 32

    def __init__(
        self,
        timings: DRAMTimings,
        channels: int,
        banks_per_channel: int,
        row_bytes: int,
        clock_ratio: float,
        line_bytes: int,
        obs: Optional[BusLike] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if channels < 1 or banks_per_channel < 1:
            raise ValueError("need at least one channel and bank")
        self._obs = obs if obs is not None else NULL_BUS
        self._faults = faults  # optional chaos hook (dram.latency_spike)
        self.timings = timings
        self.row_bytes = row_bytes
        self.clock_ratio = clock_ratio
        self.line_bytes = line_bytes
        self._channels = [
            _ChannelState(banks=[_BankState() for _ in range(banks_per_channel)])
            for _ in range(channels)
        ]
        self.reads = 0
        self.row_hits = 0
        self.row_misses = 0

    def _core_cycles(self, mem_cycles: int) -> int:
        return max(1, round(mem_cycles / self.clock_ratio))

    def _map(self, line_addr: int) -> "tuple[int, int, _BankState, int]":
        line_no = line_addr // self.line_bytes
        ch_idx = line_no % len(self._channels)
        channel = self._channels[ch_idx]
        bank_no = (line_no // len(self._channels)) % len(channel.banks)
        row = line_addr // (self.row_bytes * len(self._channels))
        return ch_idx, bank_no, channel.banks[bank_no], row

    def access(
        self, line_addr: int, now: int, is_write: bool = False,
        priority: bool = True,
    ) -> int:
        """Service one line transfer; returns its completion time (core
        cycles).  Demand requests (``priority=True``) schedule ahead of
        best-effort prefetch traffic, which queues behind everything."""
        t = self.timings
        ch_idx, bank_no, bank, row = self._map(line_addr)
        channel = self._channels[ch_idx]
        if priority:
            start = max(now, bank.priority_next_free, channel.priority_next_free)
        else:
            start = max(now, bank.next_free, channel.next_free)

        if bank.open_row == row:
            self.row_hits += 1
            access_mem_cycles = t.t_cl if not is_write else t.t_cl + t.t_wl
        else:
            self.row_misses += 1
            # Respect the minimum activate-to-activate spacing (tRC) within
            # the request's own priority class.
            reference = (
                bank.last_priority_activate if priority else bank.last_activate
            )
            start = max(start, reference + self._core_cycles(t.t_rc))
            bank.last_activate = max(bank.last_activate, start)
            if priority:
                bank.last_priority_activate = max(
                    bank.last_priority_activate, start
                )
            bank.open_row = row
            if self._obs.enabled:
                self._obs.emit(
                    DramRowActivateEvent(
                        cycle=start, sm_id=-1, channel=ch_idx, bank=bank_no,
                        row=row,
                    )
                )
            access_mem_cycles = t.t_rp + t.t_rcd + t.t_cl
            if is_write:
                access_mem_cycles += t.t_wl

        burst_mem_cycles = max(
            t.t_ccd, self.line_bytes // self.BURST_BYTES_PER_MEM_CYCLE
        )
        done = start + self._core_cycles(access_mem_cycles + burst_mem_cycles)
        bank_busy_until = start + self._core_cycles(
            access_mem_cycles + burst_mem_cycles + (t.t_wr if is_write else 0)
        )
        channel_busy_until = start + self._core_cycles(burst_mem_cycles)
        bank.next_free = max(bank.next_free, bank_busy_until)
        channel.next_free = max(channel.next_free, channel_busy_until)
        if priority:
            bank.priority_next_free = max(bank.priority_next_free, bank_busy_until)
            channel.priority_next_free = max(
                channel.priority_next_free, channel_busy_until
            )
        self.reads += 0 if is_write else 1
        if self._faults is not None:
            # Chaos dram.latency_spike on the returned completion only; the
            # bank/channel horizons keep their fault-free schedule.
            done += self._faults.delay("dram.latency_spike", now)
        return done

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
