"""Kernel-trace validation.

External traces (hand-written or converted via :mod:`repro.gpusim.traceio`)
can violate assumptions the simulator relies on; :func:`validate_kernel`
checks them up front and reports every problem found instead of failing
deep inside a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .trace import KernelTrace, Op


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a trace."""

    severity: str  # "error" | "warning"
    location: str
    message: str

    def __str__(self) -> str:
        return "[%s] %s: %s" % (self.severity, self.location, self.message)


def validate_kernel(
    kernel: KernelTrace, max_addr: int = 1 << 48
) -> List[ValidationIssue]:
    """Check a kernel trace; returns all issues (empty list == valid).

    Errors make a run incorrect (duplicate warp ids, absurd addresses);
    warnings flag suspicious-but-legal structure (empty warps, CTAs with no
    loads, barrier-deadlock candidates).
    """
    issues: List[ValidationIssue] = []

    if not kernel.ctas:
        issues.append(ValidationIssue("error", kernel.name, "kernel has no CTAs"))
        return issues

    seen_warp_ids = set()
    seen_cta_ids = set()
    for cta in kernel.ctas:
        where = "%s/cta%d" % (kernel.name, cta.cta_id)
        if cta.cta_id in seen_cta_ids:
            issues.append(
                ValidationIssue("error", where, "duplicate CTA id %d" % cta.cta_id)
            )
        seen_cta_ids.add(cta.cta_id)
        if not cta.warps:
            issues.append(ValidationIssue("warning", where, "CTA has no warps"))

        barrier_counts = set()
        for warp in cta.warps:
            warp_where = "%s/warp%d" % (where, warp.warp_id)
            if warp.warp_id in seen_warp_ids:
                issues.append(
                    ValidationIssue(
                        "error", warp_where,
                        "duplicate warp id %d" % warp.warp_id,
                    )
                )
            seen_warp_ids.add(warp.warp_id)
            if not warp.instrs:
                issues.append(
                    ValidationIssue("warning", warp_where, "warp has no instructions")
                )

            barriers = 0
            for idx, instr in enumerate(warp.instrs):
                instr_where = "%s/i%d" % (warp_where, idx)
                if instr.is_mem:
                    if instr.base_addr >= max_addr:
                        issues.append(
                            ValidationIssue(
                                "error", instr_where,
                                "address %#x beyond %#x" % (instr.base_addr, max_addr),
                            )
                        )
                    if instr.size_bytes < 1:
                        issues.append(
                            ValidationIssue(
                                "error", instr_where, "non-positive access size"
                            )
                        )
                if instr.op is Op.BARRIER:
                    barriers += 1
            barrier_counts.add(barriers)

        if len(barrier_counts) > 1:
            issues.append(
                ValidationIssue(
                    "error", where,
                    "warps execute different barrier counts %s - the CTA "
                    "would deadlock" % sorted(barrier_counts),
                )
            )

        if all(not i.is_mem for w in cta.warps for i in w.instrs):
            issues.append(
                ValidationIssue("warning", where, "CTA performs no memory accesses")
            )

    return issues


def assert_valid(kernel: KernelTrace) -> None:
    """Raise ``ValueError`` listing every *error*-severity issue."""
    errors = [i for i in validate_kernel(kernel) if i.severity == "error"]
    if errors:
        raise ValueError(
            "invalid kernel trace:\n" + "\n".join(str(e) for e in errors)
        )
