"""Energy model (AccelWattch substitute).

Energy = static power x runtime + per-event dynamic energies.  The per-event
costs are representative Volta-class numbers; the prefetcher's own costs come
straight from the paper's §5.5 (6.4 pJ per table access, 6 mW static per SM).
Because the paper's energy win comes from shorter runtime and fewer replayed
L1 accesses, relative energy between mechanisms is faithful even though the
absolute joules are approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .config import GPUConfig
from .stats import SimStats


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies (picojoules) and static power (watts)."""

    issue_pj: float = 20.0
    l1_access_pj: float = 30.0
    l2_access_pj: float = 120.0
    dram_access_pj: float = 2_000.0
    icnt_byte_pj: float = 1.5
    prefetch_table_pj: float = 6.4  # paper §5.5
    static_w_per_sm: float = 1.2
    prefetcher_static_w_per_sm: float = 0.006  # paper §5.5 (6 mW)
    core_clock_hz: float = 1.53e9

    @classmethod
    def for_config(cls, config: GPUConfig) -> "EnergyParams":
        """Parameters whose static-power runtime conversion uses the
        configured core clock (Table 1's 1530 MHz by default, so the
        figures are unchanged unless the clock is actually swept)."""
        return replace(cls(), core_clock_hz=config.core_clock_mhz * 1e6)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component for one simulated kernel."""

    static_j: float
    core_j: float
    l1_j: float
    l2_j: float
    dram_j: float
    icnt_j: float
    prefetcher_j: float

    @property
    def total_j(self) -> float:
        return (
            self.static_j
            + self.core_j
            + self.l1_j
            + self.l2_j
            + self.dram_j
            + self.icnt_j
            + self.prefetcher_j
        )


def energy_of(
    stats: SimStats,
    num_sms: int,
    params: EnergyParams = EnergyParams(),
    prefetcher_present: bool = False,
) -> EnergyBreakdown:
    """Compute the energy of a finished run from its statistics."""
    runtime_s = stats.cycles / params.core_clock_hz
    static_w = params.static_w_per_sm * num_sms
    if prefetcher_present:
        static_w += params.prefetcher_static_w_per_sm * num_sms

    l1_events = stats.total_l1_accesses + stats.prefetch.issued
    pj = 1e-12
    return EnergyBreakdown(
        static_j=static_w * runtime_s,
        core_j=stats.instructions * params.issue_pj * pj,
        l1_j=l1_events * params.l1_access_pj * pj,
        l2_j=(stats.l2_hits + stats.l2_misses) * params.l2_access_pj * pj,
        dram_j=stats.dram_reads * params.dram_access_pj * pj,
        icnt_j=stats.icnt_bytes * params.icnt_byte_pj * pj,
        prefetcher_j=(
            stats.prefetch.table_accesses * params.prefetch_table_pj * pj
            if prefetcher_present
            else 0.0
        ),
    )
