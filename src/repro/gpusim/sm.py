"""Streaming Multiprocessor timing model.

The SM is event-driven: each warp carries a ``ready_at`` timestamp, the issue
loop issues up to ``issue_width`` instructions per cycle from ready warps and
fast-forwards over periods where every warp is stalled, classifying those
skipped cycles as memory or pipeline stalls (Fig 5's metric).

Loads are coalesced into line transactions against the unified L1
(:mod:`repro.gpusim.unified_cache`); a reservation fail leaves the warp to
replay the remaining transactions, exactly the retry behaviour §2 describes.
Every first issue of a load also feeds the attached prefetcher, whose
predictions enter the L1's prefetch path under the throttle's control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol, Tuple

from collections import deque
from heapq import heappop, heappush

from repro.obs.events import (
    BusLike,
    CacheAccessEvent,
    NULL_BUS,
    PrefetchIssueEvent,
    ThrottleEvent,
)
from repro.prefetch.base import AccessEvent, Prefetcher, PrefetchRequest

from .coalescer import coalesce, coalesce_lines, coalesce_sectors
from .config import GPUConfig
from .faults import FaultInjector
from .interconnect import Interconnect
from .l2 import L2Cache
from .scheduler import make_scheduler
from .stats import SimStats
from .trace import CTA, Op, WarpInstr, WarpTrace
from .unified_cache import L1Outcome, StorageMode, UnifiedL1Cache


@dataclass(slots=True)
class WarpState:
    """Execution state of one resident warp."""

    warp_id: int
    cta_id: int
    trace: WarpTrace
    ip: int = 0
    ready_at: int = 0
    finished: bool = False
    waiting_on_memory: bool = False
    at_barrier: bool = False
    # Lines of a partially-issued memory instruction awaiting replay.
    replay_lines: List[int] = field(default_factory=list)
    replay_ready: int = 0
    # Per-line sector masks of the in-flight instruction (sectored L1 only).
    sector_masks: Dict[int, int] = field(default_factory=dict)

    @property
    def current_instr(self) -> Optional[WarpInstr]:
        if self.ip < len(self.trace.instrs):
            return self.trace.instrs[self.ip]
        return None


class ThrottlePolicy(Protocol):
    """What the SM needs from a prefetch throttle (structural — satisfied
    by :class:`repro.core.throttle.Throttle` and ``NullThrottle`` without
    either importing this module)."""

    def allow(
        self, now: int, l1: UnifiedL1Cache, utilization: float
    ) -> bool: ...

    def chain_depth_limit(self, utilization: float, max_depth: int) -> int: ...

    def snapshot(self) -> dict: ...


class SM:
    """One streaming multiprocessor plus its private memory front end."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        l2: L2Cache,
        prefetcher: Prefetcher,
        throttle: ThrottlePolicy,
        storage_mode: StorageMode = StorageMode.COUPLED,
        obs: Optional[BusLike] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.sm_id = sm_id
        self.config = config
        self.stats = SimStats()
        self.obs = obs if obs is not None else NULL_BUS
        self._faults = faults  # optional chaos hook (snake.tail_corrupt)
        self.icnt_req = Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency)
        self.icnt_resp = Interconnect(config.icnt_bytes_per_cycle, config.icnt_latency)
        self.l1 = UnifiedL1Cache(
            config, self.icnt_req, self.icnt_resp, l2, self.stats,
            mode=storage_mode, obs=self.obs, sm_id=sm_id, faults=faults,
        )
        self.prefetcher = prefetcher
        # Whether the prefetcher accepts a dynamic chain-depth cap; probed
        # once here instead of per observed access.
        self._pf_has_depth_limit = hasattr(prefetcher, "set_depth_limit")
        # Raw-pair observe lane (Snake): returns (base_addr, depth) tuples
        # so the batched issue path skips PrefetchRequest boxing entirely.
        self._pf_observe_raw = getattr(prefetcher, "observe_raw", None)
        # A mechanism that never predicts ("none" baseline keeps the base
        # class observe) makes the whole prefetcher hook a no-op, so loads
        # skip building AccessEvents entirely — unless a fault injector is
        # armed, whose corrupt-tail RNG draws must keep their per-load
        # cadence.
        self._pf_skip = (
            type(prefetcher).observe is Prefetcher.observe
            and not prefetcher.uses_magic
            and faults is None
        )
        # Batched prefetch issue (docs/PERFORMANCE.md): hand the L1 each
        # request's line vector in one call.  Scalar fallback when disabled
        # by config (differential oracle) or when telemetry is on — the
        # scalar path interleaves PrefetchIssueEvents with L1 drop events
        # line by line, and event order is part of the parity contract.
        self._batched_issue = config.batched_issue
        self.throttle = throttle
        self.scheduler = make_scheduler(config.scheduler)
        # Each scheduler issues at most one instruction per cycle, so the
        # per-cycle issue bandwidth is capped by whichever is smaller.
        self._issue_width = min(config.issue_width, config.schedulers_per_sm)
        # Hot-path config reads hoisted once (issue loop runs per cycle).
        self._alu_latency = config.alu_latency
        self._sfu_latency = config.sfu_latency
        self._sector_bytes = config.l1_sector_bytes

        self._cta_queue: Deque[CTA] = deque()
        self._cta_app: Dict[int, int] = {}
        self._warps: List[WarpState] = []
        self._barrier_waits: Dict[int, int] = {}
        self._cta_live_warps: Dict[int, int] = {}
        # Event-core bookkeeping (docs/PERFORMANCE.md).  ``_live`` mirrors
        # ``sum(1 for w in _warps if not w.finished)``.
        self._live = 0
        # Wake heap (event core): every unfinished, non-parked warp sits in
        # the heap exactly once, keyed by (ready_at, push order).  A warp's
        # ``ready_at`` only moves while it is *out* of the heap (it is
        # popped before issuing, re-pushed after; barrier parking removes
        # it, release re-adds it), so entries are never stale and the head
        # is an exact next-wakeup horizon — no per-quantum scan of all
        # resident warps.  The reference :meth:`step` keeps its scans.
        self._wake: List[Tuple[int, int, WarpState]] = []
        self._wake_seq = 0
        # Count of unfinished, non-parked warps with ``waiting_on_memory``
        # False: the stall-classification predicate ``all(w.waiting_on_memory
        # for w in runnable)`` is exactly ``_active_non_mem == 0`` whenever
        # the ready set is empty.  Maintained at every flag transition.
        self._active_non_mem = 0
        self.now = 0

    # ------------------------------------------------------------------
    # CTA management

    def enqueue_cta(self, cta: CTA, app_id: int = 0) -> None:
        self._cta_queue.append(cta)
        self._cta_app[cta.cta_id] = app_id

    def _activate_ctas(self) -> None:
        """Bring queued CTAs on-core while warp slots remain."""
        while self._cta_queue:
            cta = self._cta_queue[0]
            if self._live + len(cta.warps) > self.config.max_warps_per_sm:
                break
            self._cta_queue.popleft()
            self._cta_live_warps[cta.cta_id] = len(cta.warps)
            self._live += len(cta.warps)
            for trace in cta.warps:
                warp = WarpState(
                    warp_id=trace.warp_id,
                    cta_id=cta.cta_id,
                    trace=trace,
                    ready_at=self.now,
                )
                self._warps.append(warp)
                self._active_non_mem += 1
                seq = self._wake_seq
                self._wake_seq = seq + 1
                heappush(self._wake, (warp.ready_at, seq, warp))

    # ------------------------------------------------------------------
    # Main loop

    def start(self) -> None:
        """Activate the first CTAs; call before stepping."""
        self._activate_ctas()

    def step(self) -> bool:
        """Advance this SM by one quantum — either one issue cycle or a jump
        to the next warp-ready event.  Returns False once all work retired.

        The GPU interleaves ``step()`` across SMs in global-time order so
        that accesses to the *shared* L2/DRAM resources happen in (roughly)
        chronological order — simulating SMs to completion one after another
        would make a later SM's early requests queue behind the entire
        lifetime of traffic from earlier SMs.
        """
        runnable = [
            w for w in self._warps if not w.finished and not w.at_barrier
        ]
        if not runnable:
            if self._cta_queue:
                self._activate_ctas()
                return True
            return False

        ready = [w for w in runnable if w.ready_at <= self.now]
        if not ready:
            next_time = min(w.ready_at for w in runnable)
            gap = next_time - self.now
            self.stats.stall_cycles_total += gap
            if all(w.waiting_on_memory for w in runnable):
                self.stats.stall_cycles_memory += gap
            self.now = next_time
            return True

        issued = 0
        while issued < self._issue_width:
            ready = [
                w
                for w in self._warps
                if not w.finished
                and not w.at_barrier
                and w.ready_at <= self.now
            ]
            if not ready:
                break
            warp = self.scheduler.pick(ready)
            self._issue(warp)
            self.scheduler.note_issued(warp)
            issued += 1
        self.now += 1
        return True

    def step_event(self) -> Optional[int]:
        """Event-core step: one quantum with the same semantics as
        :meth:`step`, returning the SM's next-event horizon (the earliest
        cycle it can make further progress) or None once all work retired.

        Differences from the reference loop are purely structural — the
        ready set comes off the wake heap instead of a scan over every
        resident warp (the heap invariant is documented at ``_wake``), and
        the schedulers are ready-*set* functions, never ready-*order*
        functions, so heap pop order cannot perturb a pick.  Statistics
        must be cycle-identical to :meth:`step`;
        ``tests/gpusim/test_skip_ahead.py`` enforces this differentially.
        """
        now = self.now
        wake = self._wake
        ready: List[WarpState] = []
        while wake and wake[0][0] <= now:
            w = heappop(wake)[2]
            if not w.finished and not w.at_barrier:
                ready.append(w)
        if not ready:
            if not wake:
                # No unfinished, non-parked warp exists (parked warps always
                # have a runnable sibling holding the barrier open).
                if self._cta_queue:
                    self._activate_ctas()
                    return self.now
                return None
            next_time = wake[0][0]
            gap = next_time - now
            self.stats.stall_cycles_total += gap
            if self._active_non_mem == 0:
                self.stats.stall_cycles_memory += gap
            self.now = next_time
            return next_time

        issued = 0
        while issued < self._issue_width and ready:
            warp = self.scheduler.pick(ready)
            self._issue(warp)
            self.scheduler.note_issued(warp)
            issued += 1
            for idx, w in enumerate(ready):  # remove by identity, not __eq__
                if w is warp:
                    del ready[idx]
                    break
            # CTAs activated by a retirement push warps with ready_at ==
            # now: drain them into this quantum's ready set (the reference
            # rescan would also pick them up) *before* re-parking the
            # issued warp, which must not re-enter the set this quantum.
            while wake and wake[0][0] <= now:
                w = heappop(wake)[2]
                if not w.finished and not w.at_barrier:
                    ready.append(w)
            if not warp.finished and not warp.at_barrier:
                seq = self._wake_seq
                self._wake_seq = seq + 1
                heappush(wake, (warp.ready_at, seq, warp))
        for w in ready:  # leftovers stay ready for the next quantum
            seq = self._wake_seq
            self._wake_seq = seq + 1
            heappush(wake, (w.ready_at, seq, w))
        self.now = now + 1
        return self.now

    def finalize(self) -> SimStats:
        """Close out the statistics after the last step."""
        self.stats.cycles = self.now
        self.stats.icnt_peak_bytes = (
            self.icnt_req.peak_bytes(self.now) + self.icnt_resp.peak_bytes(self.now)
        )
        self.stats.prefetch.table_accesses = self.prefetcher.table_accesses()
        return self.stats

    def run(self) -> SimStats:
        """Single-SM convenience: step to completion."""
        self.start()
        while self.step():
            pass
        return self.finalize()

    # ------------------------------------------------------------------
    # Instruction issue

    def _issue(self, warp: WarpState) -> None:
        if warp.replay_lines:
            self._issue_mem_lines(warp, warp.replay_lines, is_load=True, replay=True)
            return

        instr = warp.current_instr
        if instr is None:
            self._finish_warp(warp)
            return

        if instr.op is Op.ALU:
            warp.ready_at = self.now + self._alu_latency
            if warp.waiting_on_memory:
                warp.waiting_on_memory = False
                self._active_non_mem += 1
            self._complete(warp)
        elif instr.op is Op.SFU:
            warp.ready_at = self.now + self._sfu_latency
            if warp.waiting_on_memory:
                warp.waiting_on_memory = False
                self._active_non_mem += 1
            self._complete(warp)
        elif instr.op is Op.BARRIER:
            self._arrive_barrier(warp)
        elif instr.op is Op.LOAD:
            self._issue_load(warp, instr)
        elif instr.op is Op.STORE:
            self._issue_store(warp, instr)
        else:  # pragma: no cover - exhaustive over Op
            raise ValueError("unknown op %r" % instr.op)

    def _complete(self, warp: WarpState) -> None:
        warp.ip += 1
        self.stats.instructions += 1
        if warp.ip >= len(warp.trace.instrs):
            self._finish_warp(warp)

    def _finish_warp(self, warp: WarpState) -> None:
        if warp.finished:
            return
        warp.finished = True
        if not warp.waiting_on_memory:
            self._active_non_mem -= 1
        self._live -= 1
        self.stats.warps_finished += 1
        cta = warp.cta_id
        self._cta_live_warps[cta] -= 1
        if self._cta_live_warps[cta] == 0:
            self._activate_ctas()

    # ------------------------------------------------------------------
    # Memory instructions

    def _issue_load(self, warp: WarpState, instr: WarpInstr) -> None:
        if self._sector_bytes:
            masks = coalesce_sectors(
                instr, self.config.warp_size, self.l1.line_bytes,
                self._sector_bytes,
            )
            lines = list(masks)
            warp.sector_masks = masks
        else:
            lines = coalesce(instr, self.config.warp_size, self.l1.line_bytes)
            warp.sector_masks = {}
        if not self._pf_skip:
            self._feed_prefetcher(warp, instr, lines[0])
        self._issue_mem_lines(warp, lines, is_load=True, replay=False)

    def _issue_mem_lines(
        self, warp: WarpState, lines: List[int], is_load: bool, replay: bool
    ) -> None:
        ready = self.now
        remaining: List[int] = []
        failed = False
        observing = self.obs.enabled
        for idx, line in enumerate(lines):
            if failed:
                remaining.append(line)
                continue
            if observing:
                prefetch_stats = self.stats.prefetch
                covered_before = prefetch_stats.demand_covered
                timely_before = prefetch_stats.demand_timely
            outcome, when = self.l1.demand_load(
                line, self.now, sector_mask=warp.sector_masks.get(line, -1)
            )
            if observing:
                instr = warp.current_instr
                self.obs.emit(
                    CacheAccessEvent(
                        cycle=self.now,
                        sm_id=self.sm_id,
                        warp_id=warp.warp_id,
                        pc=instr.pc if instr is not None else -1,
                        line_addr=line,
                        outcome=outcome.value,
                        covered=prefetch_stats.demand_covered > covered_before,
                        timely=prefetch_stats.demand_timely > timely_before,
                    )
                )
            if outcome is L1Outcome.RESERVATION_FAIL:
                failed = True
                remaining.append(line)
                warp.ready_at = when
            else:
                ready = max(ready, when)
        if not warp.waiting_on_memory:
            warp.waiting_on_memory = True
            self._active_non_mem -= 1
        if failed:
            warp.replay_lines = remaining
            warp.replay_ready = max(ready, warp.ready_at)
            return
        # All transactions accepted: the instruction completes when the last
        # fill arrives (and no earlier than any prior replayed portion).
        warp.replay_lines = []
        warp.ready_at = max(ready, warp.replay_ready)
        warp.replay_ready = 0
        self._complete(warp)

    def _issue_store(self, warp: WarpState, instr: WarpInstr) -> None:
        lines = coalesce(instr, self.config.warp_size, self.l1.line_bytes)
        done = self.now
        for line in lines:
            done = max(done, self.l1.demand_store(line, self.now))
        warp.ready_at = done
        if warp.waiting_on_memory:
            warp.waiting_on_memory = False
            self._active_non_mem += 1
        self._complete(warp)

    # ------------------------------------------------------------------
    # Prefetcher hook

    def _feed_prefetcher(
        self, warp: WarpState, instr: WarpInstr, line_addr: int
    ) -> None:
        event = AccessEvent(
            warp_id=warp.warp_id,
            cta_id=warp.cta_id,
            pc=instr.pc,
            base_addr=instr.base_addr,
            line_addr=line_addr,
            now=self.now,
            thread_stride=instr.thread_stride,
            divergent=instr.divergent,
            app_id=self._cta_app.get(warp.cta_id, 0),
        )
        if self._pf_has_depth_limit:
            utilization = 0.5 * (
                self.icnt_req.measured_utilization(self.now)
                + self.icnt_resp.measured_utilization(self.now)
            )
            self.prefetcher.set_depth_limit(
                self.throttle.chain_depth_limit(
                    utilization, self.config.max_chain_depth
                )
            )
        if self._faults is not None:
            # Chaos snake.tail_corrupt: scramble a chain link right before
            # the tables are consulted — predictions may go wrong, demand
            # correctness cannot.
            self._faults.corrupt_tail(self.prefetcher, self.now, self.sm_id)
        if (
            self._batched_issue
            and not self.obs.enabled
            and not self.prefetcher.uses_magic
        ):
            observe_raw = self._pf_observe_raw
            if observe_raw is not None:
                pairs = observe_raw(event)
                if not pairs:
                    return
                self.l1.prefetcher_trained = self.prefetcher.trained
                self._issue_prefetch_batch(pairs, instr)
                return
            requests = self.prefetcher.observe(event)
            if not requests:
                return
            self.l1.prefetcher_trained = self.prefetcher.trained
            self._issue_prefetch_batch(
                [(r.base_addr, r.depth) for r in requests], instr
            )
            return
        requests = self.prefetcher.observe(event)
        if not requests:
            return
        self.l1.prefetcher_trained = self.prefetcher.trained
        for request in requests:
            self._issue_prefetch(request, instr)

    def _issue_prefetch(self, request: PrefetchRequest, instr: WarpInstr) -> None:
        if self.prefetcher.uses_magic:
            for line in coalesce_lines(
                request.base_addr, instr.thread_stride, instr.size_bytes,
                self.config.warp_size, self.l1.line_bytes,
            ):
                self.l1.magic_prefetch(line)
            return
        # The paper's trigger metric is total NoC utilization (the Fig 4
        # measure): both directions against both directions' peak.
        utilization = 0.5 * (
            self.icnt_req.measured_utilization(self.now)
            + self.icnt_resp.measured_utilization(self.now)
        )
        if not self.throttle.allow(self.now, self.l1, utilization):
            self.stats.prefetch.dropped_throttled += 1
            if self.obs.enabled:
                reason = (
                    "bandwidth" if getattr(self.throttle, "bw_halted", False)
                    else "space"
                )
                self.obs.emit(
                    ThrottleEvent(
                        cycle=self.now, sm_id=self.sm_id, reason=reason,
                        utilization=utilization,
                    )
                )
            return
        # The table search pipeline adds a couple of cycles before the
        # request can leave the prefetcher (§5.5 reports 2 cycles).
        issue_at = self.now + self.config.prefetcher_latency
        for line in coalesce_lines(
            request.base_addr, instr.thread_stride, instr.size_bytes,
            self.config.warp_size, self.l1.line_bytes,
        ):
            sent = self.l1.prefetch(line, issue_at)
            if sent and self.obs.enabled:
                self.obs.emit(
                    PrefetchIssueEvent(
                        cycle=issue_at, sm_id=self.sm_id, pc=instr.pc,
                        line_addr=line, depth=request.depth,
                    )
                )

    def _issue_prefetch_batch(
        self, requests: List[Tuple[int, int]], instr: WarpInstr
    ) -> None:
        """Issue one trigger's whole candidate vector (``config.batched_issue``)
        given raw ``(base_addr, depth)`` pairs.

        Coalesces every request up front and hands the L1 the full
        per-trigger vector-of-vectors in one
        :meth:`UnifiedL1Cache.prefetch_trigger` call; the throttle still
        votes per request inside (memoized — see there).  Statistics are
        identical to the scalar loop (the retained oracle), pinned by
        property tests; telemetry runs take the scalar path so event
        interleaving is byte-stable.
        """
        now = self.now
        stride = instr.thread_stride
        size_bytes = instr.size_bytes
        warp_size = self.config.warp_size
        line_bytes = self.l1.line_bytes
        self.l1.prefetch_trigger(
            [
                coalesce_lines(
                    base_addr, stride, size_bytes, warp_size, line_bytes
                )
                for base_addr, _depth in requests
            ],
            now,
            now + self.config.prefetcher_latency,
            self.throttle,
        )

    # ------------------------------------------------------------------
    # Barriers

    def _arrive_barrier(self, warp: WarpState) -> None:
        cta = warp.cta_id
        waiting = self._barrier_waits.get(cta, 0) + 1
        live = self._cta_live_warps[cta]
        if waiting >= live:
            # Last arrival releases everyone.
            self._barrier_waits[cta] = 0
            for other in self._warps:
                if other.cta_id == cta and other.at_barrier:
                    other.at_barrier = False
                    # Parked warps always have waiting_on_memory False (set
                    # at arrival), so re-joining the active set re-counts
                    # them on the non-memory side.
                    self._active_non_mem += 1
                    other.ready_at = self.now + 1
                    self._complete(other)
                    if not other.finished:
                        seq = self._wake_seq
                        self._wake_seq = seq + 1
                        heappush(self._wake, (other.ready_at, seq, other))
            self._complete(warp)
            warp.ready_at = self.now + 1
        else:
            self._barrier_waits[cta] = waiting
            warp.at_barrier = True
            # Parking removes the warp from the active set (and from the
            # wake heap: the issue loop never re-pushes a parked warp).
            if warp.waiting_on_memory:
                warp.waiting_on_memory = False
            else:
                self._active_non_mem -= 1
