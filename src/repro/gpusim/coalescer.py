"""Memory-access coalescer.

GPUs merge the 32 per-thread addresses of a warp memory instruction into the
minimal set of cache-line transactions.  Because traces encode a warp access
as ``(base_addr, thread_stride, size)`` the coalescer is a small piece of
arithmetic rather than a 32-way sort.
"""

from __future__ import annotations

from typing import List

from .trace import WarpInstr


def line_of(addr: int, line_bytes: int) -> int:
    """The line-aligned address containing ``addr``."""
    return addr - (addr % line_bytes)


def coalesce(
    instr: WarpInstr, warp_size: int, line_bytes: int
) -> List[int]:
    """Expand a warp memory instruction into unique, ordered line addresses.

    A zero thread-stride (all threads hit the same word, e.g. a broadcast
    load) coalesces to a single line; a unit stride over 4-byte words touches
    one line per 32 threads; scattered strides touch up to ``warp_size``
    lines.
    """
    if not instr.is_mem:
        raise ValueError("cannot coalesce non-memory instruction %r" % (instr,))
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")

    if instr.thread_stride == 0:
        # Broadcast: every thread reads the same [base, base+size) window.
        first = line_of(instr.base_addr, line_bytes)
        last = line_of(instr.base_addr + instr.size_bytes - 1, line_bytes)
        return list(range(first, last + 1, line_bytes))

    lines: List[int] = []
    seen = set()
    for t in range(warp_size):
        start = instr.base_addr + t * instr.thread_stride
        for offset in range(0, instr.size_bytes, line_bytes):
            line = line_of(start + offset, line_bytes)
            if line not in seen:
                seen.add(line)
                lines.append(line)
        # include the final byte's line for accesses spanning a boundary
        end_line = line_of(start + instr.size_bytes - 1, line_bytes)
        if end_line not in seen:
            seen.add(end_line)
            lines.append(end_line)
    return lines


def num_transactions(instr: WarpInstr, warp_size: int, line_bytes: int) -> int:
    """Number of line transactions the instruction generates."""
    return len(coalesce(instr, warp_size, line_bytes))


def coalesce_sectors(
    instr: WarpInstr, warp_size: int, line_bytes: int, sector_bytes: int
) -> "dict[int, int]":
    """Like :func:`coalesce`, but returns {line address: sector bitmask} —
    which ``sector_bytes``-sized chunks of each line the warp touches."""
    if sector_bytes <= 0 or line_bytes % sector_bytes != 0:
        raise ValueError("sector_bytes must divide line_bytes")
    masks: "dict[int, int]" = {}

    def touch(addr: int) -> None:
        line = line_of(addr, line_bytes)
        sector = (addr - line) // sector_bytes
        masks[line] = masks.get(line, 0) | (1 << sector)

    threads = 1 if instr.thread_stride == 0 else warp_size
    for t in range(threads):
        start = instr.base_addr + t * instr.thread_stride
        addr = start
        while addr < start + instr.size_bytes:
            touch(addr)
            addr += sector_bytes
        touch(start + instr.size_bytes - 1)
    return masks
