"""Memory-access coalescer.

GPUs merge the 32 per-thread addresses of a warp memory instruction into the
minimal set of cache-line transactions.  Because traces encode a warp access
as ``(base_addr, thread_stride, size)`` the coalescer is a small piece of
arithmetic rather than a 32-way sort.

Coalescing is translation-invariant: ``line_of(x + k*L) == line_of(x) + k*L``
for any integer ``k``, so the *shape* of the transaction list depends only on
``base_addr % line_bytes`` plus the stride/size, never on the absolute base.
The expansion is therefore computed once per shape (a key space of at most
``line_bytes`` offsets times the handful of stride/size pairs a trace uses)
and replayed by adding the line-aligned base back — this is the hottest
per-instruction path in the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .trace import WarpInstr


def line_of(addr: int, line_bytes: int) -> int:
    """The line-aligned address containing ``addr``."""
    return addr - (addr % line_bytes)


# shape key (base % L, stride, size, warp_size, L) -> line offsets from the
# aligned base.  Bounded by the trace's distinct access shapes, not its
# address footprint.
_PATTERN_MEMO: Dict[Tuple[int, int, int, int, int], List[int]] = {}

# Same memoization for the sectored variant: shape key plus sector size maps
# to (line offset -> sector bitmask).
_SECTOR_MEMO: Dict[Tuple[int, int, int, int, int, int], Dict[int, int]] = {}


def _expand_pattern(
    rem: int, stride: int, size_bytes: int, warp_size: int, line_bytes: int
) -> List[int]:
    """Line offsets (relative to the aligned base) of one access shape."""
    if stride > 0:
        # Monotonic fast path.  Each thread touches the contiguous line
        # range [line_of(start), line_of(start + size - 1)] and successive
        # threads start no earlier, so the first-seen emission order of the
        # generic scan below is simply ascending line order.
        if size_bytes <= line_bytes:
            # Each thread touches at most two lines: vectorize the
            # per-thread first/last lines and dedupe in one sorted pass.
            starts = rem + np.arange(warp_size) * stride
            firsts = starts - starts % line_bytes
            ends = starts + (size_bytes - 1)
            ends -= ends % line_bytes
            merged = np.unique(np.concatenate((firsts, ends)))
            return merged.tolist()
        # Wide accesses: merge the per-thread contiguous ranges in order.
        lines: List[int] = []
        last: Optional[int] = None
        for t in range(warp_size):
            start = rem + t * stride
            first = line_of(start, line_bytes)
            end = line_of(start + size_bytes - 1, line_bytes)
            if last is not None and first <= last:
                first = last + line_bytes
            if first <= end:
                lines.extend(range(first, end + line_bytes, line_bytes))
                last = end
        return lines

    # Negative strides break the monotone-emission argument; keep the
    # generic first-seen scan (order matters downstream).
    fallback: List[int] = []
    seen = set()
    for t in range(warp_size):
        start = rem + t * stride
        for offset in range(0, size_bytes, line_bytes):
            line = line_of(start + offset, line_bytes)
            if line not in seen:
                seen.add(line)
                fallback.append(line)
        # include the final byte's line for accesses spanning a boundary
        end_line = line_of(start + size_bytes - 1, line_bytes)
        if end_line not in seen:
            seen.add(end_line)
            fallback.append(end_line)
    return fallback


def coalesce_lines(
    base: int, stride: int, size_bytes: int, warp_size: int, line_bytes: int
) -> List[int]:
    """Raw-argument form of :func:`coalesce` — the hot path for prefetch
    footprints, which would otherwise construct a throwaway
    :class:`WarpInstr` per predicted address."""
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    if base < 0:
        raise ValueError("memory instruction needs a non-negative address")

    if stride == 0:
        # Broadcast: every thread reads the same [base, base+size) window.
        first = line_of(base, line_bytes)
        last = line_of(base + size_bytes - 1, line_bytes)
        return list(range(first, last + 1, line_bytes))

    rem = base % line_bytes
    key = (rem, stride, size_bytes, warp_size, line_bytes)
    pattern = _PATTERN_MEMO.get(key)
    if pattern is None:
        pattern = _expand_pattern(rem, stride, size_bytes, warp_size, line_bytes)
        _PATTERN_MEMO[key] = pattern
    shift = base - rem
    return [shift + off for off in pattern]


def coalesce(
    instr: WarpInstr, warp_size: int, line_bytes: int
) -> List[int]:
    """Expand a warp memory instruction into unique, ordered line addresses.

    A zero thread-stride (all threads hit the same word, e.g. a broadcast
    load) coalesces to a single line; a unit stride over 4-byte words touches
    one line per 32 threads; scattered strides touch up to ``warp_size``
    lines.
    """
    if not instr.is_mem:
        raise ValueError("cannot coalesce non-memory instruction %r" % (instr,))
    return coalesce_lines(
        instr.base_addr, instr.thread_stride, instr.size_bytes,
        warp_size, line_bytes,
    )


def num_transactions(instr: WarpInstr, warp_size: int, line_bytes: int) -> int:
    """Number of line transactions the instruction generates."""
    return len(coalesce(instr, warp_size, line_bytes))


def _expand_sectors(
    rem: int, stride: int, size_bytes: int, warp_size: int,
    line_bytes: int, sector_bytes: int,
) -> Dict[int, int]:
    masks: Dict[int, int] = {}

    def touch(addr: int) -> None:
        line = line_of(addr, line_bytes)
        sector = (addr - line) // sector_bytes
        masks[line] = masks.get(line, 0) | (1 << sector)

    threads = 1 if stride == 0 else warp_size
    for t in range(threads):
        start = rem + t * stride
        addr = start
        while addr < start + size_bytes:
            touch(addr)
            addr += sector_bytes
        touch(start + size_bytes - 1)
    return masks


def coalesce_sectors(
    instr: WarpInstr, warp_size: int, line_bytes: int, sector_bytes: int
) -> "dict[int, int]":
    """Like :func:`coalesce`, but returns {line address: sector bitmask} —
    which ``sector_bytes``-sized chunks of each line the warp touches."""
    if sector_bytes <= 0 or line_bytes % sector_bytes != 0:
        raise ValueError("sector_bytes must divide line_bytes")
    base = instr.base_addr
    rem = base % line_bytes
    key = (
        rem, instr.thread_stride, instr.size_bytes, warp_size,
        line_bytes, sector_bytes,
    )
    pattern = _SECTOR_MEMO.get(key)
    if pattern is None:
        pattern = _expand_sectors(
            rem, instr.thread_stride, instr.size_bytes, warp_size,
            line_bytes, sector_bytes,
        )
        _SECTOR_MEMO[key] = pattern
    shift = base - rem
    return {shift + off: mask for off, mask in pattern.items()}
