"""Seeded, deterministic fault injection for the GPU timing model.

Snake's value proposition is that prefetching is *safe to be wrong*: a
mispredicted chain, a lost prefetch fill or bandwidth-triggered throttling
(§3.3) may only cost performance, never correctness.  This module makes
that claim testable.  A :class:`FaultPlan` names injection sites and
per-opportunity probabilities; a :class:`FaultInjector` (one
``random.Random`` stream seeded from the plan) decides each opportunity,
so a given (plan, workload, config) triple injects an identical fault
sequence on every run.  Every firing bumps ``injector.counts`` and emits a
:class:`repro.obs.events.FaultEvent` when a bus is attached.

Injection sites (the catalog :func:`catalog` returns, mirrored in
``docs/ROBUSTNESS.md``):

=====================  ====================================================
site                   effect
=====================  ====================================================
``icnt.delay_fill``    a prefetch fill response is delayed in the NoC
``icnt.drop_fill``     a prefetch fill packet is lost: its MSHR entry
                       retires without installing a line (demand-joined
                       fills are never dropped — the controller promotes
                       them, so demand correctness is preserved)
``l1.mshr_refuse``     forced MSHR-allocation refusal: a demand access
                       reservation-fails and replays; a prefetch is dropped
``l1.evict_storm``     every prefetched line in one random L1 set (and the
                       matching side-buffer set in isolated mode) is evicted
``l2.latency_spike``   extra service latency on one L2 access
``dram.latency_spike`` extra cycles on one DRAM access
``snake.tail_corrupt`` one Tail-table entry is corrupted in place: a stale
                       stride, a scrambled (in-field) warp vector, or a
                       spurious promotion
=====================  ====================================================

Every site is performance-only *by construction* — faults perturb timing,
predictions and prefetch storage, never demand data — and the sanitizer
(:mod:`repro.gpusim.sanitizer`) plus the ``snake-repro chaos`` command
prove it: a faulted run must finish with zero invariant violations and
the same demand-visible outcome (committed instructions, finished warps)
as the fault-free run.

All hooks are ``None``-guarded at the call sites, so a GPU built without
a plan pays one attribute test per memory operation and nothing more.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.obs.events import BusLike, FaultEvent, NULL_BUS

#: Every recognised injection site, in pipeline order.
SITES: Tuple[str, ...] = (
    "icnt.delay_fill",
    "icnt.drop_fill",
    "l1.mshr_refuse",
    "l1.evict_storm",
    "l2.latency_spike",
    "dram.latency_spike",
    "snake.tail_corrupt",
)

#: Modest per-opportunity rates for the all-sites "storm" plan.  High
#: enough that short chaos runs fire every site, low enough that the
#: simulation still terminates promptly under replay pressure.
DEFAULT_RATES: Dict[str, float] = {
    "icnt.delay_fill": 0.05,
    "icnt.drop_fill": 0.05,
    "l1.mshr_refuse": 0.02,
    "l1.evict_storm": 0.01,
    "l2.latency_spike": 0.02,
    "dram.latency_spike": 0.02,
    "snake.tail_corrupt": 0.01,
}


def catalog() -> Dict[str, str]:
    """Site -> one-line description (docs and ``chaos`` CLI output)."""
    return {
        "icnt.delay_fill": "delay a prefetch fill response in the NoC",
        "icnt.drop_fill": "drop a prefetch fill (MSHR entry retires, no line)",
        "l1.mshr_refuse": "force an MSHR allocation refusal",
        "l1.evict_storm": "evict all prefetched lines in one random set",
        "l2.latency_spike": "extra service latency on one L2 access",
        "dram.latency_spike": "extra cycles on one DRAM access",
        "snake.tail_corrupt": "corrupt one Tail-table entry in place",
    }


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: (site, probability) pairs plus magnitudes.

    ``rates`` is a sorted tuple of pairs (hashable and JSON-safe, like
    ``JobSpec.mech_kwargs``).  Build via :meth:`make` / :meth:`single` /
    :meth:`storm`, not the raw constructor.
    """

    seed: int = 0
    rates: Tuple[Tuple[str, float], ...] = ()
    delay_cycles: int = 400  # nominal magnitude for delay/spike sites

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in SITES:
                raise ValueError(
                    "unknown fault site %r (known: %s)" % (site, ", ".join(SITES))
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rate for %s must be in [0, 1]" % site)
        if self.delay_cycles < 1:
            raise ValueError("delay_cycles must be >= 1")

    @classmethod
    def make(
        cls, rates: Mapping[str, float], seed: int = 0, delay_cycles: int = 400
    ) -> "FaultPlan":
        return cls(
            seed=int(seed),
            rates=tuple(sorted(rates.items())),
            delay_cycles=int(delay_cycles),
        )

    @classmethod
    def single(cls, site: str, rate: Optional[float] = None, seed: int = 0,
               delay_cycles: int = 400) -> "FaultPlan":
        """One site only (the ``chaos`` command's per-site plans)."""
        return cls.make(
            {site: DEFAULT_RATES[site] if rate is None else rate},
            seed=seed, delay_cycles=delay_cycles,
        )

    @classmethod
    def storm(cls, seed: int = 0, delay_cycles: int = 400) -> "FaultPlan":
        """All sites at their default rates simultaneously."""
        return cls.make(DEFAULT_RATES, seed=seed, delay_cycles=delay_cycles)

    def label(self) -> str:
        sites = [s for s, r in self.rates if r > 0]
        if set(sites) == set(SITES):
            return "storm"
        return "+".join(sites) if sites else "none"

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {site: rate for site, rate in self.rates},
            "delay_cycles": self.delay_cycles,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls.make(
            data.get("rates") or {},
            seed=data.get("seed", 0),
            delay_cycles=data.get("delay_cycles", 400),
        )


class FaultInjector:
    """The per-run decision engine: one seeded RNG stream, shared by every
    component, consulted in deterministic simulation order.

    Two-step protocol for sites whose detail is only known after the fact:
    :meth:`should` consumes the RNG and answers "fire?", :meth:`record`
    books the event; :meth:`fires` fuses both for simple sites.
    """

    def __init__(self, plan: FaultPlan, obs: Optional[BusLike] = None) -> None:
        self.plan = plan
        self._rates = {site: rate for site, rate in plan.rates}
        self._rng = random.Random(0x5EED ^ (plan.seed * 2654435761 % (1 << 32)))
        self._obs = obs if obs is not None else NULL_BUS
        self.counts: Dict[str, int] = {}

    @property
    def total_fired(self) -> int:
        return sum(self.counts.values())

    def should(self, site: str) -> bool:
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def record(self, site: str, now: int = 0, sm_id: int = -1,
               detail: str = "") -> None:
        self.counts[site] = self.counts.get(site, 0) + 1
        if self._obs.enabled:
            self._obs.emit(
                FaultEvent(cycle=now, sm_id=sm_id, site=site, detail=detail)
            )

    def fires(self, site: str, now: int = 0, sm_id: int = -1,
              detail: str = "") -> bool:
        if not self.should(site):
            return False
        self.record(site, now, sm_id, detail)
        return True

    def delay(self, site: str, now: int = 0, sm_id: int = -1) -> int:
        """Extra cycles for a delay/spike site (0 = no fault this time).
        The magnitude jitters in [delay/2, 2*delay] so spikes are not a
        fixed offset the timing model could accidentally absorb."""
        if not self.should(site):
            return 0
        nominal = self.plan.delay_cycles
        extra = self._rng.randint(max(1, nominal // 2), nominal * 2)
        self.record(site, now, sm_id, "+%d cycles" % extra)
        return extra

    def rand_index(self, n: int) -> int:
        """Deterministic index draw for target selection (eviction storms)."""
        return self._rng.randrange(n)

    def corrupt_tail(
        self, prefetcher: object, now: int = 0, sm_id: int = -1
    ) -> bool:
        """``snake.tail_corrupt``: mutate one Tail-table entry in place.

        Corruption stays *in-field* (a real bit flip cannot escape the
        entry's storage): a stale/scaled stride, a scrambled 64-bit warp
        vector, or a spurious train-state promotion.  Mechanisms without
        Snake tables are a no-op.
        """
        if not self.should("snake.tail_corrupt"):
            return False
        tables = getattr(prefetcher, "tables", None)
        if tables is None:
            return False
        stocked = [tail for _, _, tail in tables() if len(tail)]
        if not stocked:
            return False
        from repro.core.tail_table import TrainState

        tail = self._rng.choice(stocked)
        entry = self._rng.choice(tail.entries())
        mode = self._rng.randrange(3)
        if mode == 0:
            entry.inter_thread_stride *= self._rng.choice((-1, 2, 3))
            detail = "stride->%d" % entry.inter_thread_stride
        elif mode == 1:
            entry.warp_vector = self._rng.getrandbits(64)
            detail = "warp vector scrambled"
        else:
            entry.t1 = TrainState.TRAINED
            detail = "t1 force-trained"
        # The mutation bypassed the table's write-through column mirror.
        tail.mark_dirty()
        self.record("snake.tail_corrupt", now, sm_id, detail)
        return True

    def summary(self) -> Dict[str, int]:
        """Site -> fire count (stable order, for reports and tests)."""
        return {site: self.counts.get(site, 0) for site in SITES
                if self._rates.get(site, 0.0) > 0}


# ---------------------------------------------------------------------------
# Runner-level fault injection (the orchestration layer's chaos plan).
#
# The simulator sites above perturb *timing inside one simulation*.  The
# runner sites perturb the *fleet machinery around* simulations: workers
# dying mid-lease, heartbeats going silent, the scheduler<->worker message
# plane dropping / delaying / duplicating deliveries, and checkpoint
# records torn by a killed writer.  The correctness contract is the same
# shape as the simulator one — a seeded fault schedule may cost wall
# clock and retries but must yield byte-identical sweep results — and
# ``snake-repro chaos --runner`` proves it.


#: Every recognised runner injection site.
RUNNER_SITES: Tuple[str, ...] = (
    "worker.kill",
    "worker.heartbeat_stall",
    "transport.drop",
    "transport.delay",
    "transport.dup",
    "checkpoint.torn",
)

#: Default per-opportunity rates for the runner "storm" plan.  worker.*
#: sites are per (job, attempt); transport.* sites are per message;
#: checkpoint.torn is per checkpoint flush.
RUNNER_DEFAULT_RATES: Dict[str, float] = {
    "worker.kill": 0.5,
    "worker.heartbeat_stall": 0.5,
    "transport.drop": 0.1,
    "transport.delay": 0.1,
    "transport.dup": 0.2,
    "checkpoint.torn": 0.25,
}


def runner_catalog() -> Dict[str, str]:
    """Runner site -> one-line description (docs and ``chaos --runner``)."""
    return {
        "worker.kill": "SIGKILL a worker at a lease phase (claim or report)",
        "worker.heartbeat_stall": "a worker goes silent: heartbeats stop, "
        "the result is withheld past the lease",
        "transport.drop": "a worker->scheduler message is lost in delivery",
        "transport.delay": "a worker->scheduler message is delivered late",
        "transport.dup": "a worker->scheduler message is delivered twice",
        "checkpoint.torn": "a checkpoint flush leaves a torn trailing record",
    }


def _hash01(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw from the fault identity alone.

    Job-scoped decisions must not depend on scheduling order (which
    worker claimed the job, how many messages flowed first), or the
    fault schedule would differ between otherwise-identical runs — so
    they hash (seed, site, key, attempt) instead of consuming a shared
    RNG stream.
    """
    digest = hashlib.sha256(
        ("%d|%s|%s|%d" % (seed, site, key, attempt)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RunnerFaultPlan:
    """What to inject into the sweep scheduler: (site, probability) pairs.

    ``max_per_job`` bounds the abuse: a job-scoped site can only fire on
    attempts ``1..max_per_job`` of a given job, so recovery always
    converges as long as the scheduler's retry/loss budgets exceed the
    cap — which ``Scheduler`` enforces when a plan is attached.  That
    bound is what makes the chaos contract provable for *any* seed:
    unbounded kills could legitimately exhaust any retry budget.

    ``delay_s`` is the nominal transport-delay / heartbeat-stall
    magnitude (each firing jitters deterministically around it).
    """

    seed: int = 0
    rates: Tuple[Tuple[str, float], ...] = ()
    max_per_job: int = 2
    delay_s: float = 0.2

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in RUNNER_SITES:
                raise ValueError(
                    "unknown runner fault site %r (known: %s)"
                    % (site, ", ".join(RUNNER_SITES))
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rate for %s must be in [0, 1]" % site)
        if self.max_per_job < 1:
            raise ValueError("max_per_job must be >= 1")
        if self.delay_s <= 0:
            raise ValueError("delay_s must be > 0")

    @classmethod
    def make(
        cls, rates: Mapping[str, float], seed: int = 0,
        max_per_job: int = 2, delay_s: float = 0.2,
    ) -> "RunnerFaultPlan":
        return cls(
            seed=int(seed),
            rates=tuple(sorted(rates.items())),
            max_per_job=int(max_per_job),
            delay_s=float(delay_s),
        )

    @classmethod
    def single(cls, site: str, rate: Optional[float] = None, seed: int = 0,
               max_per_job: int = 2, delay_s: float = 0.2) -> "RunnerFaultPlan":
        """One site only (the ``chaos --runner`` per-site plans)."""
        return cls.make(
            {site: RUNNER_DEFAULT_RATES[site] if rate is None else rate},
            seed=seed, max_per_job=max_per_job, delay_s=delay_s,
        )

    @classmethod
    def storm(cls, seed: int = 0, max_per_job: int = 2,
              delay_s: float = 0.2) -> "RunnerFaultPlan":
        """All runner sites at their default rates simultaneously."""
        return cls.make(
            RUNNER_DEFAULT_RATES, seed=seed, max_per_job=max_per_job,
            delay_s=delay_s,
        )

    def label(self) -> str:
        sites = [s for s, r in self.rates if r > 0]
        if set(sites) == set(RUNNER_SITES):
            return "runner-storm"
        return "+".join(sites) if sites else "none"

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {site: rate for site, rate in self.rates},
            "max_per_job": self.max_per_job,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunnerFaultPlan":
        return cls.make(
            data.get("rates") or {},
            seed=data.get("seed", 0),
            max_per_job=data.get("max_per_job", 2),
            delay_s=data.get("delay_s", 0.2),
        )


class RunnerFaultInjector:
    """Per-run decision engine for a :class:`RunnerFaultPlan`.

    Job-scoped sites (``worker.*``) decide from a pure hash of
    (seed, site, key, attempt) — stateless, so the worker process that
    actually honours the decision can be respawned between attempts
    without losing the cap, and the schedule is independent of claim
    order.  Message-scoped sites (``transport.*``) and per-flush
    ``checkpoint.torn`` live in the scheduler process and use one seeded
    RNG stream with a per-(site, key) firing cap, so a dropped result
    cannot be dropped again on every retry forever.
    """

    def __init__(self, plan: RunnerFaultPlan,
                 obs: Optional[BusLike] = None) -> None:
        self.plan = plan
        self._rates = {site: rate for site, rate in plan.rates}
        self._rng = random.Random(0xF1EE7 ^ (plan.seed * 2654435761 % (1 << 32)))
        self._obs = obs if obs is not None else NULL_BUS
        self.counts: Dict[str, int] = {}
        self._per_key: Dict[Tuple[str, str], int] = {}

    @property
    def total_fired(self) -> int:
        return sum(self.counts.values())

    def record(self, site: str, detail: str = "") -> None:
        self.counts[site] = self.counts.get(site, 0) + 1
        if self._obs.enabled:
            self._obs.emit(FaultEvent(cycle=0, sm_id=-1, site=site, detail=detail))

    def job_fires(self, site: str, key: str, attempt: int,
                  detail: str = "") -> bool:
        """Job-scoped decision: fires iff ``attempt <= max_per_job`` and
        the deterministic hash clears the site's rate."""
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0 or attempt > self.plan.max_per_job:
            return False
        if _hash01(self.plan.seed, site, key, attempt) >= rate:
            return False
        self.record(site, detail or "%s attempt %d" % (key, attempt))
        return True

    def kill_phase(self, key: str, attempt: int) -> str:
        """Which lease phase ``worker.kill`` strikes at: ``claim`` (the
        assignment was received but nothing ran) or ``report`` (the job
        executed fully but the result never left the worker)."""
        draw = _hash01(self.plan.seed, "worker.kill.phase", key, attempt)
        return "claim" if draw < 0.5 else "report"

    def message_fires(self, site: str, key: str, detail: str = "") -> bool:
        """Message-scoped decision, capped at ``max_per_job`` firings per
        (site, key) so delivery faults cannot starve a job forever."""
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        cap_key = (site, key)
        if self._per_key.get(cap_key, 0) >= self.plan.max_per_job:
            return False
        if self._rng.random() >= rate:
            return False
        self._per_key[cap_key] = self._per_key.get(cap_key, 0) + 1
        self.record(site, detail or key)
        return True

    def stall_s(self, key: str, attempt: int) -> float:
        """How long a heartbeat-stalled worker withholds its result.
        Always comfortably past the lease the scheduler is using (the
        scheduler scales its lease down when a plan is attached)."""
        jitter = 1.0 + _hash01(self.plan.seed, "stall.jitter", key, attempt)
        return self.plan.delay_s * 2.0 * jitter

    def delay_s(self, key: str) -> float:
        """Transport delivery delay for one message (seeded jitter in
        [delay/2, 2*delay], mirroring the simulator spike sites)."""
        return self.plan.delay_s * self._rng.uniform(0.5, 2.0)

    def summary(self) -> Dict[str, int]:
        """Site -> fire count (stable order, for reports and tests)."""
        return {site: self.counts.get(site, 0) for site in RUNNER_SITES
                if self._rates.get(site, 0.0) > 0}


__all__ = [
    "DEFAULT_RATES",
    "FaultInjector",
    "FaultPlan",
    "RUNNER_DEFAULT_RATES",
    "RUNNER_SITES",
    "RunnerFaultInjector",
    "RunnerFaultPlan",
    "SITES",
    "catalog",
    "runner_catalog",
]
