"""Seeded, deterministic fault injection for the GPU timing model.

Snake's value proposition is that prefetching is *safe to be wrong*: a
mispredicted chain, a lost prefetch fill or bandwidth-triggered throttling
(§3.3) may only cost performance, never correctness.  This module makes
that claim testable.  A :class:`FaultPlan` names injection sites and
per-opportunity probabilities; a :class:`FaultInjector` (one
``random.Random`` stream seeded from the plan) decides each opportunity,
so a given (plan, workload, config) triple injects an identical fault
sequence on every run.  Every firing bumps ``injector.counts`` and emits a
:class:`repro.obs.events.FaultEvent` when a bus is attached.

Injection sites (the catalog :func:`catalog` returns, mirrored in
``docs/ROBUSTNESS.md``):

=====================  ====================================================
site                   effect
=====================  ====================================================
``icnt.delay_fill``    a prefetch fill response is delayed in the NoC
``icnt.drop_fill``     a prefetch fill packet is lost: its MSHR entry
                       retires without installing a line (demand-joined
                       fills are never dropped — the controller promotes
                       them, so demand correctness is preserved)
``l1.mshr_refuse``     forced MSHR-allocation refusal: a demand access
                       reservation-fails and replays; a prefetch is dropped
``l1.evict_storm``     every prefetched line in one random L1 set (and the
                       matching side-buffer set in isolated mode) is evicted
``l2.latency_spike``   extra service latency on one L2 access
``dram.latency_spike`` extra cycles on one DRAM access
``snake.tail_corrupt`` one Tail-table entry is corrupted in place: a stale
                       stride, a scrambled (in-field) warp vector, or a
                       spurious promotion
=====================  ====================================================

Every site is performance-only *by construction* — faults perturb timing,
predictions and prefetch storage, never demand data — and the sanitizer
(:mod:`repro.gpusim.sanitizer`) plus the ``snake-repro chaos`` command
prove it: a faulted run must finish with zero invariant violations and
the same demand-visible outcome (committed instructions, finished warps)
as the fault-free run.

All hooks are ``None``-guarded at the call sites, so a GPU built without
a plan pays one attribute test per memory operation and nothing more.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.obs.events import BusLike, FaultEvent, NULL_BUS

#: Every recognised injection site, in pipeline order.
SITES: Tuple[str, ...] = (
    "icnt.delay_fill",
    "icnt.drop_fill",
    "l1.mshr_refuse",
    "l1.evict_storm",
    "l2.latency_spike",
    "dram.latency_spike",
    "snake.tail_corrupt",
)

#: Modest per-opportunity rates for the all-sites "storm" plan.  High
#: enough that short chaos runs fire every site, low enough that the
#: simulation still terminates promptly under replay pressure.
DEFAULT_RATES: Dict[str, float] = {
    "icnt.delay_fill": 0.05,
    "icnt.drop_fill": 0.05,
    "l1.mshr_refuse": 0.02,
    "l1.evict_storm": 0.01,
    "l2.latency_spike": 0.02,
    "dram.latency_spike": 0.02,
    "snake.tail_corrupt": 0.01,
}


def catalog() -> Dict[str, str]:
    """Site -> one-line description (docs and ``chaos`` CLI output)."""
    return {
        "icnt.delay_fill": "delay a prefetch fill response in the NoC",
        "icnt.drop_fill": "drop a prefetch fill (MSHR entry retires, no line)",
        "l1.mshr_refuse": "force an MSHR allocation refusal",
        "l1.evict_storm": "evict all prefetched lines in one random set",
        "l2.latency_spike": "extra service latency on one L2 access",
        "dram.latency_spike": "extra cycles on one DRAM access",
        "snake.tail_corrupt": "corrupt one Tail-table entry in place",
    }


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: (site, probability) pairs plus magnitudes.

    ``rates`` is a sorted tuple of pairs (hashable and JSON-safe, like
    ``JobSpec.mech_kwargs``).  Build via :meth:`make` / :meth:`single` /
    :meth:`storm`, not the raw constructor.
    """

    seed: int = 0
    rates: Tuple[Tuple[str, float], ...] = ()
    delay_cycles: int = 400  # nominal magnitude for delay/spike sites

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in SITES:
                raise ValueError(
                    "unknown fault site %r (known: %s)" % (site, ", ".join(SITES))
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rate for %s must be in [0, 1]" % site)
        if self.delay_cycles < 1:
            raise ValueError("delay_cycles must be >= 1")

    @classmethod
    def make(
        cls, rates: Mapping[str, float], seed: int = 0, delay_cycles: int = 400
    ) -> "FaultPlan":
        return cls(
            seed=int(seed),
            rates=tuple(sorted(rates.items())),
            delay_cycles=int(delay_cycles),
        )

    @classmethod
    def single(cls, site: str, rate: Optional[float] = None, seed: int = 0,
               delay_cycles: int = 400) -> "FaultPlan":
        """One site only (the ``chaos`` command's per-site plans)."""
        return cls.make(
            {site: DEFAULT_RATES[site] if rate is None else rate},
            seed=seed, delay_cycles=delay_cycles,
        )

    @classmethod
    def storm(cls, seed: int = 0, delay_cycles: int = 400) -> "FaultPlan":
        """All sites at their default rates simultaneously."""
        return cls.make(DEFAULT_RATES, seed=seed, delay_cycles=delay_cycles)

    def label(self) -> str:
        sites = [s for s, r in self.rates if r > 0]
        if set(sites) == set(SITES):
            return "storm"
        return "+".join(sites) if sites else "none"

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rates": {site: rate for site, rate in self.rates},
            "delay_cycles": self.delay_cycles,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls.make(
            data.get("rates") or {},
            seed=data.get("seed", 0),
            delay_cycles=data.get("delay_cycles", 400),
        )


class FaultInjector:
    """The per-run decision engine: one seeded RNG stream, shared by every
    component, consulted in deterministic simulation order.

    Two-step protocol for sites whose detail is only known after the fact:
    :meth:`should` consumes the RNG and answers "fire?", :meth:`record`
    books the event; :meth:`fires` fuses both for simple sites.
    """

    def __init__(self, plan: FaultPlan, obs: Optional[BusLike] = None) -> None:
        self.plan = plan
        self._rates = {site: rate for site, rate in plan.rates}
        self._rng = random.Random(0x5EED ^ (plan.seed * 2654435761 % (1 << 32)))
        self._obs = obs if obs is not None else NULL_BUS
        self.counts: Dict[str, int] = {}

    @property
    def total_fired(self) -> int:
        return sum(self.counts.values())

    def should(self, site: str) -> bool:
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def record(self, site: str, now: int = 0, sm_id: int = -1,
               detail: str = "") -> None:
        self.counts[site] = self.counts.get(site, 0) + 1
        if self._obs.enabled:
            self._obs.emit(
                FaultEvent(cycle=now, sm_id=sm_id, site=site, detail=detail)
            )

    def fires(self, site: str, now: int = 0, sm_id: int = -1,
              detail: str = "") -> bool:
        if not self.should(site):
            return False
        self.record(site, now, sm_id, detail)
        return True

    def delay(self, site: str, now: int = 0, sm_id: int = -1) -> int:
        """Extra cycles for a delay/spike site (0 = no fault this time).
        The magnitude jitters in [delay/2, 2*delay] so spikes are not a
        fixed offset the timing model could accidentally absorb."""
        if not self.should(site):
            return 0
        nominal = self.plan.delay_cycles
        extra = self._rng.randint(max(1, nominal // 2), nominal * 2)
        self.record(site, now, sm_id, "+%d cycles" % extra)
        return extra

    def rand_index(self, n: int) -> int:
        """Deterministic index draw for target selection (eviction storms)."""
        return self._rng.randrange(n)

    def corrupt_tail(
        self, prefetcher: object, now: int = 0, sm_id: int = -1
    ) -> bool:
        """``snake.tail_corrupt``: mutate one Tail-table entry in place.

        Corruption stays *in-field* (a real bit flip cannot escape the
        entry's storage): a stale/scaled stride, a scrambled 64-bit warp
        vector, or a spurious train-state promotion.  Mechanisms without
        Snake tables are a no-op.
        """
        if not self.should("snake.tail_corrupt"):
            return False
        tables = getattr(prefetcher, "tables", None)
        if tables is None:
            return False
        stocked = [tail for _, _, tail in tables() if len(tail)]
        if not stocked:
            return False
        from repro.core.tail_table import TrainState

        tail = self._rng.choice(stocked)
        entry = self._rng.choice(tail.entries())
        mode = self._rng.randrange(3)
        if mode == 0:
            entry.inter_thread_stride *= self._rng.choice((-1, 2, 3))
            detail = "stride->%d" % entry.inter_thread_stride
        elif mode == 1:
            entry.warp_vector = self._rng.getrandbits(64)
            detail = "warp vector scrambled"
        else:
            entry.t1 = TrainState.TRAINED
            detail = "t1 force-trained"
        self.record("snake.tail_corrupt", now, sm_id, detail)
        return True

    def summary(self) -> Dict[str, int]:
        """Site -> fire count (stable order, for reports and tests)."""
        return {site: self.counts.get(site, 0) for site in SITES
                if self._rates.get(site, 0.0) > 0}


__all__ = [
    "DEFAULT_RATES",
    "FaultInjector",
    "FaultPlan",
    "SITES",
    "catalog",
]
