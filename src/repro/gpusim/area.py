"""Hardware cost model for Snake's tables (CACTI substitute).

Reproduces Table 3 and Fig 21: the Head and Tail tables' storage is a
deterministic function of the field widths described in §3.1/§5.5, so the
byte counts are computed from first principles and the die-area fraction is
scaled against the published V100 die size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

V100_DIE_MM2 = 815.0  # NVIDIA Volta V100 die size quoted in §5.5
# CACTI-style SRAM density at 12 nm: conservative ~0.35 mm^2 per MiB.
_MM2_PER_BYTE = 0.35 / (1024.0 * 1024.0)


@dataclass(frozen=True)
class HeadTableLayout:
    """Head table: per entry two warp ids, two base addresses, one PC_ld
    (doubled warp/address columns support greedy schedulers, §5.5)."""

    warp_id_bits: int = 6
    addr_bits: int = 35
    pc_bits: int = 30
    entries: int = 32

    @property
    def bits_per_entry(self) -> int:
        return 2 * self.warp_id_bits + 2 * self.addr_bits + self.pc_bits

    @property
    def bytes_per_entry(self) -> int:
        return (self.bits_per_entry + 7) // 8

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_entry * self.entries


@dataclass(frozen=True)
class TailTableLayout:
    """Tail table: PC1, PC2, inter-thread stride + status, warp-id vector,
    intra-warp stride + status, inter-warp stride (§3.1's eight fields)."""

    pc_bits: int = 30
    stride_bits: int = 40
    status_bits: int = 2
    warp_vector_bits: int = 64
    lru_bits: int = 4
    entries: int = 10

    @property
    def bits_per_entry(self) -> int:
        return (
            2 * self.pc_bits  # PC1, PC2
            + 3 * self.stride_bits  # inter-thread, intra-warp, inter-warp
            + 2 * self.status_bits  # T1, T2
            + self.warp_vector_bits
            + self.lru_bits
        )

    @property
    def bytes_per_entry(self) -> int:
        return (self.bits_per_entry + 7) // 8

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_entry * self.entries


def snake_storage_bytes(
    head: HeadTableLayout = HeadTableLayout(),
    tail: TailTableLayout = TailTableLayout(),
) -> int:
    """Bytes of SRAM per SM for Snake's two tables."""
    return head.total_bytes + tail.total_bytes


def area_overhead_fraction(num_sms: int = 80, tail_entries: int = 10) -> float:
    """Snake's die-area overhead as a fraction of the V100 die."""
    tail = TailTableLayout(entries=tail_entries)
    per_sm = HeadTableLayout().total_bytes + tail.total_bytes
    return per_sm * num_sms * _MM2_PER_BYTE / V100_DIE_MM2


def tail_cost_sweep(entry_sizes: Iterable[int]) -> Dict[int, int]:
    """Fig 21: storage bytes per SM for each Tail-table entry count."""
    head_bytes = HeadTableLayout().total_bytes
    return {
        n: head_bytes + TailTableLayout(entries=n).total_bytes for n in entry_sizes
    }
