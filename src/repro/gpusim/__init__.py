"""GPU timing-model substrate (Accel-Sim substitute).

Public surface: configuration, trace types, the :class:`GPU` top level and
the :func:`simulate` convenience runner.
"""

from .area import (
    HeadTableLayout,
    TailTableLayout,
    area_overhead_fraction,
    snake_storage_bytes,
    tail_cost_sweep,
)
from .config import CacheConfig, DRAMTimings, GPUConfig
from .energy import EnergyBreakdown, EnergyParams, energy_of
from .faults import FaultInjector, FaultPlan
from .gpu import GPU, simulate
from .sanitizer import InvariantViolationError, SimSanitizer
from .stats import PrefetchStats, SimStats
from .trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps
from .traceio import load_trace, save_trace
from .unified_cache import L1Outcome, StorageMode, UnifiedL1Cache
from .validate import ValidationIssue, assert_valid, validate_kernel

__all__ = [
    "CTA",
    "CacheConfig",
    "DRAMTimings",
    "EnergyBreakdown",
    "EnergyParams",
    "FaultInjector",
    "FaultPlan",
    "GPU",
    "GPUConfig",
    "HeadTableLayout",
    "InvariantViolationError",
    "KernelTrace",
    "L1Outcome",
    "Op",
    "PrefetchStats",
    "SimSanitizer",
    "SimStats",
    "StorageMode",
    "TailTableLayout",
    "UnifiedL1Cache",
    "ValidationIssue",
    "WarpInstr",
    "WarpTrace",
    "assert_valid",
    "load_trace",
    "save_trace",
    "validate_kernel",
    "area_overhead_fraction",
    "energy_of",
    "renumber_warps",
    "simulate",
    "snake_storage_bytes",
    "tail_cost_sweep",
]
