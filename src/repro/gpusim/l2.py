"""Shared, banked L2 cache.

All SMs send their L1 misses here.  Banks are next-free-time resources (bank
conflicts queue), the tag store is plain LRU, and misses are forwarded to
DRAM.  In-flight misses merge so that two SMs missing on the same line cost
one DRAM access.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.obs.events import BusLike, L2AccessEvent, NULL_BUS

from .cache import SetAssocCache
from .config import CacheConfig
from .dram import DRAM
from .faults import FaultInjector

_BANK_SERVICE_CYCLES = 4


class L2Cache:
    """The GPU's shared last-level cache in front of DRAM."""

    def __init__(
        self, config: CacheConfig, banks: int, dram: DRAM,
        obs: Optional[BusLike] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if banks < 1:
            raise ValueError("need at least one L2 bank")
        self._obs = obs if obs is not None else NULL_BUS
        self._faults = faults  # optional chaos hook (l2.latency_spike)
        self.config = config
        self.dram = dram
        self._store = SetAssocCache(config)
        self._bank_next_free = [0] * banks
        self._bank_priority_next_free = [0] * banks
        self._inflight: Dict[int, int] = {}  # line -> fill time
        # Min-heap of (fill_time, line) mirroring ``_inflight`` so expired
        # entries drop in O(log n) per expiry instead of a full scan per
        # access; superseded heap entries are skipped lazily.
        self._inflight_heap: List[Tuple[int, int]] = []
        self.hits = 0
        self.misses = 0

    def _bank_of(self, line_addr: int) -> int:
        return (line_addr // self.config.line_bytes) % len(self._bank_next_free)

    def access(
        self, line_addr: int, now: int, is_write: bool = False,
        priority: bool = True,
    ) -> int:
        """Service a request arriving at time ``now``; returns the time the
        data is ready to travel back to the requesting L1.  Demand requests
        (``priority=True``) schedule ahead of best-effort prefetches."""
        bank = self._bank_of(line_addr)
        # Chaos l2.latency_spike: extra service latency on the *returned*
        # ready time only — bank horizons are untouched, so the shared
        # scheduling state (and its monotonicity invariants) is unaffected.
        spike = 0
        if self._faults is not None:
            spike = self._faults.delay("l2.latency_spike", now)
        if priority:
            start = max(now, self._bank_priority_next_free[bank])
            self._bank_priority_next_free[bank] = start + _BANK_SERVICE_CYCLES
        else:
            start = max(now, self._bank_next_free[bank])
        self._bank_next_free[bank] = max(
            self._bank_next_free[bank], start + _BANK_SERVICE_CYCLES
        )

        # Drop completed in-flight entries lazily via the fill heap; an
        # address re-inserted with a later fill time leaves a superseded
        # heap entry behind, which the dict check skips.
        heap = self._inflight_heap
        while heap and heap[0][0] <= now:
            _, addr = heapq.heappop(heap)
            t = self._inflight.get(addr)
            if t is not None and t <= now:
                del self._inflight[addr]

        if self._store.touch(line_addr, start) is not None:
            self.hits += 1
            if self._obs.enabled:
                self._obs.emit(
                    L2AccessEvent(
                        cycle=now, sm_id=-1, line_addr=line_addr, hit=True
                    )
                )
            return start + self.config.latency + spike

        pending = self._inflight.get(line_addr)
        if pending is not None and self._obs.enabled:
            self._obs.emit(
                L2AccessEvent(cycle=now, sm_id=-1, line_addr=line_addr, hit=True)
            )
        if pending is not None:
            # Merge with an in-flight miss.  A demand (priority) request
            # promotes a starved best-effort prefetch: the memory controller
            # re-schedules the transfer at demand priority, so the data
            # arrives no later than a fresh access would.
            self.hits += 1
            merged = max(pending, start + self.config.latency)
            if priority:
                # Demand promotion of an in-flight best-effort fill: the
                # memory controller re-prioritizes the transfer, so it
                # completes no later than an unloaded access from now.
                promoted = start + self.config.latency + _BANK_SERVICE_CYCLES
                merged = min(merged, max(promoted, now + self.config.latency))
            return merged + spike

        self.misses += 1
        if self._obs.enabled:
            self._obs.emit(
                L2AccessEvent(cycle=now, sm_id=-1, line_addr=line_addr, hit=False)
            )
        fill_time = self.dram.access(
            line_addr, start + _BANK_SERVICE_CYCLES, is_write=is_write,
            priority=priority,
        )
        self._store.insert(line_addr, fill_time)
        self._inflight[line_addr] = fill_time
        heapq.heappush(self._inflight_heap, (fill_time, line_addr))
        return fill_time + self.config.latency + spike

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
