"""Top-level GPU: SM array + shared L2/DRAM, kernel launch, stats roll-up.

``GPU.run(kernel)`` dispatches CTAs round-robin over SMs (as the hardware
work distributor does), runs every SM to completion and merges per-SM stats.
Each SM gets its own prefetcher instance — the paper's tables are per-SM
structures.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.obs.events import BusLike, EventBus, NULL_BUS
from repro.prefetch.base import Prefetcher, create as create_prefetcher

from .config import GPUConfig
from .dram import DRAM
from .faults import FaultInjector, FaultPlan
from .l2 import L2Cache
from .sanitizer import InvariantViolationError, SimSanitizer
from .sm import SM, ThrottlePolicy
from .stats import SimStats
from .trace import KernelTrace
from .unified_cache import StorageMode
from .watchdog import SimulationHangError, Watchdog

__all__ = ["GPU", "InvariantViolationError", "SimulationHangError", "simulate"]


class GPU:
    """A configured GPU ready to execute kernel traces."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        prefetcher_factory: Optional[Callable[[], Prefetcher]] = None,
        throttle_factory: Optional[Callable[[], ThrottlePolicy]] = None,
        storage_mode: StorageMode = StorageMode.COUPLED,
        obs: Optional[BusLike] = None,
        faults: Union[FaultPlan, FaultInjector, None] = None,
    ) -> None:
        from repro.core.throttle import NullThrottle

        self.config = config or GPUConfig.scaled()
        # Belt-and-braces: dataclass construction already validates, but
        # configs can arrive rebuilt from checkpoints / job specs.
        self.config.validate()
        self._prefetcher_factory = prefetcher_factory or (
            lambda: create_prefetcher("none")
        )
        self._throttle_factory = throttle_factory or NullThrottle
        self.storage_mode = storage_mode

        # Telemetry (repro.obs): an explicit bus wins; otherwise the config
        # flag builds an empty bus callers can attach sinks to.  The default
        # is the shared NULL_BUS, whose `enabled` check is the only overhead
        # the timing model pays.
        if obs is None:
            obs = EventBus() if self.config.telemetry else NULL_BUS
        self.obs = obs

        # Chaos engineering (repro.gpusim.faults): a FaultPlan (or a ready
        # FaultInjector) arms seeded injection sites across the hierarchy.
        # The default is None, in which case every hook compiles down to a
        # single attribute test.
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, obs=obs)
        self.faults: Optional[FaultInjector] = faults

        self.dram = DRAM(
            timings=self.config.dram,
            channels=self.config.dram_channels,
            banks_per_channel=self.config.dram_banks_per_channel,
            row_bytes=self.config.dram_row_bytes,
            clock_ratio=self.config.dram_clock_ratio,
            line_bytes=self.config.l2.line_bytes,
            obs=obs,
            faults=faults,
        )
        self.l2 = L2Cache(
            self.config.l2, self.config.l2_banks, self.dram, obs=obs,
            faults=faults,
        )
        self.sms = [
            SM(
                sm_id=i,
                config=self.config,
                l2=self.l2,
                prefetcher=self._prefetcher_factory(),
                throttle=self._throttle_factory(),
                storage_mode=storage_mode,
                obs=obs,
                faults=faults,
            )
            for i in range(self.config.num_sms)
        ]
        for sm in self.sms:
            # Prefetchers are built by an opaque factory; hand them the bus
            # after the fact so mechanism-internal events (chain walks)
            # reach the same sinks.
            sm.prefetcher.obs = obs
            sm.prefetcher.obs_sm_id = sm.sm_id

    def run(self, kernel: KernelTrace) -> SimStats:
        """Execute one kernel to completion; returns merged statistics."""
        return self.run_many([kernel])

    def _run_loop_event(
        self,
        active: List[SM],
        watchdog: Optional[Watchdog],
        sanitizer: Optional[SimSanitizer],
    ) -> None:
        """Event-driven skip-ahead run loop (docs/PERFORMANCE.md).

        SMs sit in a min-heap keyed by (horizon, sm index); popping the head
        advances the global clock directly to the earliest next-interesting
        cycle — no per-cycle polling of idle SMs.  ``SM.step_event`` returns
        the SM's new horizon (or None once retired) and performs at most one
        quantum per pop, so shared L2/DRAM/NoC resources see requests in
        exactly the chronological order of the reference loop: the heap's
        (horizon, index) order reproduces ``min(active, key=now)`` with its
        first-in-list tie-break, and a stalled SM's deferred gap accounting
        touches only SM-local state.
        """
        heap: List[Tuple[int, int, SM]] = [
            (sm.now, idx, sm) for idx, sm in enumerate(active)
        ]
        heapq.heapify(heap)
        iterations = 0
        heappop, heappush = heapq.heappop, heapq.heappush
        while heap:
            _, idx, sm = heappop(heap)
            # Burst: keep stepping the popped SM while its next horizon
            # still precedes the heap head in (horizon, index) order — each
            # re-push/re-pop the per-quantum loop would do is a guaranteed
            # no-op reshuffle, so skipping it preserves the exact global
            # step order (and therefore cycle-identical statistics).
            head = heap[0] if heap else None
            while True:
                horizon = sm.step_event()
                iterations += 1
                # The progress signature (and the sanitizer's full audit)
                # sums state over all SMs, so sample sparsely, not per step.
                if iterations & 0xFF == 0:
                    if watchdog is not None:
                        watchdog.check(sm.now)
                    if sanitizer is not None:
                        sanitizer.maybe_check(sm.now)
                if horizon is None:
                    sm.finalize()
                    break
                if head is not None and not (
                    horizon < head[0] or (horizon == head[0] and idx < head[1])
                ):
                    heappush(heap, (horizon, idx, sm))
                    break

    def _run_loop_legacy(
        self,
        active: List[SM],
        watchdog: Optional[Watchdog],
        sanitizer: Optional[SimSanitizer],
    ) -> None:
        """Reference step-everything loop (``config.legacy_loop=True``),
        kept verbatim for differential testing against the event core."""
        iterations = 0
        while active:
            sm = min(active, key=lambda s: s.now)
            if not sm.step():
                sm.finalize()
                active.remove(sm)
            iterations += 1
            # The progress signature (and the sanitizer's full audit) sums
            # state over all SMs, so sample sparsely rather than per step.
            if iterations & 0xFF == 0:
                if watchdog is not None:
                    watchdog.check(sm.now)
                if sanitizer is not None:
                    sanitizer.maybe_check(sm.now)

    def run_many(self, kernels: Sequence[KernelTrace]) -> SimStats:
        """Execute several kernels *concurrently* (multi-application mode,
        the paper's §1 extension).  Each kernel gets an app id; CTAs of all
        kernels are interleaved across the SMs, and a per-app Snake
        (``per_app=True``) keeps each application's chains separate."""
        if not kernels or not any(k.ctas for k in kernels):
            raise ValueError("need at least one kernel with CTAs to run")
        next_cta_id = 0
        next_warp_id = 0
        dispatch = []
        for app_id, kernel in enumerate(kernels):
            for cta in kernel.ctas:
                cta.cta_id = next_cta_id
                next_cta_id += 1
                for warp in cta.warps:
                    warp.warp_id = next_warp_id
                    next_warp_id += 1
                dispatch.append((cta, app_id))
        for idx, (cta, app_id) in enumerate(dispatch):
            self.sms[idx % len(self.sms)].enqueue_cta(cta, app_id=app_id)

        # Interleave SMs in global-time order so shared L2/DRAM resources
        # see requests chronologically (see SM.step's docstring).
        for sm in self.sms:
            sm.start()
        active = list(self.sms)
        # Conservation auditing (repro.gpusim.sanitizer) is opt-in: when
        # ``config.sanitize`` is off no sanitizer object exists, so the run
        # loop's only added cost is one None test per 256 iterations.
        sanitizer = (
            SimSanitizer(self, self.config.sanitize_interval)
            if self.config.sanitize
            else None
        )
        watchdog = (
            Watchdog(
                self, self.config.watchdog_cycles, self.config.max_cycles,
                sanitizer=sanitizer,
            )
            if (self.config.watchdog_cycles or self.config.max_cycles)
            else None
        )
        if self.config.legacy_loop:
            self._run_loop_legacy(active, watchdog, sanitizer)
        else:
            self._run_loop_event(active, watchdog, sanitizer)
        if sanitizer is not None:
            # Final audit so every completed run ends on a clean check even
            # when it retires between cadence points.
            sanitizer.check(max(sm.now for sm in self.sms))

        total = SimStats()
        for sm in self.sms:
            total.merge(sm.stats)
        total.l2_hits = self.l2.hits
        total.l2_misses = self.l2.misses
        total.dram_reads = self.dram.reads
        total.dram_row_hits = self.dram.row_hits
        total.dram_row_misses = self.dram.row_misses
        return total


def simulate(
    kernel: KernelTrace,
    prefetcher: str = "none",
    config: Optional[GPUConfig] = None,
    obs: Optional[BusLike] = None,
    faults: Union[FaultPlan, FaultInjector, None] = None,
    **variant_kwargs: Any,
) -> SimStats:
    """One-call convenience API: build a GPU with the named prefetcher
    configuration and run ``kernel``.

    ``prefetcher`` accepts any registered mechanism name (see
    :func:`repro.prefetch.base.available`), including the Snake variants.
    ``obs`` optionally passes a :class:`repro.obs.EventBus` whose sinks
    receive the run's telemetry (see ``docs/OBSERVABILITY.md``).
    ``faults`` optionally passes a :class:`repro.gpusim.faults.FaultPlan`
    (or ready injector) to run the kernel under chaos conditions; enable
    ``config.sanitize`` to audit conservation invariants as it runs.
    """
    from repro.prefetch import build_setup

    setup = build_setup(prefetcher, config or GPUConfig.scaled(), **variant_kwargs)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
        obs=obs,
        faults=faults,
    )
    return gpu.run(kernel)
