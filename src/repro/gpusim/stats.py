"""Simulation statistics.

One :class:`SimStats` is produced per kernel run and carries every counter
the paper's figures are built from: L1 access outcomes (hit / miss /
reserved / reservation-fail — the four states of §2 footnote 1), stall
classification, interconnect traffic, and prefetch bookkeeping
(coverage / timely accuracy / pollution, per the §4 definitions).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List


@dataclass
class PrefetchStats:
    """Prefetcher-side counters.

    Two normalizations coexist (the full reconciliation lives in
    ``docs/METRICS.md``):

    * **Demand-normalized** (the Fig 16/17 axes): *coverage* = correctly
      predicted demand addresses / total demand addresses, and
      *timely coverage* = the subset resident before the demand arrived /
      total demand addresses.
    * **Issue-normalized** (the classic prefetcher-literature
      definition): *issue accuracy* = predictions a demand eventually
      used / predictions made.
    """

    issued: int = 0
    dropped_duplicate: int = 0  # predicted line already cached / in flight
    dropped_throttled: int = 0
    demand_covered: int = 0  # demand hit on prefetched line or merged in-flight
    demand_timely: int = 0  # demand hit on an already-filled prefetched line
    unused_evicted: int = 0  # prefetched lines evicted before any use
    early_evictions: int = 0  # prefetched lines evicted by demand data pre-use
    table_accesses: int = 0  # Head/Tail table lookups (energy accounting)

    def coverage(self, total_demand: int) -> float:
        return self.demand_covered / total_demand if total_demand else 0.0

    def timely_coverage(self, total_demand: int) -> float:
        """Correct predictions resident *before* the demand arrived, as a
        fraction of total demand — the paper's Fig 17 "timely accuracy"
        axis (it shares Fig 16's denominator so the two stack)."""
        return self.demand_timely / total_demand if total_demand else 0.0

    def accuracy(self, total_demand: int) -> float:
        """Deprecated name for :meth:`timely_coverage`, kept for API
        compatibility.  Note the denominator is *demand accesses*, not
        issued prefetches — use :meth:`issue_accuracy` for the
        per-issued-prefetch definition."""
        return self.timely_coverage(total_demand)

    @property
    def predictions(self) -> int:
        """Predictions the prefetcher committed to: requests that left for
        L2 plus requests dropped only because the line was already present
        (those still stake a claim that is later checked by demand)."""
        return self.issued + self.dropped_duplicate

    def issue_accuracy(self) -> float:
        """Fraction of predictions that a demand access eventually used —
        the prefetcher-literature accuracy (useful / issued).  The
        denominator includes duplicate-dropped predictions because they,
        too, credit ``demand_covered`` when the demand arrives; counting
        the credit but not the attempt would let the ratio exceed 1."""
        return (
            self.demand_covered / self.predictions if self.predictions else 0.0
        )


@dataclass
class SimStats:
    """Counters for one simulated kernel."""

    cycles: int = 0
    instructions: int = 0
    warps_finished: int = 0

    # L1 access outcomes (demand requests only).
    l1_hits: int = 0
    l1_misses: int = 0
    l1_reserved: int = 0  # hit on an in-flight (reserved) line
    l1_reservation_fails: int = 0

    # Stall classification: cycles with no warp ready to issue.
    stall_cycles_total: int = 0
    stall_cycles_memory: int = 0  # all non-finished warps waiting on memory

    # Interconnect (L1<->L2) traffic.
    icnt_bytes: int = 0
    icnt_peak_bytes: int = 0  # theoretical capacity over the run

    # Lower levels.
    l2_hits: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0

    prefetch: PrefetchStats = field(default_factory=PrefetchStats)

    @property
    def total_l1_accesses(self) -> int:
        return (
            self.l1_hits
            + self.l1_misses
            + self.l1_reserved
            + self.l1_reservation_fails
        )

    @property
    def demand_accesses(self) -> int:
        """Demand accesses that actually progressed (excludes replayed
        reservation fails so a retried access is not double counted)."""
        return self.l1_hits + self.l1_misses + self.l1_reserved

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        demand = self.demand_accesses
        return self.l1_hits / demand if demand else 0.0

    @property
    def reservation_fail_rate(self) -> float:
        total = self.total_l1_accesses
        return self.l1_reservation_fails / total if total else 0.0

    @property
    def bandwidth_utilization(self) -> float:
        if not self.icnt_peak_bytes:
            return 0.0
        return min(1.0, self.icnt_bytes / self.icnt_peak_bytes)

    @property
    def memory_stall_fraction(self) -> float:
        if not self.stall_cycles_total:
            return 0.0
        return self.stall_cycles_memory / self.stall_cycles_total

    @property
    def coverage(self) -> float:
        return self.prefetch.coverage(self.demand_accesses)

    @property
    def accuracy(self) -> float:
        """Timely coverage (Fig 17's demand-normalized metric); see
        :meth:`PrefetchStats.accuracy` for the naming caveat."""
        return self.prefetch.timely_coverage(self.demand_accesses)

    @property
    def timely_coverage(self) -> float:
        return self.prefetch.timely_coverage(self.demand_accesses)

    @property
    def prefetch_accuracy(self) -> float:
        """Issue-normalized accuracy: predictions used / predictions made."""
        return self.prefetch.issue_accuracy()

    def merge(self, other: "SimStats") -> None:
        """Accumulate another SM's counters into this one (cycles take the
        max — SMs run concurrently)."""
        self.cycles = max(self.cycles, other.cycles)
        self.instructions += other.instructions
        self.warps_finished += other.warps_finished
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l1_reserved += other.l1_reserved
        self.l1_reservation_fails += other.l1_reservation_fails
        self.stall_cycles_total += other.stall_cycles_total
        self.stall_cycles_memory += other.stall_cycles_memory
        self.icnt_bytes += other.icnt_bytes
        self.icnt_peak_bytes += other.icnt_peak_bytes
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.dram_reads += other.dram_reads
        self.dram_row_hits += other.dram_row_hits
        self.dram_row_misses += other.dram_row_misses
        p, q = self.prefetch, other.prefetch
        p.issued += q.issued
        p.dropped_duplicate += q.dropped_duplicate
        p.dropped_throttled += q.dropped_throttled
        p.demand_covered += q.demand_covered
        p.demand_timely += q.demand_timely
        p.unused_evicted += q.unused_evicted
        p.early_evictions += q.early_evictions
        p.table_accesses += q.table_accesses

    def conservation_violations(self) -> List[str]:
        """The accounting identities every (per-SM or merged) stats object
        must satisfy.  Returns the broken ones as messages; empty = sound.

        A silently broken identity here (a coverage numerator past its
        denominator, a negative counter, timely credit without coverage
        credit) would poison every figure derived from this run, so the
        sanitizer audits these at cadence and :meth:`verify` lets tests
        turn any simulation into an accounting audit.
        """
        v: List[str] = []
        for f in fields(self):
            if f.name == "prefetch":
                continue
            value = getattr(self, f.name)
            if value < 0:
                v.append("%s is negative (%d)" % (f.name, value))
        p = self.prefetch
        for f in fields(p):
            if getattr(p, f.name) < 0:
                v.append("prefetch.%s is negative (%d)" % (f.name, getattr(p, f.name)))
        # hits + misses + reserved + reservation-fails is *defined* as the
        # access total, so the conservation law with teeth is between the
        # prefetch-credit numerators and the demand denominator.
        if p.demand_timely > p.demand_covered:
            v.append(
                "timely credits (%d) exceed covered credits (%d)"
                % (p.demand_timely, p.demand_covered)
            )
        if p.demand_covered > self.demand_accesses:
            v.append(
                "coverage numerator (%d) exceeds demand accesses (%d)"
                % (p.demand_covered, self.demand_accesses)
            )
        if self.stall_cycles_memory > self.stall_cycles_total:
            v.append(
                "memory stalls (%d) exceed total stalls (%d)"
                % (self.stall_cycles_memory, self.stall_cycles_total)
            )
        # Every DRAM read resolved to exactly one row hit or miss; writes
        # also touch a row, so reads can only be <= the row total.
        if self.dram_reads > self.dram_row_hits + self.dram_row_misses:
            v.append(
                "dram reads (%d) exceed row activations+hits (%d)"
                % (self.dram_reads, self.dram_row_hits + self.dram_row_misses)
            )
        return v

    def verify(self) -> "SimStats":
        """Raise ``ValueError`` listing every broken conservation identity
        (see :meth:`conservation_violations`); returns ``self`` so call
        sites can chain: ``simulate(...).verify()``."""
        violations = self.conservation_violations()
        if violations:
            raise ValueError(
                "stats conservation violated (%d problem%s):\n%s"
                % (
                    len(violations),
                    "" if len(violations) == 1 else "s",
                    "\n".join("  - " + v for v in violations),
                )
            )
        return self

    def to_json_dict(self) -> dict:
        """Lossless plain-data form (every raw counter, prefetch nested) —
        the :mod:`repro.runner` checkpoint format.  Round-trips exactly
        through :meth:`from_json_dict`, so figures computed from a resumed
        sweep are byte-identical to an uninterrupted one."""
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: dict) -> "SimStats":
        """Rebuild from :meth:`to_json_dict` output."""
        data = dict(data)
        prefetch = data.pop("prefetch", None) or {}
        stats = cls(**data)
        stats.prefetch = PrefetchStats(**prefetch)
        return stats

    def as_dict(self) -> Dict[str, float]:
        """Flat metric dictionary for reporting."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l1_hit_rate": self.l1_hit_rate,
            "reservation_fail_rate": self.reservation_fail_rate,
            "bandwidth_utilization": self.bandwidth_utilization,
            "memory_stall_fraction": self.memory_stall_fraction,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
            "prefetch_accuracy": self.prefetch_accuracy,
        }
