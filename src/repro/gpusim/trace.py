"""Trace model: the instruction streams executed by warps.

A workload (``repro.workloads``) compiles into a :class:`KernelTrace` — a set
of CTAs, each holding :class:`WarpTrace` instruction lists.  Memory
instructions carry a per-warp *base address* and a *thread stride*; the
coalescer expands them into cache-line requests.  The paper (§3.4) observes
that the stride between threads of a warp is consistently equal, so this
compact (base, stride) encoding loses nothing the prefetchers care about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence


class Op(enum.Enum):
    """Instruction kinds the timing model distinguishes."""

    ALU = "alu"
    SFU = "sfu"
    LOAD = "load"
    STORE = "store"
    BARRIER = "barrier"


@dataclass(frozen=True, slots=True)
class WarpInstr:
    """One warp-wide instruction.

    ``base_addr``/``thread_stride`` are only meaningful for LOAD/STORE: thread
    *i* of the warp accesses ``base_addr + i * thread_stride``.
    """

    pc: int
    op: Op
    base_addr: int = 0
    thread_stride: int = 0
    size_bytes: int = 4
    #: threads of this warp access unrelated (data-dependent) addresses;
    #: per §3.4 such warps are excluded from prefetch training
    divergent: bool = False

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError("pc must be non-negative")
        if self.op in (Op.LOAD, Op.STORE) and self.base_addr < 0:
            raise ValueError("memory instruction needs a non-negative address")

    @property
    def is_mem(self) -> bool:
        return self.op in (Op.LOAD, Op.STORE)


@dataclass
class WarpTrace:
    """The ordered instruction stream of one warp."""

    warp_id: int
    instrs: List[WarpInstr] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[WarpInstr]:
        return iter(self.instrs)

    def loads(self) -> List[WarpInstr]:
        return [i for i in self.instrs if i.op is Op.LOAD]

    def append(self, instr: WarpInstr) -> None:
        self.instrs.append(instr)


@dataclass
class CTA:
    """A cooperative thread array: a group of warps launched together."""

    cta_id: int
    warps: List[WarpTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.warps)

    @property
    def num_instrs(self) -> int:
        return sum(len(w) for w in self.warps)


@dataclass
class KernelTrace:
    """A full kernel launch: CTAs in dispatch order, plus a label."""

    name: str
    ctas: List[CTA] = field(default_factory=list)

    @property
    def num_warps(self) -> int:
        return sum(len(c) for c in self.ctas)

    @property
    def num_instrs(self) -> int:
        return sum(c.num_instrs for c in self.ctas)

    def all_warps(self) -> List[WarpTrace]:
        return [w for c in self.ctas for w in c.warps]

    def representative_warp(self) -> WarpTrace:
        """The warp executing the most load instructions (used by the paper's
        chain analysis, Figs 9-11)."""
        warps = self.all_warps()
        if not warps:
            raise ValueError("kernel %r has no warps" % self.name)
        return max(warps, key=lambda w: len(w.loads()))


def renumber_warps(ctas: Sequence[CTA]) -> None:
    """Assign globally unique, dense warp ids across CTAs (dispatch order)."""
    next_id = 0
    for cta in ctas:
        for warp in cta.warps:
            warp.warp_id = next_id
            next_id += 1
