"""GPU configuration objects.

The defaults mirror Table 1 of the paper (NVIDIA Volta V100 as modeled in
Accel-Sim v1.2.0).  Because the reproduction runs in pure Python, the
``scaled()`` preset shrinks the SM count and trace lengths while keeping every
per-SM parameter identical — prefetcher behaviour is per-SM, so the shapes of
the paper's results are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.assoc < 1 or self.line_bytes < 1 or self.latency < 0:
            raise ValueError("invalid cache parameters")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                "cache size %d not divisible by assoc*line (%d*%d)"
                % (self.size_bytes, self.assoc, self.line_bytes)
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters in memory-clock cycles (Table 1, ns treated as
    cycles at the modeled clock)."""

    t_ccd: int = 1
    t_rrd: int = 3
    t_rcd: int = 12
    t_ras: int = 28
    t_rp: int = 12
    t_rc: int = 40
    t_cl: int = 12
    t_wl: int = 2
    t_cdlr: int = 3
    t_wr: int = 10
    t_ccdl: int = 2
    t_rtpl: int = 3


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration (Table 1 defaults)."""

    num_sms: int = 80
    core_clock_mhz: int = 1530
    scheduler: str = "gto"  # "gto" (greedy-then-oldest) or "rr"
    schedulers_per_sm: int = 4
    max_threads_per_sm: int = 2048
    warp_size: int = 32
    registers_per_sm: int = 65536

    # Unified L1 data cache / shared memory (128KB, 256-way, 128B, 28-cycle).
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024, assoc=256, line_bytes=128, latency=28
        )
    )
    shared_mem_bytes: int = 0  # carve-out from the unified cache
    #: fetch granularity within a line (0 = whole-line fills). Volta L1s
    #: fetch 32-byte sectors, which cuts fill bandwidth for sparse accesses.
    l1_sector_bytes: int = 0
    mshr_entries: int = 512
    mshr_merge: int = 8
    miss_queue_depth: int = 8

    # Shared L2 (96KB per sub-partition, 24-way, 128B, 212-cycle total trip).
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=96 * 1024, assoc=24, line_bytes=128, latency=212
        )
    )
    l2_banks: int = 64

    # Interconnect between L1s and L2 (bytes per core cycle per SM port).
    icnt_bytes_per_cycle: int = 32
    icnt_latency: int = 20

    # DRAM.
    dram: DRAMTimings = field(default_factory=DRAMTimings)
    dram_channels: int = 8
    dram_banks_per_channel: int = 16
    dram_row_bytes: int = 2048
    dram_clock_ratio: float = 0.5  # memory cycles per core cycle

    # Issue model.
    issue_width: int = 4  # instructions per SM per cycle (one per scheduler)
    alu_latency: int = 4
    sfu_latency: int = 16
    replay_interval: int = 32  # cycles before a reservation-failed access retries

    # Prefetching knobs (Snake defaults from the paper).
    tail_entries: int = 10
    head_entries: int = 32
    throttle_interval: int = 50
    throttle_bw_high: float = 0.70
    throttle_bw_low: float = 0.50
    train_threshold: int = 3  # warps that must confirm a stride
    prefetcher_latency: int = 2  # table search pipeline depth (§5.5)
    max_chain_depth: int = 8
    decouple_grace: int = 4096  # cycles an unused prefetched line is protected

    # Observability (repro.obs).  ``telemetry=True`` makes the GPU build an
    # event bus even when no explicit ``obs`` bus is passed; sinks attached
    # to ``GPU.obs`` then see every event.  ``telemetry_bucket_cycles`` is
    # the default time-series/trace bucket width for the CLI harness.
    telemetry: bool = False
    telemetry_bucket_cycles: int = 1000

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")
        if not 0.0 < self.dram_clock_ratio <= 1.0:
            raise ValueError("dram_clock_ratio must be in (0, 1]")
        if self.telemetry_bucket_cycles < 1:
            raise ValueError("telemetry_bucket_cycles must be >= 1")
        if self.shared_mem_bytes >= self.l1.size_bytes:
            raise ValueError("shared memory cannot consume the whole unified cache")

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def l1_data_bytes(self) -> int:
        """Unified-cache space left after the shared-memory carve-out."""
        return self.l1.size_bytes - self.shared_mem_bytes

    @classmethod
    def volta_v100(cls) -> "GPUConfig":
        """Full-scale Table 1 configuration."""
        return cls()

    @classmethod
    def scaled(cls, num_sms: int = 2) -> "GPUConfig":
        """Python-runtime-friendly preset: fewer SMs, identical per-SM
        parameters except a smaller (proportional) L1 so that the scaled-down
        synthetic working sets exercise the same contention regime."""
        return cls(
            num_sms=num_sms,
            l1=CacheConfig(size_bytes=32 * 1024, assoc=64, line_bytes=128, latency=28),
            l2=CacheConfig(size_bytes=64 * 1024, assoc=16, line_bytes=128, latency=200),
            l2_banks=8,
            mshr_entries=64,
            mshr_merge=6,
            miss_queue_depth=3,
            icnt_bytes_per_cycle=24,
            icnt_latency=60,
            dram_channels=2,
            dram_banks_per_channel=8,
            max_threads_per_sm=1024,
        )

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
