"""GPU configuration objects.

The defaults mirror Table 1 of the paper (NVIDIA Volta V100 as modeled in
Accel-Sim v1.2.0).  Because the reproduction runs in pure Python, the
``scaled()`` preset shrinks the SM count and trace lengths while keeping every
per-SM parameter identical — prefetcher behaviour is per-SM, so the shapes of
the paper's results are preserved.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable, List, Mapping


class InvalidConfigError(ValueError):
    """A configuration carries nonsensical parameters.

    One exception reports *every* violation found (``violations`` keeps the
    individual messages), so a mis-generated sweep config is diagnosed in a
    single round trip instead of one field at a time.  Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` call sites keep
    working.
    """

    def __init__(self, violations: Iterable[str]) -> None:
        self.violations: List[str] = list(violations)
        super().__init__(
            "invalid GPU configuration (%d problem%s):\n%s"
            % (
                len(self.violations),
                "" if len(self.violations) == 1 else "s",
                "\n".join("  - " + v for v in self.violations),
            )
        )


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.assoc < 1 or self.line_bytes < 1 or self.latency < 0:
            raise ValueError("invalid cache parameters")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                "cache size %d not divisible by assoc*line (%d*%d)"
                % (self.size_bytes, self.assoc, self.line_bytes)
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters in memory-clock cycles (Table 1, ns treated as
    cycles at the modeled clock)."""

    t_ccd: int = 1
    t_rrd: int = 3
    t_rcd: int = 12
    t_ras: int = 28
    t_rp: int = 12
    t_rc: int = 40
    t_cl: int = 12
    t_wl: int = 2
    t_cdlr: int = 3
    t_wr: int = 10
    t_ccdl: int = 2
    t_rtpl: int = 3


@dataclass(frozen=True)
class GPUConfig:
    """Top-level GPU configuration (Table 1 defaults)."""

    num_sms: int = 80
    core_clock_mhz: int = 1530
    scheduler: str = "gto"  # "gto" (greedy-then-oldest) or "rr"
    schedulers_per_sm: int = 4
    max_threads_per_sm: int = 2048
    warp_size: int = 32
    registers_per_sm: int = 65536
    #: per-thread register allotment used to derive register-file warp
    #: occupancy (Volta default: 32 regs/thread fills the 64K file at
    #: exactly the 64-warp thread limit)
    registers_per_thread: int = 32

    # Unified L1 data cache / shared memory (128KB, 256-way, 128B, 28-cycle).
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024, assoc=256, line_bytes=128, latency=28
        )
    )
    shared_mem_bytes: int = 0  # carve-out from the unified cache
    #: fetch granularity within a line (0 = whole-line fills). Volta L1s
    #: fetch 32-byte sectors, which cuts fill bandwidth for sparse accesses.
    l1_sector_bytes: int = 0
    mshr_entries: int = 512
    mshr_merge: int = 8
    miss_queue_depth: int = 8

    # Shared L2 (96KB per sub-partition, 24-way, 128B, 212-cycle total trip).
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=96 * 1024, assoc=24, line_bytes=128, latency=212
        )
    )
    l2_banks: int = 64

    # Interconnect between L1s and L2 (bytes per core cycle per SM port).
    icnt_bytes_per_cycle: int = 32
    icnt_latency: int = 20

    # DRAM.
    dram: DRAMTimings = field(default_factory=DRAMTimings)
    dram_channels: int = 8
    dram_banks_per_channel: int = 16
    dram_row_bytes: int = 2048
    dram_clock_ratio: float = 0.5  # memory cycles per core cycle

    # Issue model.
    issue_width: int = 4  # instructions per SM per cycle (one per scheduler)
    alu_latency: int = 4
    sfu_latency: int = 16
    replay_interval: int = 32  # cycles before a reservation-failed access retries

    # Prefetching knobs (Snake defaults from the paper).
    tail_entries: int = 10
    head_entries: int = 32
    throttle_interval: int = 50
    throttle_bw_high: float = 0.70
    throttle_bw_low: float = 0.50
    train_threshold: int = 3  # warps that must confirm a stride
    prefetcher_latency: int = 2  # table search pipeline depth (§5.5)
    max_chain_depth: int = 8
    decouple_grace: int = 4096  # cycles an unused prefetched line is protected

    # Timing-core selection (docs/PERFORMANCE.md).  The default run loop is
    # the event-driven skip-ahead core: SMs are kept in a min-heap keyed by
    # their next-event horizon and per-SM scans touch only resident warps.
    # ``legacy_loop=True`` selects the original step-everything reference
    # loop, kept verbatim for differential testing — both cores must
    # produce cycle-identical statistics on any workload.
    legacy_loop: bool = False

    # Batched hot path (docs/PERFORMANCE.md).  ``batched_tables`` routes
    # Snake chain generation through the Tail table's numpy column-mirror
    # walk (``TailTable.walk_raw``); ``batched_issue`` routes prefetch
    # candidates through the one-pass L1 batch filter
    # (``UnifiedL1Cache.prefetch_batch``).  ``False`` selects the scalar
    # reference paths, retained as differential oracles — both settings
    # must produce identical statistics on any workload (pinned by
    # property tests).
    batched_tables: bool = True
    batched_issue: bool = True

    # Observability (repro.obs).  ``telemetry=True`` makes the GPU build an
    # event bus even when no explicit ``obs`` bus is passed; sinks attached
    # to ``GPU.obs`` then see every event.  ``telemetry_bucket_cycles`` is
    # the default time-series/trace bucket width for the CLI harness.
    telemetry: bool = False
    telemetry_bucket_cycles: int = 1000

    # Resilience (repro.runner / docs/ROBUSTNESS.md).  ``watchdog_cycles``
    # is the forward-progress window: if no instruction retires and no
    # memory request drains for this many cycles, ``GPU.run`` raises
    # ``SimulationHangError`` with a state dump (0 disables).
    # ``max_cycles`` is the hard deadman: any SM clock passing it aborts
    # the run the same way (0 = unlimited).
    watchdog_cycles: int = 100_000
    max_cycles: int = 0

    # Invariant sanitizer (repro.gpusim.sanitizer / docs/ROBUSTNESS.md).
    # ``sanitize=True`` makes ``GPU.run`` audit conservation invariants
    # (request retirement, MSHR balance, NoC monotonicity, table structure,
    # stats identities) every ``sanitize_interval`` simulated cycles and at
    # end of run, raising ``InvariantViolationError`` with a cycle-stamped
    # state dump on the first violation.  Strictly zero-cost when off: the
    # run loop holds a ``None`` and no per-cycle work is added.
    sanitize: bool = False
    sanitize_interval: int = 2000

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every field; raise one :class:`InvalidConfigError` listing
        all violations (no-op on a sane config).

        Runs from ``__post_init__`` (so an invalid config cannot be
        constructed) and again from ``GPU.__init__`` as a guard against
        configs rebuilt through serialization side channels.
        """
        v: List[str] = []
        if self.num_sms < 1:
            v.append("num_sms must be >= 1 (got %d)" % self.num_sms)
        if self.core_clock_mhz < 1:
            v.append("core_clock_mhz must be >= 1 (got %d)" % self.core_clock_mhz)
        if self.registers_per_sm < 1:
            v.append("registers_per_sm must be >= 1 (got %d)" % self.registers_per_sm)
        if self.registers_per_thread < 1:
            v.append(
                "registers_per_thread must be >= 1 (got %d)"
                % self.registers_per_thread
            )
        elif (
            self.warp_size >= 1
            and self.registers_per_sm < self.registers_per_thread * self.warp_size
        ):
            v.append(
                "registers_per_sm (%d) must hold at least one warp "
                "(%d regs/thread x %d lanes)"
                % (self.registers_per_sm, self.registers_per_thread, self.warp_size)
            )
        if self.warp_size < 1:
            v.append("warp_size must be >= 1 (got %d)" % self.warp_size)
        if self.max_threads_per_sm < self.warp_size:
            v.append(
                "max_threads_per_sm (%d) must hold at least one warp (%d)"
                % (self.max_threads_per_sm, self.warp_size)
            )
        if self.schedulers_per_sm < 1:
            v.append("schedulers_per_sm must be >= 1")
        if self.issue_width < 1:
            v.append("issue_width must be >= 1")
        if self.replay_interval < 1:
            v.append("replay_interval must be >= 1")
        if self.alu_latency < 1:
            v.append("alu_latency must be >= 1 (got %d)" % self.alu_latency)
        if self.sfu_latency < 1:
            v.append("sfu_latency must be >= 1 (got %d)" % self.sfu_latency)
        for label, cache in (("l1", self.l1), ("l2", self.l2)):
            if not _is_pow2(cache.line_bytes):
                v.append(
                    "%s line size must be a power of two (got %d)"
                    % (label, cache.line_bytes)
                )
        if self.l1_sector_bytes and (
            not _is_pow2(self.l1_sector_bytes)
            or self.l1.line_bytes % self.l1_sector_bytes != 0
        ):
            v.append(
                "l1_sector_bytes must be a power of two dividing the line "
                "size (got %d for %dB lines)"
                % (self.l1_sector_bytes, self.l1.line_bytes)
            )
        if self.shared_mem_bytes < 0:
            v.append("shared_mem_bytes must be >= 0")
        elif self.shared_mem_bytes >= self.l1.size_bytes:
            v.append("shared memory cannot consume the whole unified cache")
        if self.mshr_entries < 1:
            v.append("mshr_entries must be >= 1 (got %d)" % self.mshr_entries)
        if self.mshr_merge < 1:
            v.append("mshr_merge must be >= 1 (got %d)" % self.mshr_merge)
        if self.miss_queue_depth < 1:
            v.append("miss_queue_depth must be >= 1 (got %d)" % self.miss_queue_depth)
        if self.l2_banks < 1:
            v.append("l2_banks must be >= 1 (got %d)" % self.l2_banks)
        if self.icnt_bytes_per_cycle < 1:
            v.append(
                "icnt_bytes_per_cycle must be >= 1 (got %d)"
                % self.icnt_bytes_per_cycle
            )
        if self.icnt_latency < 0:
            v.append("icnt_latency must be >= 0")
        if self.dram_channels < 1:
            v.append("dram_channels must be >= 1 (got %d)" % self.dram_channels)
        if self.dram_banks_per_channel < 1:
            v.append("dram_banks_per_channel must be >= 1")
        if self.dram_row_bytes < 1:
            v.append("dram_row_bytes must be >= 1")
        if not 0.0 < self.dram_clock_ratio <= 1.0:
            v.append(
                "dram_clock_ratio must be in (0, 1] (got %g)" % self.dram_clock_ratio
            )
        if self.tail_entries < 1:
            v.append("tail_entries must be >= 1 (got %d)" % self.tail_entries)
        if self.head_entries < 1:
            v.append("head_entries must be >= 1 (got %d)" % self.head_entries)
        if self.throttle_interval < 0:
            v.append("throttle_interval must be >= 0")
        if not 0.0 <= self.throttle_bw_low <= self.throttle_bw_high <= 1.0:
            v.append(
                "throttle bandwidth thresholds must satisfy "
                "0 <= low (%g) <= high (%g) <= 1"
                % (self.throttle_bw_low, self.throttle_bw_high)
            )
        if self.train_threshold < 1:
            v.append("train_threshold must be >= 1")
        if self.prefetcher_latency < 0:
            v.append("prefetcher_latency must be >= 0")
        if self.max_chain_depth < 1:
            v.append("max_chain_depth must be >= 1")
        if self.decouple_grace < 0:
            v.append("decouple_grace must be >= 0")
        if self.telemetry_bucket_cycles < 1:
            v.append("telemetry_bucket_cycles must be >= 1")
        if self.watchdog_cycles < 0:
            v.append("watchdog_cycles must be >= 0 (0 disables the watchdog)")
        if self.max_cycles < 0:
            v.append("max_cycles must be >= 0 (0 = unlimited)")
        if self.sanitize_interval < 1:
            v.append("sanitize_interval must be >= 1 (got %d)" % self.sanitize_interval)
        if v:
            raise InvalidConfigError(v)

    @property
    def max_warps_per_sm(self) -> int:
        """Resident-warp capacity: the tighter of the thread limit and the
        register-file limit (each warp reserves ``registers_per_thread``
        registers per lane)."""
        thread_limit = self.max_threads_per_sm // self.warp_size
        register_limit = self.registers_per_sm // (
            self.registers_per_thread * self.warp_size
        )
        return min(thread_limit, register_limit)

    @property
    def l1_data_bytes(self) -> int:
        """Unified-cache space left after the shared-memory carve-out."""
        return self.l1.size_bytes - self.shared_mem_bytes

    @classmethod
    def volta_v100(cls) -> "GPUConfig":
        """Full-scale Table 1 configuration."""
        return cls()

    @classmethod
    def scaled(cls, num_sms: int = 2) -> "GPUConfig":
        """Python-runtime-friendly preset: fewer SMs, identical per-SM
        parameters except a smaller (proportional) L1 so that the scaled-down
        synthetic working sets exercise the same contention regime."""
        return cls(
            num_sms=num_sms,
            l1=CacheConfig(size_bytes=32 * 1024, assoc=64, line_bytes=128, latency=28),
            l2=CacheConfig(size_bytes=64 * 1024, assoc=16, line_bytes=128, latency=200),
            l2_banks=8,
            mshr_entries=64,
            mshr_merge=6,
            miss_queue_depth=3,
            icnt_bytes_per_cycle=24,
            icnt_latency=60,
            dram_channels=2,
            dram_banks_per_channel=8,
            max_threads_per_sm=1024,
        )

    def with_(self, **kwargs: Any) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Plain-data form (nested dataclasses become dicts) — JSON-safe, so
        a config can ride in a :mod:`repro.runner` job spec or checkpoint."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "GPUConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown fields raise :class:`InvalidConfigError` (a checkpoint
        written by a newer revision should fail loudly, not half-apply).
        """
        data = dict(data)
        try:
            for key, sub in (("l1", CacheConfig), ("l2", CacheConfig), ("dram", DRAMTimings)):
                if isinstance(data.get(key), Mapping):
                    data[key] = sub(**data[key])
            return cls(**data)
        except InvalidConfigError:
            raise
        except (TypeError, ValueError) as exc:
            raise InvalidConfigError([str(exc)]) from exc
