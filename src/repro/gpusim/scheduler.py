"""Warp schedulers.

The baseline GPU (Table 1) uses Greedy-Then-Oldest: keep issuing from the
current warp until it stalls, then fall back to the oldest ready warp.  A
loose round-robin scheduler is provided for the "non-greedy scheduling"
setting of the paper's worked example (§3.4) and for ablations.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence


class SchedulableWarp(Protocol):
    """What a scheduler needs to know about a warp."""

    warp_id: int


class WarpScheduler(Protocol):
    """The scheduler interface the SM issue loop drives."""

    def pick(self, ready: Sequence[SchedulableWarp]) -> SchedulableWarp: ...

    def note_issued(self, warp: SchedulableWarp) -> None: ...


class GTOScheduler:
    """Greedy-then-oldest."""

    name = "gto"

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def pick(self, ready: Sequence[SchedulableWarp]) -> SchedulableWarp:
        if not ready:
            raise ValueError("scheduler invoked with no ready warps")
        if self._last is not None:
            for warp in ready:
                if warp.warp_id == self._last:
                    return warp
        oldest = min(ready, key=lambda w: w.warp_id)
        self._last = oldest.warp_id
        return oldest

    def note_issued(self, warp: SchedulableWarp) -> None:
        self._last = warp.warp_id


class RRScheduler:
    """Loose round-robin over warp ids."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, ready: Sequence[SchedulableWarp]) -> SchedulableWarp:
        if not ready:
            raise ValueError("scheduler invoked with no ready warps")
        ordered = sorted(ready, key=lambda w: w.warp_id)
        for warp in ordered:
            if warp.warp_id >= self._next:
                return warp
        return ordered[0]

    def note_issued(self, warp: SchedulableWarp) -> None:
        self._next = warp.warp_id + 1


class TwoLevelScheduler:
    """Two-level scheduler: a small *active* set of warps is scheduled
    round-robin; a warp leaves the set when it stalls long (handled
    implicitly by readiness) and pending warps rotate in.  Captures the
    fetch-group behaviour of Fermi/Kepler-era schedulers and serves as an
    ablation point against GTO."""

    name = "two_level"

    def __init__(self, active_size: int = 8) -> None:
        if active_size < 1:
            raise ValueError("active_size must be >= 1")
        self.active_size = active_size
        self._active: List[int] = []
        self._rr = RRScheduler()

    def pick(self, ready: Sequence[SchedulableWarp]) -> SchedulableWarp:
        if not ready:
            raise ValueError("scheduler invoked with no ready warps")
        ready_ids = {w.warp_id for w in ready}
        # drop active warps that are no longer ready, refill from ready set
        self._active = [w for w in self._active if w in ready_ids]
        for warp in sorted(ready, key=lambda w: w.warp_id):
            if len(self._active) >= self.active_size:
                break
            if warp.warp_id not in self._active:
                self._active.append(warp.warp_id)
        candidates = [w for w in ready if w.warp_id in self._active]
        return self._rr.pick(candidates or list(ready))

    def note_issued(self, warp: SchedulableWarp) -> None:
        self._rr.note_issued(warp)


def make_scheduler(name: str) -> WarpScheduler:
    """Factory keyed by the config's ``scheduler`` string."""
    if name == "gto":
        return GTOScheduler()
    if name == "rr":
        return RRScheduler()
    if name == "two_level":
        return TwoLevelScheduler()
    raise ValueError(
        "unknown scheduler %r (expected 'gto', 'rr' or 'two_level')" % name
    )
