"""Bandwidth-limited interconnect between an SM's L1 and the shared L2.

Modeled as a next-free-time resource: each transfer occupies the channel for
``ceil(bytes / bytes_per_cycle)`` cycles, so latency grows under load — the
effect behind the paper's bandwidth-utilization motivation (Fig 4) and
Snake's bandwidth-triggered throttling (§3.3).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Tuple


class Interconnect:
    """One SM's port into the NoC (request + response modeled as a single
    shared channel, as the paper's utilization metric aggregates both)."""

    def __init__(
        self, bytes_per_cycle: int, latency: int, window: int = 256
    ) -> None:
        if bytes_per_cycle < 1:
            raise ValueError("bytes_per_cycle must be >= 1")
        if latency < 0 or window < 1:
            raise ValueError("invalid interconnect parameters")
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.window = window
        self.next_free = 0
        self.priority_next_free = 0
        self.bytes_transferred = 0
        self._recent: Deque[Tuple[int, int]] = deque()
        # Running byte total of ``_recent`` so utilization is O(expired)
        # instead of a full window sum per query — this is the hottest
        # read in the throttle path.
        self._recent_bytes = 0
        self._window_peak = window * bytes_per_cycle
        # Per-cycle memo for ``measured_utilization``: at a fixed ``now``
        # the value only changes when a send lands in the window, so the
        # memo is invalidated on every send.
        self._util_now = -1
        self._util_value = 0.0

    def send(self, now: int, nbytes: int, priority: bool = False) -> int:
        """Schedule a transfer; returns its arrival time at the far side.

        ``priority=True`` models the demand virtual channel: GPU NoCs serve
        demand responses ahead of prefetch fills, so priority traffic only
        queues behind other priority traffic, while best-effort (prefetch)
        traffic queues behind everything.
        """
        if nbytes < 1:
            raise ValueError("transfer must carry at least one byte")
        busy = math.ceil(nbytes / self.bytes_per_cycle)
        if priority:
            start = max(now, self.priority_next_free)
            self.priority_next_free = start + busy
            self.next_free = max(self.next_free, start + busy)
        else:
            start = max(now, self.next_free)
            self.next_free = start + busy
            self.priority_next_free = max(self.priority_next_free, now)
        self.bytes_transferred += nbytes
        self._recent.append((start, nbytes))
        self._recent_bytes += nbytes
        self._util_now = -1
        return start + busy + self.latency

    def measured_utilization(self, now: int) -> float:
        """Fraction of peak bandwidth used over the trailing window — the
        throttle's trigger metric."""
        if now == self._util_now:
            return self._util_value
        horizon = now - self.window
        recent = self._recent
        while recent and recent[0][0] < horizon:
            self._recent_bytes -= recent.popleft()[1]
        peak = self._window_peak
        value = min(1.0, self._recent_bytes / peak) if peak else 0.0
        self._util_now = now
        self._util_value = value
        return value

    def peak_bytes(self, cycles: int) -> int:
        """Theoretical capacity over a run of ``cycles``."""
        return cycles * self.bytes_per_cycle

    def snapshot(self) -> dict:
        """Plain-data port state for sanitizer / hang-report dumps.  The
        sanitizer compares successive snapshots: both horizons must be
        non-negative and non-decreasing, the priority (demand) horizon can
        never run ahead of the combined one, and the byte counter only
        grows — a horizon that moves backwards means some component
        rewound shared NoC state."""
        return {
            "next_free": self.next_free,
            "priority_next_free": self.priority_next_free,
            "bytes_transferred": self.bytes_transferred,
        }
