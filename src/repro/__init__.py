"""Snake (MICRO 2023) reproduction.

Quickstart::

    from repro import simulate, GPUConfig
    from repro.workloads import build_kernel

    kernel = build_kernel("lps", scale=1.0, seed=7)
    baseline = simulate(kernel, prefetcher="none")
    snake = simulate(kernel, prefetcher="snake")
    print(snake.ipc / baseline.ipc, snake.coverage, snake.accuracy)
"""

from repro.gpusim import GPU, GPUConfig, SimStats, simulate

__version__ = "1.0.0"

__all__ = ["GPU", "GPUConfig", "SimStats", "simulate", "__version__"]
