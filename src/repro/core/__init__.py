"""Snake — the paper's primary contribution."""

from .head_table import HeadTable, Transition
from .snake import SnakePrefetcher
from .tail_table import TailEntry, TailTable, TrainState
from .throttle import NullThrottle, Throttle

__all__ = [
    "HeadTable",
    "NullThrottle",
    "SnakePrefetcher",
    "TailEntry",
    "TailTable",
    "Throttle",
    "TrainState",
    "Transition",
]
