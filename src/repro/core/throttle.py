"""Prefetch throttling (§3.3).

Two triggers halt prefetching:

1. *Space*: when the unified cache has no free line, prefetching stops for a
   fixed interval (50 cycles by default — §5.4 shows the sweet spot) so the
   already-prefetched data has time to be consumed; during that window the L1
   demand side is also confined to its own space (handled by the cache).
2. *Bandwidth*: when measured NoC utilization crosses ~70 % of peak,
   prefetching halts until it falls back below ~50 % (hysteresis).
"""

from __future__ import annotations

from repro.gpusim.unified_cache import UnifiedL1Cache


class Throttle:
    """Space- and bandwidth-triggered prefetch gate."""

    def __init__(
        self,
        interval: int = 50,
        bw_high: float = 0.70,
        bw_low: float = 0.50,
        space_threshold: float = 0.02,
        backlog_threshold: float = 0.40,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if not 0.0 <= bw_low <= bw_high <= 1.0:
            raise ValueError("need 0 <= bw_low <= bw_high <= 1")
        if not 0.0 <= space_threshold < 1.0:
            raise ValueError("space_threshold must be in [0, 1)")
        self.interval = interval
        self.bw_high = bw_high
        self.bw_low = bw_low
        self.space_threshold = space_threshold
        self.backlog_threshold = backlog_threshold
        self.halted_until = -1
        self.bw_halted = False
        self.space_halts = 0
        self.bw_halts = 0

    def allow(self, now: int, l1: UnifiedL1Cache, utilization: float) -> bool:
        """May a prefetch issue at ``now``?  ``utilization`` is the measured
        fraction of total (request + response) NoC peak bandwidth.  Updates
        trigger state."""
        if now < self.halted_until:
            return False

        if self.bw_halted:
            if utilization >= self.bw_low:
                return False
            self.bw_halted = False
        elif utilization >= self.bw_high:
            self.bw_halted = True
            self.bw_halts += 1
            return False

        # Space trigger: the prefetch space is exhausted while a sizeable
        # backlog of prefetched-but-unused lines is still waiting — pause so
        # the data has time to be consumed (§3.3, footnote 3).
        if (
            l1.free_space_fraction(now) <= self.space_threshold
            and l1.unused_prefetch_fraction(now) >= self.backlog_threshold
        ):
            self.halted_until = now + self.interval
            l1.throttled_until = self.halted_until  # confine demand side too
            self.space_halts += 1
            return False
        return True

    def chain_depth_limit(self, utilization: float, max_depth: int) -> int:
        """§3.2: the inter-thread prefetch depth is throttle-controlled —
        full depth while the NoC is comfortable, halved as utilization
        approaches the high watermark."""
        if utilization < self.bw_low:
            return max_depth
        if utilization < self.bw_high:
            return max(1, max_depth // 2)
        return 1

    def snapshot(self) -> dict:
        """Plain-data trigger state for sanitizer / hang-report dumps."""
        return {
            "halted_until": self.halted_until,
            "bw_halted": self.bw_halted,
            "space_halts": self.space_halts,
            "bw_halts": self.bw_halts,
        }


class NullThrottle:
    """No throttling (baseline prefetchers, Snake-DT, Snake-T)."""

    interval = 0
    space_halts = 0
    bw_halts = 0

    def allow(self, now: int, l1: UnifiedL1Cache, utilization: float) -> bool:
        return True

    def chain_depth_limit(self, utilization: float, max_depth: int) -> int:
        return max_depth

    def snapshot(self) -> dict:
        return {"halted_until": -1, "bw_halted": False,
                "space_halts": 0, "bw_halts": 0}
