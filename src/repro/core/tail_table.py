"""Snake's Tail table (§3.1).

Each entry stores a chain link: head PC (PC1), the consecutive PC (PC2), the
inter-thread stride between their addresses, the warp-id vector of warps that
confirmed the link, the intra-warp stride, per-stride train states, and the
inter-warp stride.  New entries are created under the three conditions of
Fig 12 (no PC1 match / no PC2 match / stride mismatch); the inter-thread
stride is *promoted* once ``train_threshold`` distinct warps confirm it.

Eviction follows §3.1's improved policy: among the least-recently-used
quarter of the table, evict the entry with the fewest set bits in its warp-id
vector.  The popcount-only variant (Fig 22) is selectable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .head_table import SNAPSHOT_VERSION


class TrainState(enum.Enum):
    """Train-status encodings used in the paper's figures."""

    NOT_TRAINED = "00"
    PROMOTED = "10"
    TRAINED = "11"

    @property
    def prefetchable(self) -> bool:
        return self is not TrainState.NOT_TRAINED


@dataclass
class TailEntry:
    """One chain link."""

    pc1: int
    pc2: int
    inter_thread_stride: int
    t1: TrainState = TrainState.NOT_TRAINED
    warp_vector: int = 0
    intra_stride: Optional[int] = None
    t2: TrainState = TrainState.NOT_TRAINED
    inter_warp_stride: Optional[int] = None
    last_use: int = 0
    _intra_votes: dict = field(default_factory=dict, repr=False)

    def set_warp(self, warp_id: int) -> None:
        self.warp_vector |= 1 << (warp_id % 64)

    def clear_warp(self, warp_id: int) -> None:
        self.warp_vector &= ~(1 << (warp_id % 64))

    def has_warp(self, warp_id: int) -> bool:
        return bool(self.warp_vector >> (warp_id % 64) & 1)

    @property
    def popcount(self) -> int:
        return bin(self.warp_vector).count("1")


class TailTable:
    """Fixed-capacity chain store with LRU+popcount eviction."""

    def __init__(
        self,
        capacity: int = 10,
        train_threshold: int = 3,
        eviction: str = "lru+pop",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if eviction not in ("lru+pop", "pop"):
            raise ValueError("eviction must be 'lru+pop' or 'pop'")
        self.capacity = capacity
        self.train_threshold = train_threshold
        self.eviction = eviction
        self._entries: List[TailEntry] = []
        self._tick = 0
        self.lookups = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TailEntry]:
        return list(self._entries)

    def _touch(self, entry: TailEntry) -> None:
        self._tick += 1
        entry.last_use = self._tick

    def find(
        self, pc1: int, pc2: Optional[int] = None, stride: Optional[int] = None
    ) -> List[TailEntry]:
        """All entries matching the given fields (CAM search)."""
        self.lookups += 1
        result = []
        for entry in self._entries:
            if entry.pc1 != pc1:
                continue
            if pc2 is not None and entry.pc2 != pc2:
                continue
            if stride is not None and entry.inter_thread_stride != stride:
                continue
            result.append(entry)
        return result

    def chain_next(self, pc: int, warp_id: int) -> Optional[TailEntry]:
        """The trained link whose PC1 is ``pc`` and whose warp vector includes
        ``warp_id`` — used when walking a chain deeper (Fig 13)."""
        self.lookups += 1
        for entry in self._entries:
            if (
                entry.pc1 == pc
                and entry.t1.prefetchable
                and entry.has_warp(warp_id)
            ):
                return entry
        return None

    # ------------------------------------------------------------------

    def _evict_one(self) -> None:
        """Apply the configured eviction policy to make room."""
        self.evictions += 1
        if self.eviction == "pop":
            victim = min(self._entries, key=lambda e: (e.popcount, e.last_use))
        else:
            # The LRU candidate group must hold at least two entries or the
            # popcount tie-break could never save a well-confirmed chain.
            group_size = max(2, math.ceil(len(self._entries) / 4))
            lru_group = sorted(self._entries, key=lambda e: e.last_use)[:group_size]
            victim = min(lru_group, key=lambda e: (e.popcount, e.last_use))
        self._entries.remove(victim)

    def record(self, warp_id: int, pc1: int, pc2: int, stride: int) -> TailEntry:
        """Digest a Head-table transition (the detection step, Fig 12).

        Finds or creates the (pc1, pc2, stride) entry, sets the warp's bit,
        clears the warp from now-contradicted sibling entries, and promotes
        the inter-thread stride when enough warps agree.
        """
        match: Optional[TailEntry] = None
        for entry in self.find(pc1):
            if entry.pc2 == pc2 and entry.inter_thread_stride == stride:
                match = entry
            elif entry.has_warp(warp_id):
                # The warp's behaviour changed: remove it from the stale link
                # and send that link back to detection (§3.2).
                entry.clear_warp(warp_id)
                if entry.popcount == 0:
                    entry.t1 = TrainState.NOT_TRAINED

        if match is None:
            match = TailEntry(pc1=pc1, pc2=pc2, inter_thread_stride=stride)
            if len(self._entries) >= self.capacity:
                self._evict_one()
            self._entries.append(match)

        match.set_warp(warp_id)
        self._touch(match)
        if (
            match.t1 is TrainState.NOT_TRAINED
            and match.popcount >= self.train_threshold
        ):
            match.t1 = TrainState.PROMOTED
        elif match.t1 is TrainState.PROMOTED and match.popcount > self.train_threshold:
            match.t1 = TrainState.TRAINED
        return match

    def record_intra(self, warp_id: int, pc: int, stride: int) -> None:
        """Register an intra-warp stride observation for ``pc`` (a warp
        re-executed the PC; §3.1's two re-execution cases collapse to the
        delta between its successive addresses).  Promoted once
        ``train_threshold`` warps agree on the stride.

        A looping PC whose chain links keep churning (e.g. its successor
        load is data-dependent) still deserves an intra-warp stride, so a
        self-link entry is created when no entry for the PC exists."""
        if not self.find(pc):
            entry = TailEntry(pc1=pc, pc2=pc, inter_thread_stride=stride)
            if len(self._entries) >= self.capacity:
                self._evict_one()
            self._entries.append(entry)
        for entry in self.find(pc):
            votes = entry._intra_votes.setdefault(stride, set())
            votes.add(warp_id)
            if entry.intra_stride == stride:
                if len(votes) >= self.train_threshold:
                    entry.t2 = TrainState.TRAINED
            elif len(votes) >= len(
                entry._intra_votes.get(entry.intra_stride, set())
            ):
                entry.intra_stride = stride
                if len(votes) >= self.train_threshold:
                    entry.t2 = TrainState.TRAINED
                elif entry.t2 is not TrainState.TRAINED:
                    entry.t2 = TrainState.NOT_TRAINED
            self._touch(entry)

    def record_inter_warp(self, pc: int, stride: int) -> None:
        """Install a detected inter-warp stride (already consensus-checked by
        the caller — no train field needed, per §3.1)."""
        for entry in self.find(pc):
            entry.inter_warp_stride = stride
            self._touch(entry)

    @property
    def trained(self) -> bool:
        return any(e.t1.prefetchable for e in self._entries)

    # ------------------------------------------------------------------
    # Durability (snapshot/restore — repro.serve journal, warm-start sweeps)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic image of the full table state.

        Entries keep their store order and each entry's intra-stride vote
        map is emitted as ``[stride, sorted(voters)]`` pairs in vote
        insertion order, so identical update sequences serialize to
        byte-identical snapshots.
        """
        return {
            "v": SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "train_threshold": self.train_threshold,
            "eviction": self.eviction,
            "tick": self._tick,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "entries": [
                {
                    "pc1": e.pc1,
                    "pc2": e.pc2,
                    "inter_thread_stride": e.inter_thread_stride,
                    "t1": e.t1.value,
                    "warp_vector": e.warp_vector,
                    "intra_stride": e.intra_stride,
                    "t2": e.t2.value,
                    "inter_warp_stride": e.inter_warp_stride,
                    "last_use": e.last_use,
                    "intra_votes": [
                        [stride, sorted(voters)]
                        for stride, voters in e._intra_votes.items()
                    ],
                }
                for e in self._entries
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "TailTable":
        """Rebuild a table from :meth:`snapshot` output (exact state:
        entry order, train states, vote sets, LRU ticks and counters)."""
        if data.get("v") != SNAPSHOT_VERSION:
            raise ValueError(
                "unsupported TailTable snapshot version %r" % (data.get("v"),)
            )
        table = cls(
            capacity=int(data["capacity"]),
            train_threshold=int(data["train_threshold"]),
            eviction=str(data["eviction"]),
        )
        table._tick = int(data["tick"])
        table.lookups = int(data["lookups"])
        table.evictions = int(data["evictions"])
        entries = data["entries"]
        if len(entries) > table.capacity:
            raise ValueError(
                "TailTable snapshot holds %d entries > capacity %d"
                % (len(entries), table.capacity)
            )
        for raw in entries:
            entry = TailEntry(
                pc1=int(raw["pc1"]),
                pc2=int(raw["pc2"]),
                inter_thread_stride=int(raw["inter_thread_stride"]),
                t1=TrainState(raw["t1"]),
                warp_vector=int(raw["warp_vector"]),
                intra_stride=(
                    None if raw["intra_stride"] is None
                    else int(raw["intra_stride"])
                ),
                t2=TrainState(raw["t2"]),
                inter_warp_stride=(
                    None if raw["inter_warp_stride"] is None
                    else int(raw["inter_warp_stride"])
                ),
                last_use=int(raw["last_use"]),
            )
            for stride, voters in raw["intra_votes"]:
                entry._intra_votes[int(stride)] = {int(v) for v in voters}
            table._entries.append(entry)
        return table

    def structural_violations(self, label: str = "tail") -> "List[str]":
        """Hardware-structure invariants (sanitizer hook).

        The table is a fixed CAM: entry count is bounded by capacity, every
        warp-confirmation vector fits its 64-bit field, train states are
        valid encodings, and a transitive chain walk from any PC terminates
        within the table size (the walker's visited-pair set is what makes
        loops — which are legal chains — safe; a walk that can take more
        distinct hops than the table holds entries means the store itself
        is corrupt)."""
        violations: List[str] = []
        if len(self._entries) > self.capacity:
            violations.append(
                "%s holds %d entries > capacity %d"
                % (label, len(self._entries), self.capacity)
            )
        for entry in self._entries:
            if not 0 <= entry.warp_vector < (1 << 64):
                violations.append(
                    "%s entry (%#x->%#x) warp vector %d outside its 64-bit field"
                    % (label, entry.pc1, entry.pc2, entry.warp_vector)
                )
            if not isinstance(entry.t1, TrainState) or not isinstance(
                entry.t2, TrainState
            ):
                violations.append(
                    "%s entry (%#x->%#x) carries a non-TrainState encoding"
                    % (label, entry.pc1, entry.pc2)
                )
        # Chain-walk termination: mirror the production walker (first
        # prefetchable link per PC, visited-pair cycle guard) and bound the
        # hop count by the entry count.
        bound = len(self._entries)
        for start in sorted({e.pc1 for e in self._entries}):
            pc = start
            visited = set()
            hops = 0
            while hops <= bound + 1:
                entry = next(
                    (e for e in self._entries
                     if e.pc1 == pc and e.t1.prefetchable),
                    None,
                )
                if entry is None or (entry.pc1, entry.pc2) in visited:
                    break
                visited.add((entry.pc1, entry.pc2))
                pc = entry.pc2
                hops += 1
            if hops > bound:
                violations.append(
                    "%s chain walk from %#x took %d hops in a %d-entry table"
                    % (label, start, hops, bound)
                )
        return violations
