"""Snake's Tail table (§3.1).

Each entry stores a chain link: head PC (PC1), the consecutive PC (PC2), the
inter-thread stride between their addresses, the warp-id vector of warps that
confirmed the link, the intra-warp stride, per-stride train states, and the
inter-warp stride.  New entries are created under the three conditions of
Fig 12 (no PC1 match / no PC2 match / stride mismatch); the inter-thread
stride is *promoted* once ``train_threshold`` distinct warps confirm it.

Eviction follows §3.1's improved policy: among the least-recently-used
quarter of the table, evict the entry with the fewest set bits in its warp-id
vector.  The popcount-only variant (Fig 22) is selectable.

The store is a CAM indexed by PC1: entries live both in a store-ordered list
(snapshot order, eviction scans) and in a per-PC1 bucket index, with the
walk-relevant fields (stride / train / warp-vector / popcount — the link,
confidence and delta columns) mirrored into preallocated numpy columns.
:meth:`walk_raw` consumes those columns to fan out and transitively walk a
whole variable-length chain per trigger in one call, mirroring the
raw-arguments convention of ``repro.gpusim.coalescer.coalesce_lines``.
Anything that mutates entries behind the table's back (the fault injector)
must call :meth:`mark_dirty` to invalidate the column mirror.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .head_table import SNAPSHOT_VERSION

#: Column values beyond this magnitude (far outside any modelled address
#: space; reachable only through compounded fault corruption) would risk
#: int64 overflow in vectorized arithmetic, so the walk falls back to the
#: exact python path while any are present.
_COL_BOUND = 1 << 52

#: Minimum PC-bucket size for the vectorized column reads to beat plain
#: attribute access (numpy call overhead dominates below this); both sides
#: of the threshold produce identical results.
_NP_MIN = 16


class TrainState(enum.Enum):
    """Train-status encodings used in the paper's figures."""

    NOT_TRAINED = "00"
    PROMOTED = "10"
    TRAINED = "11"

    @property
    def prefetchable(self) -> bool:
        return self is not TrainState.NOT_TRAINED


@dataclass(slots=True)
class TailEntry:
    """One chain link."""

    pc1: int
    pc2: int
    inter_thread_stride: int
    t1: TrainState = TrainState.NOT_TRAINED
    warp_vector: int = 0
    intra_stride: Optional[int] = None
    t2: TrainState = TrainState.NOT_TRAINED
    inter_warp_stride: Optional[int] = None
    last_use: int = 0
    _intra_votes: dict = field(default_factory=dict, repr=False)
    #: Row slot in the owning table's column mirror (not entry state).
    _row: int = field(default=-1, repr=False, compare=False)

    def set_warp(self, warp_id: int) -> None:
        self.warp_vector |= 1 << (warp_id % 64)

    def clear_warp(self, warp_id: int) -> None:
        self.warp_vector &= ~(1 << (warp_id % 64))

    def has_warp(self, warp_id: int) -> bool:
        return bool(self.warp_vector >> (warp_id % 64) & 1)

    @property
    def popcount(self) -> int:
        return bin(self.warp_vector).count("1")


class TailTable:
    """Fixed-capacity chain store with LRU+popcount eviction."""

    def __init__(
        self,
        capacity: int = 10,
        train_threshold: int = 3,
        eviction: str = "lru+pop",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if eviction not in ("lru+pop", "pop"):
            raise ValueError("eviction must be 'lru+pop' or 'pop'")
        self.capacity = capacity
        self.train_threshold = train_threshold
        self.eviction = eviction
        self._entries: List[TailEntry] = []
        self._tick = 0
        self.lookups = 0
        self.evictions = 0
        # CAM index + numpy column mirror (see module docstring).
        self._pc_index: Dict[int, List[TailEntry]] = {}
        self._pc_rows: Dict[int, np.ndarray] = {}
        self._free_rows: List[int] = list(range(capacity - 1, -1, -1))
        self._col_stride = np.zeros(capacity, dtype=np.int64)
        self._col_train = np.zeros(capacity, dtype=np.uint8)
        self._col_wv = np.zeros(capacity, dtype=np.uint64)
        self._col_pop = np.zeros(capacity, dtype=np.int16)
        self._wide = False
        self._dirty = False

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TailEntry]:
        return list(self._entries)

    def _touch(self, entry: TailEntry) -> None:
        self._tick += 1
        entry.last_use = self._tick

    # ------------------------------------------------------------------
    # CAM index / column mirror maintenance

    def mark_dirty(self) -> None:
        """Invalidate the column mirror after out-of-band entry mutation
        (fault injection mutates :class:`TailEntry` fields in place)."""
        self._dirty = True

    def _sync(self, entry: TailEntry) -> None:
        """Write one entry's walk-relevant fields through to the columns."""
        row = entry._row
        stride = entry.inter_thread_stride
        wv = entry.warp_vector
        if -_COL_BOUND < stride < _COL_BOUND and 0 <= wv < (1 << 64):
            self._col_stride[row] = stride
            self._col_wv[row] = wv
        else:
            self._wide = True
        self._col_train[row] = 0 if entry.t1 is TrainState.NOT_TRAINED else 1
        self._col_pop[row] = min(bin(wv).count("1"), 64) if wv >= 0 else 0

    def _rebuild(self) -> None:
        """Recompute the PC index and column mirror from the entry list."""
        self._pc_index.clear()
        self._pc_rows.clear()
        self._wide = False
        for row, entry in enumerate(self._entries):
            entry._row = row
            self._pc_index.setdefault(entry.pc1, []).append(entry)
            self._sync(entry)
        self._free_rows = list(range(self.capacity - 1, len(self._entries) - 1, -1))
        self._dirty = False

    def _install(self, entry: TailEntry) -> None:
        self._entries.append(entry)
        self._pc_index.setdefault(entry.pc1, []).append(entry)
        self._pc_rows.pop(entry.pc1, None)
        entry._row = self._free_rows.pop()
        self._sync(entry)

    def _remove(self, entry: TailEntry) -> None:
        for i, candidate in enumerate(self._entries):
            if candidate is entry:
                del self._entries[i]
                break
        bucket = self._pc_index.get(entry.pc1, [])
        for i, candidate in enumerate(bucket):
            if candidate is entry:
                del bucket[i]
                break
        if not bucket:
            self._pc_index.pop(entry.pc1, None)
        self._pc_rows.pop(entry.pc1, None)
        self._free_rows.append(entry._row)

    def _rows_for(self, pc: int) -> np.ndarray:
        rows = self._pc_rows.get(pc)
        if rows is None:
            bucket = self._pc_index.get(pc, ())
            rows = np.fromiter(
                (e._row for e in bucket), dtype=np.intp, count=len(bucket)
            )
            self._pc_rows[pc] = rows
        return rows

    # ------------------------------------------------------------------

    def find(
        self, pc1: int, pc2: Optional[int] = None, stride: Optional[int] = None
    ) -> List[TailEntry]:
        """All entries matching the given fields (CAM search)."""
        self.lookups += 1
        bucket = self._pc_index.get(pc1)
        if not bucket:
            return []
        if pc2 is None and stride is None:
            return list(bucket)
        result = []
        for entry in bucket:
            if pc2 is not None and entry.pc2 != pc2:
                continue
            if stride is not None and entry.inter_thread_stride != stride:
                continue
            result.append(entry)
        return result

    def chain_next(self, pc: int, warp_id: int) -> Optional[TailEntry]:
        """The trained link whose PC1 is ``pc`` and whose warp vector includes
        ``warp_id`` — used when walking a chain deeper (Fig 13)."""
        self.lookups += 1
        for entry in self._pc_index.get(pc, ()):
            if entry.t1.prefetchable and entry.has_warp(warp_id):
                return entry
        return None

    # ------------------------------------------------------------------
    # Batched chain walk (Fig 13 in one call)

    def walk_raw(
        self, pc: int, base_addr: int, warp_id: int, depth_limit: int
    ) -> List[Tuple[int, int]]:
        """Fan out and transitively walk the chain rooted at ``pc`` in one
        call over the column mirror; returns ``(target_addr, depth)`` pairs.

        Raw-arguments API (mirrors ``coalesce_lines``): no event object, no
        per-hop CAM calls.  The result — including request order and the
        ``lookups`` counter accounting — is pinned byte-identical to the
        scalar reference walk (``SnakePrefetcher._chain_requests``) by
        property tests; the scalar walk remains the differential oracle
        behind ``GPUConfig.batched_tables``.
        """
        if self._dirty:
            self._rebuild()
        use_np = not self._wide and -_COL_BOUND < base_addr < _COL_BOUND
        idx_get = self._pc_index.get
        not_trained = TrainState.NOT_TRAINED
        lookups = 1

        out: List[Tuple[int, int]] = []
        # Depth-1 fan-out: every trained link out of the trigger PC (§3.4) —
        # one CAM search in the scalar reference.
        bucket = idx_get(pc)
        if bucket:
            if use_np and len(bucket) >= _NP_MIN:
                rows = self._rows_for(pc)
                trained = rows[self._col_train[rows] != 0]
                if trained.size:
                    for target in (
                        base_addr + self._col_stride[trained]
                    ).tolist():
                        if target >= 0:
                            out.append((target, 1))
            else:
                for entry in bucket:
                    if entry.t1 is not not_trained:
                        target = base_addr + entry.inter_thread_stride
                        if target >= 0:
                            out.append((target, 1))

        # Transitive walk along the best-confirmed link per hop.  The numpy
        # shift operand is only worth constructing when some bucket could
        # clear the _NP_MIN threshold (bucket size <= table size).
        wmod = warp_id % 64
        warp_bit = 1 << wmod
        if use_np and len(self._entries) >= _NP_MIN:
            shift = np.uint64(wmod)
        else:
            use_np = False
        cur_pc, addr = pc, base_addr
        visited = set()
        for depth in range(1, depth_limit + 1):
            # One CAM search per hop attempt in the scalar reference.
            lookups += 1
            bucket = idx_get(cur_pc)
            best: Optional[TailEntry] = None
            if bucket:
                if use_np and len(bucket) >= _NP_MIN:
                    rows = self._rows_for(cur_pc)
                    train = self._col_train[rows]
                    key = (
                        ((self._col_wv[rows] >> shift) & np.uint64(1)).astype(
                            np.int64
                        )
                        << 8
                    ) + self._col_pop[rows]
                    key[train == 0] = -1
                    pick = int(np.argmax(key))
                    if key[pick] >= 0:
                        best = bucket[pick]
                else:
                    # The (warp-bit, popcount) tuple key flattened to one int:
                    # popcount <= 64 < 256, so the bit dominates and strict
                    # ordering is preserved.
                    best_key = -1
                    for entry in bucket:
                        if entry.t1 is not not_trained:
                            wv = entry.warp_vector
                            key2 = (256 if wv & warp_bit else 0) + bin(
                                wv
                            ).count("1")
                            if key2 > best_key:
                                best, best_key = entry, key2
            if best is None or (best.pc1, best.pc2) in visited:
                break
            visited.add((best.pc1, best.pc2))
            addr = addr + best.inter_thread_stride
            if addr < 0:
                break
            out.append((addr, depth))
            cur_pc = best.pc2
        self.lookups += lookups
        return out

    # ------------------------------------------------------------------

    def _evict_one(self) -> None:
        """Apply the configured eviction policy to make room."""
        self.evictions += 1
        if self.eviction == "pop":
            victim = min(self._entries, key=lambda e: (e.popcount, e.last_use))
        else:
            # The LRU candidate group must hold at least two entries or the
            # popcount tie-break could never save a well-confirmed chain.
            group_size = max(2, math.ceil(len(self._entries) / 4))
            lru_group = sorted(self._entries, key=lambda e: e.last_use)[:group_size]
            victim = min(lru_group, key=lambda e: (e.popcount, e.last_use))
        self._remove(victim)

    def record(self, warp_id: int, pc1: int, pc2: int, stride: int) -> TailEntry:
        """Digest a Head-table transition (the detection step, Fig 12).

        Finds or creates the (pc1, pc2, stride) entry, sets the warp's bit,
        clears the warp from now-contradicted sibling entries, and promotes
        the inter-thread stride when enough warps agree.
        """
        match: Optional[TailEntry] = None
        # One CAM search; the bucket is scanned in place (mutations below
        # never add or remove bucket members), sparing find()'s list copy.
        self.lookups += 1
        warp_bit = 1 << (warp_id % 64)
        for entry in self._pc_index.get(pc1, ()):
            if entry.pc2 == pc2 and entry.inter_thread_stride == stride:
                match = entry
            elif entry.warp_vector & warp_bit:
                # The warp's behaviour changed: remove it from the stale link
                # and send that link back to detection (§3.2).
                entry.warp_vector &= ~warp_bit
                if entry.warp_vector == 0:
                    entry.t1 = TrainState.NOT_TRAINED
                self._sync(entry)

        if match is None:
            match = TailEntry(pc1=pc1, pc2=pc2, inter_thread_stride=stride)
            if len(self._entries) >= self.capacity:
                self._evict_one()
            self._install(match)

        match.warp_vector |= warp_bit
        self._touch(match)
        popcount = bin(match.warp_vector).count("1")
        if (
            match.t1 is TrainState.NOT_TRAINED
            and popcount >= self.train_threshold
        ):
            match.t1 = TrainState.PROMOTED
        elif match.t1 is TrainState.PROMOTED and popcount > self.train_threshold:
            match.t1 = TrainState.TRAINED
        self._sync(match)
        return match

    def record_intra(self, warp_id: int, pc: int, stride: int) -> None:
        """Register an intra-warp stride observation for ``pc`` (a warp
        re-executed the PC; §3.1's two re-execution cases collapse to the
        delta between its successive addresses).  Promoted once
        ``train_threshold`` warps agree on the stride.

        A looping PC whose chain links keep churning (e.g. its successor
        load is data-dependent) still deserves an intra-warp stride, so a
        self-link entry is created when no entry for the PC exists."""
        # Two CAM searches, as in the reference shape (existence probe +
        # update scan); scanned in place to spare find()'s list copies.
        self.lookups += 1
        if not self._pc_index.get(pc):
            entry = TailEntry(pc1=pc, pc2=pc, inter_thread_stride=stride)
            if len(self._entries) >= self.capacity:
                self._evict_one()
            self._install(entry)
        self.lookups += 1
        for entry in self._pc_index.get(pc, ()):
            votes = entry._intra_votes.setdefault(stride, set())
            votes.add(warp_id)
            if entry.intra_stride == stride:
                if len(votes) >= self.train_threshold:
                    entry.t2 = TrainState.TRAINED
            elif len(votes) >= len(
                entry._intra_votes.get(entry.intra_stride, set())
            ):
                entry.intra_stride = stride
                if len(votes) >= self.train_threshold:
                    entry.t2 = TrainState.TRAINED
                elif entry.t2 is not TrainState.TRAINED:
                    entry.t2 = TrainState.NOT_TRAINED
            self._touch(entry)

    def record_inter_warp(self, pc: int, stride: int) -> None:
        """Install a detected inter-warp stride (already consensus-checked by
        the caller — no train field needed, per §3.1)."""
        for entry in self.find(pc):
            entry.inter_warp_stride = stride
            self._touch(entry)

    @property
    def trained(self) -> bool:
        return any(e.t1.prefetchable for e in self._entries)

    # ------------------------------------------------------------------
    # Durability (snapshot/restore — repro.serve journal, warm-start sweeps)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic image of the full table state.

        Entries keep their store order and each entry's intra-stride vote
        map is emitted as ``[stride, sorted(voters)]`` pairs in vote
        insertion order, so identical update sequences serialize to
        byte-identical snapshots.  The PC index and column mirror are
        derived state and never serialized.
        """
        return {
            "v": SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "train_threshold": self.train_threshold,
            "eviction": self.eviction,
            "tick": self._tick,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "entries": [
                {
                    "pc1": e.pc1,
                    "pc2": e.pc2,
                    "inter_thread_stride": e.inter_thread_stride,
                    "t1": e.t1.value,
                    "warp_vector": e.warp_vector,
                    "intra_stride": e.intra_stride,
                    "t2": e.t2.value,
                    "inter_warp_stride": e.inter_warp_stride,
                    "last_use": e.last_use,
                    "intra_votes": [
                        [stride, sorted(voters)]
                        for stride, voters in e._intra_votes.items()
                    ],
                }
                for e in self._entries
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "TailTable":
        """Rebuild a table from :meth:`snapshot` output (exact state:
        entry order, train states, vote sets, LRU ticks and counters; the
        PC index and numpy column mirror are rebuilt entry by entry so the
        restored table walks — and re-snapshots — byte-identically)."""
        if data.get("v") != SNAPSHOT_VERSION:
            raise ValueError(
                "unsupported TailTable snapshot version %r" % (data.get("v"),)
            )
        table = cls(
            capacity=int(data["capacity"]),
            train_threshold=int(data["train_threshold"]),
            eviction=str(data["eviction"]),
        )
        table._tick = int(data["tick"])
        table.lookups = int(data["lookups"])
        table.evictions = int(data["evictions"])
        entries = data["entries"]
        if len(entries) > table.capacity:
            raise ValueError(
                "TailTable snapshot holds %d entries > capacity %d"
                % (len(entries), table.capacity)
            )
        for raw in entries:
            entry = TailEntry(
                pc1=int(raw["pc1"]),
                pc2=int(raw["pc2"]),
                inter_thread_stride=int(raw["inter_thread_stride"]),
                t1=TrainState(raw["t1"]),
                warp_vector=int(raw["warp_vector"]),
                intra_stride=(
                    None if raw["intra_stride"] is None
                    else int(raw["intra_stride"])
                ),
                t2=TrainState(raw["t2"]),
                inter_warp_stride=(
                    None if raw["inter_warp_stride"] is None
                    else int(raw["inter_warp_stride"])
                ),
                last_use=int(raw["last_use"]),
            )
            for stride, voters in raw["intra_votes"]:
                entry._intra_votes[int(stride)] = {int(v) for v in voters}
            table._install(entry)
        return table

    def structural_violations(self, label: str = "tail") -> "List[str]":
        """Hardware-structure invariants (sanitizer hook).

        The table is a fixed CAM: entry count is bounded by capacity, every
        warp-confirmation vector fits its 64-bit field, train states are
        valid encodings, and a transitive chain walk from any PC terminates
        within the table size (the walker's visited-pair set is what makes
        loops — which are legal chains — safe; a walk that can take more
        distinct hops than the table holds entries means the store itself
        is corrupt)."""
        violations: List[str] = []
        if len(self._entries) > self.capacity:
            violations.append(
                "%s holds %d entries > capacity %d"
                % (label, len(self._entries), self.capacity)
            )
        for entry in self._entries:
            if not 0 <= entry.warp_vector < (1 << 64):
                violations.append(
                    "%s entry (%#x->%#x) warp vector %d outside its 64-bit field"
                    % (label, entry.pc1, entry.pc2, entry.warp_vector)
                )
            if not isinstance(entry.t1, TrainState) or not isinstance(
                entry.t2, TrainState
            ):
                violations.append(
                    "%s entry (%#x->%#x) carries a non-TrainState encoding"
                    % (label, entry.pc1, entry.pc2)
                )
        # Chain-walk termination: mirror the production walker (first
        # prefetchable link per PC, visited-pair cycle guard) and bound the
        # hop count by the entry count.
        bound = len(self._entries)
        for start in sorted({e.pc1 for e in self._entries}):
            pc = start
            visited = set()
            hops = 0
            while hops <= bound + 1:
                entry = next(
                    (e for e in self._entries
                     if e.pc1 == pc and e.t1.prefetchable),
                    None,
                )
                if entry is None or (entry.pc1, entry.pc2) in visited:
                    break
                visited.add((entry.pc1, entry.pc2))
                pc = entry.pc2
                hops += 1
            if hops > bound:
                violations.append(
                    "%s chain walk from %#x took %d hops in a %d-entry table"
                    % (label, start, hops, bound)
                )
        return violations
