"""The Snake prefetcher (§3).

Snake watches every demand load, maintains the Head/Tail tables, and issues
prefetches along three axes:

* **Inter-thread chains** — the paper's contribution: trained (PC1→PC2,
  stride) links are walked transitively (Fig 13) so one access prefetches
  the warp's next several loads.  Chains get priority (§3.4).
* **Intra-warp strides** — the delta between a warp's successive executions
  of the same PC, promoted after three warps agree.
* **Inter-warp strides** — the fixed delta between warps executing the same
  PC, installed once three distinct warps exhibit it.

Variant flags reproduce the paper's comparison points: ``s-Snake`` keeps
only the chains; decoupling/throttling are composed at the GPU level (see
:func:`repro.prefetch.build_setup`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import ChainWalkEvent
from repro.prefetch.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.prefetch.stride import ConsensusTracker

from .head_table import HeadTable, SNAPSHOT_VERSION
from .tail_table import TailEntry, TailTable, TrainState


class SnakePrefetcher(Prefetcher):
    """Variable-length chain-based prefetcher."""

    name = "snake"

    def __init__(
        self,
        head_entries: int = 32,
        tail_entries: int = 10,
        train_threshold: int = 3,
        max_chain_depth: int = 8,
        inter_warp_degree: int = 2,
        intra_degree: int = 2,
        use_chains: bool = True,
        use_intra: bool = True,
        use_inter_warp: bool = True,
        eviction: str = "lru+pop",
        per_app: bool = False,
        batched: bool = True,
    ) -> None:
        if max_chain_depth < 1:
            raise ValueError("max_chain_depth must be >= 1")
        self.head = HeadTable(capacity=head_entries)
        self.tail = TailTable(
            capacity=tail_entries,
            train_threshold=train_threshold,
            eviction=eviction,
        )
        # Multi-application extension (§1): chains are detected within each
        # application, so each app gets its own Head/Tail tables.
        self.per_app = per_app
        self._head_entries = head_entries
        self._tail_entries = tail_entries
        self._eviction = eviction
        self._app_tables: Dict[int, Tuple[HeadTable, TailTable]] = {
            0: (self.head, self.tail)
        }
        self._depth_limit = max_chain_depth
        self.max_chain_depth = max_chain_depth
        self.inter_warp_degree = inter_warp_degree
        self.intra_degree = intra_degree
        self.use_chains = use_chains
        self.use_intra = use_intra
        self.use_inter_warp = use_inter_warp
        self.train_threshold = train_threshold
        # Batched hot path: chain generation goes through the Tail table's
        # column-mirror walk (``TailTable.walk_raw``); False selects the
        # scalar reference walk, retained as the differential oracle
        # (``GPUConfig.batched_tables``).  A strategy flag, not learner
        # state — deliberately absent from snapshots.
        self.batched = batched

        # Intra-warp detection: last address per (app, warp, pc).
        self._intra_last: Dict[Tuple[int, int, int], int] = {}
        # Inter-warp detection: the last TWO (warp, addr) observations per
        # (app, pc) — the Head table's doubled columns (§3.1), which keep
        # stride detection alive under a greedy scheduler that runs one warp
        # far ahead of the others — plus consensus votes.
        self._iw_last: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._iw_consensus: Dict[Tuple[int, int], ConsensusTracker] = {}

    # ------------------------------------------------------------------
    # Multi-app table selection and throttle hooks

    def set_depth_limit(self, limit: int) -> None:
        """Throttle hook (§3.2): bound the chain-walk depth for subsequent
        requests."""
        self._depth_limit = max(1, limit)

    def _select_app(self, app_id: int) -> None:
        """Point ``self.head``/``self.tail`` at the issuing application's
        tables (no-op unless ``per_app`` is enabled)."""
        if not self.per_app:
            return
        if app_id not in self._app_tables:
            self._app_tables[app_id] = (
                HeadTable(capacity=self._head_entries),
                TailTable(
                    capacity=self._tail_entries,
                    train_threshold=self.train_threshold,
                    eviction=self._eviction,
                ),
            )
        self.head, self.tail = self._app_tables[app_id]

    # ------------------------------------------------------------------
    # Detection (§3.1)

    def _detect(self, event: AccessEvent) -> None:
        transition = self.head.update(event.warp_id, event.pc, event.base_addr)
        self._train_tail(
            event,
            transition.pc1 if transition is not None else 0,
            transition.stride if transition is not None else None,
        )

    def _train_tail(
        self, event: AccessEvent, pc1: int, stride: Optional[int]
    ) -> None:
        """Tail-side training for one access, given the Head-table
        transition (``stride is None`` when the warp had no previous load)."""
        if stride is not None and stride != 0:
            self.tail.record(event.warp_id, pc1, event.pc, stride)

        if self.use_intra:
            key = (event.app_id, event.warp_id, event.pc)
            last = self._intra_last.get(key)
            if last is not None and event.base_addr != last:
                self.tail.record_intra(
                    event.warp_id, event.pc, event.base_addr - last
                )
            self._intra_last[key] = event.base_addr

        if self.use_inter_warp:
            slots = self._iw_last.setdefault((event.app_id, event.pc), [])
            for warp_id, addr in slots:
                if warp_id == event.warp_id:
                    continue
                gap = event.warp_id - warp_id
                delta = event.base_addr - addr
                if gap != 0 and delta % gap == 0:
                    tracker = self._iw_consensus.setdefault(
                        (event.app_id, event.pc),
                        ConsensusTracker(threshold=self.train_threshold),
                    )
                    trained = tracker.vote(event.warp_id, delta // gap)
                    if trained is not None:
                        self.tail.record_inter_warp(event.pc, trained)
            slots.append((event.warp_id, event.base_addr))
            if len(slots) > 2:
                del slots[0]

    # ------------------------------------------------------------------
    # Prefetch generation (§3.2)

    def _chain_requests(self, event: AccessEvent) -> List[PrefetchRequest]:
        """Walk the chain starting at the current PC (Fig 13).

        Different warp groups may have confirmed *different* strides for the
        same PC pair (§3.4 — e.g. a tiled kernel's in-tile step and its
        tile-boundary jump), so every trained link out of the triggering PC
        issues a depth-1 request; the walk then continues transitively along
        the best-confirmed link only.
        """
        requests: List[PrefetchRequest] = []
        for entry in self.tail.find(event.pc):
            if not entry.t1.prefetchable:
                continue
            target = event.base_addr + entry.inter_thread_stride
            if target >= 0:
                requests.append(PrefetchRequest(base_addr=target, depth=1))

        pc, addr = event.pc, event.base_addr
        visited = set()
        effective_depth = min(self.max_chain_depth, self._depth_limit)
        for depth in range(1, effective_depth + 1):
            entry = self._prefetchable_link(pc, event.warp_id)
            if entry is None or (entry.pc1, entry.pc2) in visited:
                break
            visited.add((entry.pc1, entry.pc2))
            addr = addr + entry.inter_thread_stride
            if addr < 0:
                break
            requests.append(PrefetchRequest(base_addr=addr, depth=depth))
            pc = entry.pc2
        return requests

    def _prefetchable_link(self, pc: int, warp_id: int) -> Optional[TailEntry]:
        """The best trained link out of ``pc``: once promoted, a link serves
        *all* future warps (§3.2).  Among competing links for the same PC,
        prefer one this warp confirmed, then the most-confirmed one."""
        best = None
        best_key = None
        for entry in self.tail.find(pc):
            if not entry.t1.prefetchable:
                continue
            key = (entry.has_warp(warp_id), entry.popcount)
            if best is None or key > best_key:
                best, best_key = entry, key
        return best

    def _intra_requests(self, event: AccessEvent) -> List[PrefetchRequest]:
        for entry in self.tail.find(event.pc):
            if entry.t2.prefetchable and entry.intra_stride:
                return [
                    PrefetchRequest(base_addr=event.base_addr + k * entry.intra_stride, depth=k)
                    for k in range(1, self.intra_degree + 1)
                    if event.base_addr + k * entry.intra_stride >= 0
                ]
        return []

    def _inter_warp_requests(self, event: AccessEvent) -> List[PrefetchRequest]:
        tracker = self._iw_consensus.get((event.app_id, event.pc))
        if tracker is None or tracker.trained_stride is None:
            return []
        stride = tracker.trained_stride
        requests = []
        for k in range(1, self.inter_warp_degree + 1):
            target = event.base_addr + k * stride
            if target >= 0:
                requests.append(PrefetchRequest(base_addr=target, depth=k))
        return requests

    # ------------------------------------------------------------------

    def observe(self, event: AccessEvent) -> List[PrefetchRequest]:
        self._select_app(event.app_id)
        if event.divergent:
            # §3.4: warps whose threads do not share a uniform stride are
            # excluded from prefetching — training on them would only churn
            # the tables.  The Head entry is still advanced so the next
            # uniform load does not record a bogus transition.
            self.head.update(event.warp_id, event.pc, event.base_addr)
            return []
        self._detect(event)
        return self._generate(event)

    def _generate(self, event: AccessEvent) -> List[PrefetchRequest]:
        """Prefetch generation for one (already trained-on) access."""
        if self.batched:
            return [
                PrefetchRequest(base_addr=addr, depth=depth)
                for addr, depth in self._generate_raw(event)
            ]
        requests: List[PrefetchRequest] = []
        if self.use_chains:
            requests.extend(self._chain_requests(event))
        if self.use_intra:
            requests.extend(self._intra_requests(event))
        if self.use_inter_warp:
            requests.extend(self._inter_warp_requests(event))

        # Inter-thread first (higher accuracy, §3.4), then de-duplicate.
        seen = set()
        unique: List[PrefetchRequest] = []
        for request in requests:
            if request.base_addr not in seen:
                seen.add(request.base_addr)
                unique.append(request)
        if unique and self.obs.enabled:
            self.obs.emit(
                ChainWalkEvent(
                    cycle=event.now,
                    sm_id=self.obs_sm_id,
                    warp_id=event.warp_id,
                    pc=event.pc,
                    depth=max(r.depth for r in unique),
                    requests=len(unique),
                )
            )
        return unique

    def _generate_raw(self, event: AccessEvent) -> List[Tuple[int, int]]:
        """Deduplicated ``(base_addr, depth)`` pairs for one trained-on
        access — the allocation-light lane under both :meth:`_generate`
        (which boxes pairs into :class:`PrefetchRequest`) and the SM's
        batched issue path (:meth:`observe_raw`), which consumes the raw
        pairs directly.  Ordering, deduplication, ``lookups`` accounting
        and telemetry match the scalar path exactly."""
        pairs: List[Tuple[int, int]]
        if self.use_chains:
            pairs = self.tail.walk_raw(
                event.pc, event.base_addr, event.warp_id,
                min(self.max_chain_depth, self._depth_limit),
            )
        else:
            pairs = []
        base = event.base_addr
        if self.use_intra:
            # One CAM search, bucket scanned in place (find()'s accounting,
            # without its list copy).
            tail = self.tail
            tail.lookups += 1
            for entry in tail._pc_index.get(event.pc, ()):
                if entry.t2.prefetchable and entry.intra_stride:
                    stride = entry.intra_stride
                    pairs.extend(
                        (base + k * stride, k)
                        for k in range(1, self.intra_degree + 1)
                        if base + k * stride >= 0
                    )
                    break
        if self.use_inter_warp:
            tracker = self._iw_consensus.get((event.app_id, event.pc))
            if tracker is not None and tracker.trained_stride is not None:
                stride = tracker.trained_stride
                pairs.extend(
                    (base + k * stride, k)
                    for k in range(1, self.inter_warp_degree + 1)
                    if base + k * stride >= 0
                )

        # Inter-thread first (higher accuracy, §3.4), then de-duplicate.
        seen = set()
        unique: List[Tuple[int, int]] = []
        for pair in pairs:
            addr = pair[0]
            if addr not in seen:
                seen.add(addr)
                unique.append(pair)
        if unique and self.obs.enabled:
            self.obs.emit(
                ChainWalkEvent(
                    cycle=event.now,
                    sm_id=self.obs_sm_id,
                    warp_id=event.warp_id,
                    pc=event.pc,
                    depth=max(d for _, d in unique),
                    requests=len(unique),
                )
            )
        return unique

    def observe_raw(self, event: AccessEvent) -> List[Tuple[int, int]]:
        """Digest one access and return raw ``(base_addr, depth)`` pairs.

        The SM's batched issue path (``GPUConfig.batched_issue``) uses this
        lane to skip per-request :class:`PrefetchRequest` boxing — the
        batch issuer only consumes base addresses.  Learner state
        transitions and the pair stream are identical to :meth:`observe`
        (property-pinned); with ``batched=False`` it simply unboxes the
        scalar oracle's requests.
        """
        if not self.batched:
            return [
                (r.base_addr, r.depth) for r in self.observe(event)
            ]
        self._select_app(event.app_id)
        if event.divergent:
            self.head.update(event.warp_id, event.pc, event.base_addr)
            return []
        self._detect(event)
        return self._generate_raw(event)

    def observe_batch(
        self, events: Sequence[AccessEvent]
    ) -> List[List[PrefetchRequest]]:
        """Train and predict for a whole batch of accesses in one sweep.

        The Head-table updates for the entire batch run as one vectorized
        ``update_batch`` call; Tail training and chain walks then proceed
        per event in input order, so the learner state, ``lookups``
        accounting, and every prediction list are identical to N sequential
        :meth:`observe` calls (the serve digest-parity property).  Falls
        back to the sequential path for per-app table routing or inputs the
        int64 fast path cannot represent.
        """
        if self.per_app or not events:
            return [self.observe(event) for event in events]
        n = len(events)
        try:
            warps = np.fromiter(
                (e.warp_id for e in events), dtype=np.int64, count=n
            )
            pcs = np.fromiter((e.pc for e in events), dtype=np.int64, count=n)
            addrs = np.fromiter(
                (e.base_addr for e in events), dtype=np.int64, count=n
            )
        except OverflowError:
            return [self.observe(event) for event in events]
        pc1s, strides, valid = self.head.update_batch(warps, pcs, addrs)
        valid_l = valid.tolist()
        pc1s_l = pc1s.tolist()
        strides_l = strides.tolist()
        results: List[List[PrefetchRequest]] = []
        for i, event in enumerate(events):
            if event.divergent:
                # Head entry already advanced by the batch update.
                results.append([])
                continue
            self._train_tail(
                event,
                int(pc1s_l[i]),
                int(strides_l[i]) if valid_l[i] else None,
            )
            results.append(self._generate(event))
        return results

    def tables(self) -> List[Tuple[int, HeadTable, TailTable]]:
        """Every (app_id, head, tail) table pair this prefetcher owns —
        one pair unless ``per_app`` multiplied them.  The sanitizer audits
        structural invariants through this, and the fault injector uses it
        to corrupt entries in whichever table set is live."""
        return [
            (app_id, head, tail)
            for app_id, (head, tail) in sorted(self._app_tables.items())
        ]

    @property
    def trained(self) -> bool:
        if self.per_app:
            return any(t.trained for _, t in self._app_tables.values())
        return self.tail.trained

    def table_accesses(self) -> int:
        """Hardware table transactions for energy accounting: one Head
        update plus one parallel Tail CAM search per observed load (§5.5's
        two-cycle pipeline), regardless of how many software ``find`` calls
        the model uses internally."""
        if self.per_app:
            return sum(2 * h.accesses for h, _ in self._app_tables.values())
        return 2 * self.head.accesses

    # ------------------------------------------------------------------
    # Durability (snapshot/restore — repro.serve journal, warm-start sweeps)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic image of the full learner state.

        Everything the online model accumulates is captured: per-app
        Head/Tail tables, intra-warp last addresses, the inter-warp
        observation slots and consensus votes, and the throttle's current
        depth limit.  Two learners that absorbed the same event sequence
        produce byte-identical serialized snapshots, which is the property
        the :mod:`repro.serve` write-ahead journal's recovery certificate
        rests on.
        """
        return {
            "v": SNAPSHOT_VERSION,
            "config": {
                "head_entries": self._head_entries,
                "tail_entries": self._tail_entries,
                "train_threshold": self.train_threshold,
                "max_chain_depth": self.max_chain_depth,
                "inter_warp_degree": self.inter_warp_degree,
                "intra_degree": self.intra_degree,
                "use_chains": self.use_chains,
                "use_intra": self.use_intra,
                "use_inter_warp": self.use_inter_warp,
                "eviction": self._eviction,
                "per_app": self.per_app,
            },
            "depth_limit": self._depth_limit,
            "app_tables": [
                [app_id, head.snapshot(), tail.snapshot()]
                for app_id, (head, tail) in sorted(self._app_tables.items())
            ],
            "intra_last": [
                [app_id, warp_id, pc, addr]
                for (app_id, warp_id, pc), addr in self._intra_last.items()
            ],
            "iw_last": [
                [app_id, pc, [[w, a] for w, a in slots]]
                for (app_id, pc), slots in self._iw_last.items()
            ],
            "iw_consensus": [
                [app_id, pc, tracker.snapshot()]
                for (app_id, pc), tracker in self._iw_consensus.items()
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "SnakePrefetcher":
        """Rebuild a learner from :meth:`snapshot` output.

        The restored instance is behaviourally identical to the one that
        produced the snapshot: feeding both the same subsequent events
        yields the same predictions and the same next snapshot.
        """
        if data.get("v") != SNAPSHOT_VERSION:
            raise ValueError(
                "unsupported SnakePrefetcher snapshot version %r"
                % (data.get("v"),)
            )
        config = dict(data["config"])
        prefetcher = cls(
            head_entries=int(config["head_entries"]),
            tail_entries=int(config["tail_entries"]),
            train_threshold=int(config["train_threshold"]),
            max_chain_depth=int(config["max_chain_depth"]),
            inter_warp_degree=int(config["inter_warp_degree"]),
            intra_degree=int(config["intra_degree"]),
            use_chains=bool(config["use_chains"]),
            use_intra=bool(config["use_intra"]),
            use_inter_warp=bool(config["use_inter_warp"]),
            eviction=str(config["eviction"]),
            per_app=bool(config["per_app"]),
        )
        prefetcher._depth_limit = int(data["depth_limit"])
        prefetcher._app_tables = {
            int(app_id): (HeadTable.restore(head), TailTable.restore(tail))
            for app_id, head, tail in data["app_tables"]
        }
        if 0 not in prefetcher._app_tables:
            raise ValueError("SnakePrefetcher snapshot lacks app 0 tables")
        prefetcher.head, prefetcher.tail = prefetcher._app_tables[0]
        prefetcher._intra_last = {
            (int(a), int(w), int(p)): int(addr)
            for a, w, p, addr in data["intra_last"]
        }
        prefetcher._iw_last = {
            (int(a), int(p)): [(int(w), int(addr)) for w, addr in slots]
            for a, p, slots in data["iw_last"]
        }
        prefetcher._iw_consensus = {
            (int(a), int(p)): ConsensusTracker.restore(tracker)
            for a, p, tracker in data["iw_consensus"]
        }
        return prefetcher
