"""Snake's Head table (§3.1).

Indexed by warp id, each entry holds the warp's last executed load PC and the
address it requested.  On every load the entry is updated and the table emits
a :class:`Transition` — (previous PC, current PC, address delta) — which
trains the Tail table.

The hardware table has N = #warps/2 rows with doubled warp-id/address
columns so that an aggressive (greedy) scheduler cannot starve inter-warp
detection; here capacity is expressed directly in warps and eviction is LRU,
which models the same storage bound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

#: int64 magnitudes below this cannot overflow when subtracted pairwise.
_SAFE_MAG = 1 << 62

#: Schema version carried by every table snapshot (bumped on layout change).
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class Transition:
    """What the Head table forwards to the Tail table on an update."""

    warp_id: int
    pc1: int
    pc2: int
    stride: int


class HeadTable:
    """Per-warp last-load tracker with bounded capacity."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rows: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self.accesses = 0

    def update(self, warp_id: int, pc: int, addr: int) -> Optional[Transition]:
        """Record a load; returns the transition from the warp's previous
        load, or None on the warp's first load (or after eviction)."""
        self.accesses += 1
        previous = self._rows.pop(warp_id, None)
        self._rows[warp_id] = (pc, addr)
        if len(self._rows) > self.capacity:
            self._rows.popitem(last=False)  # LRU warp falls out
        if previous is None:
            return None
        prev_pc, prev_addr = previous
        return Transition(
            warp_id=warp_id, pc1=prev_pc, pc2=pc, stride=addr - prev_addr
        )

    def update_batch(
        self,
        warp_ids: Sequence[int],
        pcs: Sequence[int],
        addrs: Sequence[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Record a batch of loads in one call (vectorized stride updates).

        Accepts aligned sequences, applies every update in input order (LRU
        eviction included — slot ``i`` sees the table exactly as N
        sequential :meth:`update` calls would), and returns
        ``(pc1s, strides, valid)`` arrays: per slot, the transition from the
        warp's previous load, with ``valid[i] == False`` marking a first
        load or post-eviction slot (where ``update`` returns None).  The
        stride column is computed as one vectorized subtraction instead of
        N ``Transition`` allocations; equivalence with the scalar path is
        pinned by property tests.

        Raises before any mutation if the inputs cannot be represented as
        int64 — callers fall back to sequential :meth:`update`.
        """
        warp_arr = np.asarray(warp_ids, dtype=np.int64)
        pc_arr = np.asarray(pcs, dtype=np.int64)
        addr_arr = np.asarray(addrs, dtype=np.int64)
        n = int(warp_arr.shape[0])
        self.accesses += n
        prev_pc_list = [0] * n
        prev_addr_list = [0] * n
        valid = np.zeros(n, dtype=bool)
        rows = self._rows
        capacity = self.capacity
        warps = warp_arr.tolist()
        pcs_l = pc_arr.tolist()
        addrs_l = addr_arr.tolist()
        for i in range(n):
            previous = rows.pop(warps[i], None)
            rows[warps[i]] = (pcs_l[i], addrs_l[i])
            if len(rows) > capacity:
                rows.popitem(last=False)  # LRU warp falls out
            if previous is not None:
                prev_pc_list[i] = previous[0]
                prev_addr_list[i] = previous[1]
                valid[i] = True
        try:
            # Rows written before this table adopted int64 batching may hold
            # arbitrarily wide python ints; those overflow the fast path and
            # drop to exact object arithmetic below.
            prev_pc = np.array(prev_pc_list, dtype=np.int64)
            prev_addr = np.array(prev_addr_list, dtype=np.int64)
            if (
                (np.abs(prev_addr) < _SAFE_MAG).all()
                and (np.abs(addr_arr) < _SAFE_MAG).all()
            ):
                strides = addr_arr - prev_addr
            else:
                raise OverflowError
        except OverflowError:
            prev_pc = np.array(prev_pc_list, dtype=object)
            strides = np.array(
                [a - p for a, p in zip(addrs_l, prev_addr_list)], dtype=object
            )
        return prev_pc, strides, valid

    def lookup(self, warp_id: int) -> Optional[Tuple[int, int]]:
        return self._rows.get(warp_id)

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # Durability (snapshot/restore — repro.serve journal, warm-start sweeps)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, deterministic image of the full table state.

        Rows are listed in LRU order (the ``OrderedDict``'s insertion
        order), so two tables that absorbed the same update sequence
        produce byte-identical serialized snapshots.
        """
        return {
            "v": SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "accesses": self.accesses,
            "rows": [
                [warp_id, pc, addr]
                for warp_id, (pc, addr) in self._rows.items()
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "HeadTable":
        """Rebuild a table from :meth:`snapshot` output (exact state,
        including LRU order and the access counter)."""
        if data.get("v") != SNAPSHOT_VERSION:
            raise ValueError(
                "unsupported HeadTable snapshot version %r" % (data.get("v"),)
            )
        table = cls(capacity=int(data["capacity"]))
        table.accesses = int(data["accesses"])
        rows = data["rows"]
        if len(rows) > table.capacity:
            raise ValueError(
                "HeadTable snapshot holds %d rows > capacity %d"
                % (len(rows), table.capacity)
            )
        for row in rows:
            warp_id, pc, addr = row
            table._rows[int(warp_id)] = (int(pc), int(addr))
        return table
