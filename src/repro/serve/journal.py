"""Durable serve state: periodic snapshots plus a write-ahead journal.

Layout inside the service's data directory::

    snapshot.json    full ServiceState image (atomic tmp + os.replace)
    journal.jsonl    one record per state mutation since process start
    journal.jsonl.corrupt   quarantined torn fragments (forensics)

Every mutating operation — an admit that created a session, an applied
access — is appended to the journal (flushed, optionally fsynced) *after*
the state transition and *before* the response is sent, so an
acknowledged mutation is always recoverable.  Every ``snapshot_every``
mutations the full state is snapshotted atomically.

Recovery composes the two: restore the newest snapshot, then replay
every journal record whose sequence number exceeds the snapshot's.  The
records carry their sequence numbers precisely so the crash window
*between* writing a snapshot and truncating the journal is idempotent —
stale records replay as no-ops by the ``seq`` guard rather than
double-applying.  A torn trailing journal line (the ``kill -9``
signature) is quarantined via the shared :mod:`repro.durable` helper;
interior corruption refuses recovery loudly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.durable import (
    JsonlCorruptionError,
    quarantine_fragment,
    scan_jsonl,
)

from .state import ServeConfig, ServiceState

SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.jsonl"


class JournalError(ValueError):
    """The durable state is damaged beyond the recoverable trailing line."""


@dataclass
class RecoveryReport:
    """What :meth:`Journal.recover` rebuilt, for telemetry and the chaos
    certificate."""

    state: ServiceState
    snapshot_seq: int = 0      # seq recorded in the snapshot (0 = none)
    replayed: int = 0          # journal records applied on top
    skipped: int = 0           # stale records idempotently ignored
    quarantined: int = 0       # torn fragments diverted to the sidecar
    errors: List[str] = field(default_factory=list)


class Journal:
    """The service's durability engine.

    ``fsync=False`` (the default) flushes every append to the OS — which
    survives ``kill -9`` of the *process*, the fault the chaos harness
    certifies — while ``fsync=True`` additionally forces the page cache
    down for machine-crash durability at a large latency cost.
    """

    def __init__(self, data_dir: Union[str, Path], *,
                 snapshot_every: int = 1000, fsync: bool = False) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.data_dir = Path(data_dir)
        self.snapshot_path = self.data_dir / SNAPSHOT_NAME
        self.journal_path = self.data_dir / JOURNAL_NAME
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._handle: Optional[TextIO] = None
        self._since_snapshot = 0
        self.appended = 0
        self.snapshots = 0

    # ------------------------------------------------------------------
    # Writing

    def open(self) -> None:
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._handle = self.journal_path.open("a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def record_admit(self, seq: int, client: str) -> None:
        self._append({"q": seq, "op": "admit", "c": client})

    def record_access(self, seq: int, client: str, warp: int, pc: int,
                      addr: int, app: int) -> None:
        self._append({
            "q": seq, "op": "access", "c": client,
            "w": warp, "p": pc, "a": addr, "app": app,
        })

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError("journal is not open for append")
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appended += 1
        self._since_snapshot += 1

    def maybe_snapshot(self, state: ServiceState) -> bool:
        """Snapshot when the journal has grown ``snapshot_every`` records
        past the last one; returns True when a snapshot was written."""
        if self._since_snapshot < self.snapshot_every:
            return False
        self.write_snapshot(state)
        return True

    def write_snapshot(self, state: ServiceState) -> None:
        """Atomically persist the full state, then truncate the journal.

        Crash-ordering argument: the snapshot lands via ``os.replace``
        (readers see old-complete or new-complete, never torn).  If the
        process dies between the replace and the truncate, the journal
        still holds records with ``seq <= snapshot.seq`` — recovery skips
        them by the idempotence guard, so the window is harmless.
        """
        self.data_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        payload = json.dumps(
            state.snapshot(), sort_keys=True, separators=(",", ":")
        )
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        self.close()
        self.journal_path.write_text("")
        self.open()
        self._since_snapshot = 0
        self.snapshots += 1

    def tear(self) -> None:
        """Chaos hook (``journal.torn``): append a torn half-record, as a
        writer killed mid-append would leave it."""
        with self.journal_path.open("ab") as handle:
            handle.write(b'{"q": 999999999, "op": "access", "c": "torn-by')

    # ------------------------------------------------------------------
    # Recovery

    @classmethod
    def recover(cls, data_dir: Union[str, Path],
                config: Optional[ServeConfig] = None) -> RecoveryReport:
        """Rebuild the service state from snapshot + journal.

        ``config`` seeds a *fresh* state when no snapshot exists; once a
        snapshot exists its embedded config wins (state and config must
        never diverge).  Raises :class:`JournalError` on interior
        corruption or a record that cannot replay — recovering *around*
        acknowledged state would silently lose it.
        """
        data_dir = Path(data_dir)
        snapshot_path = data_dir / SNAPSHOT_NAME
        journal_path = data_dir / JOURNAL_NAME

        if snapshot_path.exists():
            try:
                state = ServiceState.restore(
                    json.loads(snapshot_path.read_text(encoding="utf-8"))
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise JournalError(
                    "corrupt snapshot %s: %s" % (snapshot_path, exc)
                ) from exc
            report = RecoveryReport(state=state, snapshot_seq=state.seq)
        else:
            report = RecoveryReport(state=ServiceState(config))

        if not journal_path.exists():
            return report
        try:
            scan = scan_jsonl(journal_path.read_bytes(), path=journal_path)
        except JsonlCorruptionError as exc:
            raise JournalError(
                "corrupt journal %s: undecodable record %d (%s)"
                % (journal_path, exc.line_index, exc)
            ) from exc
        if scan.torn is not None:
            quarantine_fragment(journal_path, scan.torn)
            report.quarantined += 1
            # Rewrite the journal without the torn tail so a snapshot-less
            # restart does not re-quarantine (and re-count) the same tear.
            journal_path.write_bytes(
                b"".join(
                    json.dumps(r, sort_keys=True,
                               separators=(",", ":")).encode("utf-8") + b"\n"
                    for r in scan.records
                )
            )

        state = report.state
        for index, record in enumerate(scan.records):
            if not isinstance(record, dict) or "q" not in record:
                raise JournalError(
                    "journal record %d carries no sequence number: %r"
                    % (index, record)
                )
            seq = int(record["q"])
            if seq <= report.snapshot_seq:
                report.skipped += 1   # pre-snapshot record: idempotent no-op
                continue
            op = record.get("op")
            if op == "admit":
                result = state.admit(str(record["c"]))
                if not result.ok or not result.created:
                    raise JournalError(
                        "journal admit %d did not recreate session %r"
                        % (index, record.get("c"))
                    )
            elif op == "access":
                applied = state.apply(
                    str(record["c"]), int(record["w"]), int(record["p"]),
                    int(record["a"]), int(record.get("app", 0)),
                )
                if applied is None:
                    raise JournalError(
                        "journal access %d targets unknown session %r"
                        % (index, record.get("c"))
                    )
            else:
                raise JournalError(
                    "journal record %d has unknown op %r" % (index, op)
                )
            if state.seq != seq:
                raise JournalError(
                    "replay divergence at record %d: reached seq %d, "
                    "journal says %d" % (index, state.seq, seq)
                )
            report.replayed += 1
        return report


__all__ = ["Journal", "JournalError", "RecoveryReport",
           "JOURNAL_NAME", "SNAPSHOT_NAME"]
