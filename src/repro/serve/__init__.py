"""repro.serve: a crash-recoverable online prefetch-prediction service.

The package turns the offline Snake reproduction into an online service
that ingests ``AccessEvent``-shaped trace streams and answers prefetch
prediction queries, engineered for the failure modes an online system
actually meets:

* :mod:`.protocol` — sans-I/O frame codec + strict request validation
* :mod:`.state`    — the deterministic core: admission, PC-sharded
  ``SnakePrefetcher`` sessions, circuit breakers, stride fallback
* :mod:`.journal`  — snapshots + write-ahead journal; deterministic
  byte-identical recovery
* :mod:`.service`  — the asyncio shell: backpressure, deadlines,
  slow-client eviction, probes
* :mod:`.loadgen`  — workload-suite replay as N concurrent clients
* :mod:`.chaos`    — seeded fault injection ending in a recovery
  certificate (kill -9 + torn journal + digest comparison)
"""

from .chaos import (
    SERVE_DEFAULT_RATES,
    SERVE_SITES,
    ServeChaosReport,
    ServeFaultPlan,
    run_serve_chaos,
    serve_catalog,
)
from .journal import Journal, JournalError, RecoveryReport
from .loadgen import LoadReport, ServeClient, run_loadgen, suite_events
from .protocol import (
    MAX_FRAME_BYTES,
    NACK_REASONS,
    OPS,
    FrameDecoder,
    FrameError,
    ack,
    encode_frame,
    nack,
    validate_request,
)
from .service import (
    PORT_FILE,
    PrefetchServer,
    ServeSettings,
    ServerStats,
    run_server,
)
from .state import ServeConfig, ServiceState

__all__ = [
    "MAX_FRAME_BYTES",
    "NACK_REASONS",
    "OPS",
    "PORT_FILE",
    "SERVE_DEFAULT_RATES",
    "SERVE_SITES",
    "FrameDecoder",
    "FrameError",
    "Journal",
    "JournalError",
    "LoadReport",
    "PrefetchServer",
    "RecoveryReport",
    "ServeChaosReport",
    "ServeClient",
    "ServeConfig",
    "ServeFaultPlan",
    "ServeSettings",
    "ServerStats",
    "ServiceState",
    "ack",
    "encode_frame",
    "nack",
    "run_loadgen",
    "run_serve_chaos",
    "run_server",
    "serve_catalog",
    "suite_events",
    "validate_request",
]
