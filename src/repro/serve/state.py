"""The service's deterministic core: sessions, shards, breakers, fallback.

Everything in this module is sans-I/O and **replay-deterministic**: the
next state is a pure function of the current state and the applied
record.  That single property is what the write-ahead journal's recovery
certificate rests on — a restarted service that replays the journal must
reach a byte-identical state digest — so the module is explicit about
which operations mutate:

* :meth:`ServiceState.admit` mutates only when it creates (and possibly
  evicts) a session; the caller journals exactly those admits.
* :meth:`ServiceState.apply` always mutates and is always journaled.
* :meth:`ServiceState.predict`, :meth:`stats`, :meth:`audit`,
  :meth:`snapshot` are read-only by construction — a prediction query
  must never perturb the digest, or replay certification breaks.

Consequently the counters serialized into the snapshot cover *journaled*
operations only; purely-served traffic (denials, sheds, predictions) is
tallied at the asyncio layer, outside the durable state.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.snake import SnakePrefetcher
from repro.prefetch.base import AccessEvent
from repro.prefetch.stride import StrideTracker

STATE_VERSION = 1

_BREAKER_STATES = ("closed", "open", "half-open")


@dataclass(frozen=True)
class ServeConfig:
    """Service-wide knobs, frozen so a config can never drift from the
    value recorded in the snapshot it governs."""

    shards: int = 4             # learner shards per session (pc % shards)
    max_sessions: int = 64      # memory-pressure ceiling on live sessions
    min_idle_evict: int = 256   # events a session must sit idle to be evictable
    breaker_threshold: int = 1  # consecutive shard faults that open the breaker
    breaker_cooldown: int = 128 # applied events while open before a trial
    audit_every: int = 256      # shard structural audit cadence (applied events)
    fallback_capacity: int = 1024  # (warp, pc) stride trackers per session
    fallback_degree: int = 2    # degraded-mode prefetch degree
    head_entries: int = 32      # per-shard learner table sizes (paper defaults)
    tail_entries: int = 10
    train_threshold: int = 3
    max_chain_depth: int = 8

    def __post_init__(self) -> None:
        for name in ("shards", "max_sessions", "breaker_cooldown",
                     "audit_every", "fallback_capacity", "fallback_degree",
                     "head_entries", "tail_entries", "train_threshold",
                     "max_chain_depth"):
            if getattr(self, name) < 1:
                raise ValueError("%s must be >= 1, got %r"
                                 % (name, getattr(self, name)))
        if self.min_idle_evict < 0 or self.breaker_threshold < 1:
            raise ValueError("invalid eviction/breaker thresholds")

    def make_learner(self) -> SnakePrefetcher:
        return SnakePrefetcher(
            head_entries=self.head_entries,
            tail_entries=self.tail_entries,
            train_threshold=self.train_threshold,
            max_chain_depth=self.max_chain_depth,
        )


def peek_predictions(learner: SnakePrefetcher,
                     event: AccessEvent) -> List[int]:
    """Read-only prediction from a Snake learner.

    Mirrors :meth:`SnakePrefetcher.observe`'s generation half (chains,
    intra-warp, inter-warp, chain-first dedup) without the detection
    half.  The Tail CAM's lookup counter is restored afterwards because
    it is serialized into the snapshot — a predict must not move the
    state digest.
    """
    if learner.per_app and event.app_id not in learner._app_tables:
        return []
    learner._select_app(event.app_id)
    saved = learner.tail.lookups
    try:
        requests = []
        if learner.use_chains:
            requests.extend(learner._chain_requests(event))
        if learner.use_intra:
            requests.extend(learner._intra_requests(event))
        if learner.use_inter_warp:
            requests.extend(learner._inter_warp_requests(event))
    finally:
        learner.tail.lookups = saved
    seen = set()
    out: List[int] = []
    for request in requests:
        if request.base_addr not in seen:
            seen.add(request.base_addr)
            out.append(request.base_addr)
    return out


class StrideFallback:
    """The degraded-mode answer path: classic per-(warp, pc) two-delta
    stride detection, LRU-bounded.  Cheap, boring, and never faults —
    exactly what you want serving while a learner shard recovers."""

    def __init__(self, capacity: int, degree: int) -> None:
        self.capacity = capacity
        self.degree = degree
        self._trackers: "OrderedDict[Tuple[int, int], StrideTracker]" = OrderedDict()

    def update(self, warp: int, pc: int, addr: int) -> None:
        key = (warp, pc)
        tracker = self._trackers.get(key)
        if tracker is None:
            if len(self._trackers) >= self.capacity:
                self._trackers.popitem(last=False)
            tracker = self._trackers[key] = StrideTracker()
        else:
            self._trackers.move_to_end(key)
        tracker.update(addr)

    def predict(self, warp: int, pc: int, addr: int) -> List[int]:
        """Pure read: no LRU touch, no tracker mutation."""
        tracker = self._trackers.get((warp, pc))
        if tracker is None or tracker.stride is None or tracker.confirmations < 1:
            return []
        return [
            addr + k * tracker.stride
            for k in range(1, self.degree + 1)
            if addr + k * tracker.stride >= 0
        ]

    def snapshot(self) -> List[List[Any]]:
        return [
            [warp, pc, t.last_addr, t.stride, t.confirmations]
            for (warp, pc), t in self._trackers.items()
        ]

    @classmethod
    def restore(cls, capacity: int, degree: int,
                data: List[List[Any]]) -> "StrideFallback":
        fallback = cls(capacity, degree)
        for warp, pc, last_addr, stride, confirmations in data:
            fallback._trackers[(int(warp), int(pc))] = StrideTracker(
                last_addr=None if last_addr is None else int(last_addr),
                stride=None if stride is None else int(stride),
                confirmations=int(confirmations),
            )
        return fallback


@dataclass
class ShardBreaker:
    """Circuit breaker guarding one learner shard's *answer path*.

    The shard keeps training while the breaker is open (that is how it
    recovers); the breaker only decides whether its answers are trusted.
    Time is the service's logical event sequence, never the wall clock,
    so breaker behaviour replays exactly.
    """

    state: str = "closed"
    failures: int = 0
    opened_at: int = 0
    opens: int = 0

    def answer_from_learner(self, seq: int, cooldown: int) -> bool:
        """Mutating check used by ``apply``: an open breaker past its
        cooldown transitions to half-open and admits one trial."""
        if self.state == "open":
            if seq - self.opened_at >= cooldown:
                self.state = "half-open"
                return True
            return False
        return True

    def would_answer_from_learner(self, seq: int, cooldown: int) -> bool:
        """Pure variant for the read-only predict path."""
        if self.state == "open":
            return seq - self.opened_at >= cooldown
        return True

    def on_ok(self) -> bool:
        """A trusted learner answer succeeded; returns True when this
        closed a half-open breaker (a ``breaker_close`` event)."""
        closed_now = self.state == "half-open"
        self.state = "closed"
        self.failures = 0
        return closed_now

    def on_fault(self, seq: int, threshold: int) -> bool:
        """A shard fault; returns True when this opened the breaker."""
        self.failures += 1
        if self.state == "half-open" or self.failures >= threshold:
            opened_now = self.state != "open"
            self.state = "open"
            self.opened_at = seq
            if opened_now:
                self.opens += 1
            return opened_now
        return False

    def snapshot(self) -> List[Any]:
        return [self.state, self.failures, self.opened_at, self.opens]

    @classmethod
    def restore(cls, data: List[Any]) -> "ShardBreaker":
        state, failures, opened_at, opens = data
        if state not in _BREAKER_STATES:
            raise ValueError("unknown breaker state %r" % (state,))
        return cls(state=str(state), failures=int(failures),
                   opened_at=int(opened_at), opens=int(opens))


class ClientSession:
    """One client's learner state: ``shards`` Snake instances (requests
    route by ``pc % shards``), a breaker per shard, and the shared stride
    fallback."""

    def __init__(self, config: ServeConfig) -> None:
        self.shards: List[SnakePrefetcher] = [
            config.make_learner() for _ in range(config.shards)
        ]
        self.breakers: List[ShardBreaker] = [
            ShardBreaker() for _ in range(config.shards)
        ]
        self.fallback = StrideFallback(
            config.fallback_capacity, config.fallback_degree
        )
        self.last_active = 0   # service seq of the last applied event
        self.applied = 0
        self.faults = 0

    def trained_links(self) -> int:
        """Confirmed chain links across shards — the session's training
        investment, which the eviction policy protects (the Tail-table
        idiom: evict the least-trained of the least-recent)."""
        return sum(
            1
            for learner in self.shards
            for _, _, tail in learner.tables()
            for entry in tail.entries()
            if entry.t1.prefetchable
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "last_active": self.last_active,
            "applied": self.applied,
            "faults": self.faults,
            "shards": [learner.snapshot() for learner in self.shards],
            "breakers": [breaker.snapshot() for breaker in self.breakers],
            "fallback": self.fallback.snapshot(),
        }

    @classmethod
    def restore(cls, config: ServeConfig,
                data: Mapping[str, Any]) -> "ClientSession":
        session = cls.__new__(cls)
        session.shards = [
            SnakePrefetcher.restore(shard) for shard in data["shards"]
        ]
        session.breakers = [
            ShardBreaker.restore(b) for b in data["breakers"]
        ]
        if len(session.shards) != config.shards:
            raise ValueError(
                "session snapshot holds %d shards, config says %d"
                % (len(session.shards), config.shards)
            )
        session.fallback = StrideFallback.restore(
            config.fallback_capacity, config.fallback_degree, data["fallback"]
        )
        session.last_active = int(data["last_active"])
        session.applied = int(data["applied"])
        session.faults = int(data["faults"])
        return session


@dataclass
class AdmitResult:
    ok: bool
    created: bool = False       # True → the caller must journal this admit
    evicted: Optional[str] = None
    reason: str = ""            # "busy" on denial


@dataclass
class ApplyResult:
    predictions: List[int] = field(default_factory=list)
    degraded: bool = False
    shard: int = 0
    fault: str = ""             # non-empty when the shard faulted this event
    breaker_opened: bool = False
    breaker_closed: bool = False


class ServiceState:
    """The whole service's durable state and its transition rules."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.seq = 0  # logical event counter; advanced only by journaled ops
        self.sessions: "OrderedDict[str, ClientSession]" = OrderedDict()
        self.counters: Dict[str, int] = {
            "applied": 0,
            "admitted": 0,
            "evicted": 0,
            "degraded": 0,
            "faults": 0,
        }

    # ------------------------------------------------------------------
    # Admission (mutates only on session creation)

    def _eviction_victim(self) -> Optional[str]:
        """The Tail-table policy transplanted to sessions: among the
        least-recently-active quarter, the idle session with the fewest
        trained links loses.  Active sessions are never evicted — a full
        table of busy clients is a ``busy`` denial instead."""
        ordered = sorted(
            self.sessions.items(),
            key=lambda item: (item[1].last_active, item[0]),
        )
        group = ordered[:max(2, math.ceil(len(ordered) / 4))]
        idle = [
            (client, session)
            for client, session in group
            if self.seq - session.last_active >= self.config.min_idle_evict
        ]
        if not idle:
            return None
        victim, _ = min(
            idle,
            key=lambda item: (item[1].trained_links(),
                              item[1].last_active, item[0]),
        )
        return victim

    def admit(self, client: str) -> AdmitResult:
        if client in self.sessions:
            # Reconnect: pure read, nothing to journal.
            return AdmitResult(ok=True)
        evicted: Optional[str] = None
        if len(self.sessions) >= self.config.max_sessions:
            evicted = self._eviction_victim()
            if evicted is None:
                return AdmitResult(ok=False, reason="busy")
            del self.sessions[evicted]
            self.counters["evicted"] += 1
        self.seq += 1
        session = ClientSession(self.config)
        session.last_active = self.seq
        self.sessions[client] = session
        self.counters["admitted"] += 1
        return AdmitResult(ok=True, created=True, evicted=evicted)

    # ------------------------------------------------------------------
    # The one always-journaled mutation

    def apply(self, client: str, warp: int, pc: int, addr: int,
              app: int = 0) -> Optional[ApplyResult]:
        """Absorb one access record; returns None when the session does
        not exist (evicted or never admitted — the caller NACKs)."""
        session = self.sessions.get(client)
        if session is None:
            return None
        self.seq += 1
        session.last_active = self.seq
        session.applied += 1
        self.counters["applied"] += 1

        shard_index = pc % self.config.shards
        breaker = session.breakers[shard_index]
        result = ApplyResult(shard=shard_index)
        event = AccessEvent(
            warp_id=warp, cta_id=0, pc=pc, base_addr=addr, line_addr=addr,
            now=self.seq, app_id=app,
        )
        learner_predictions: List[int] = []
        # The half-open trial opens here and MUST be settled by on_ok /
        # on_fault on every path (SL703); nothing that can raise may sit
        # between opening it and entering the try block.
        from_learner = breaker.answer_from_learner(
            self.seq, self.config.breaker_cooldown
        )
        try:
            learner = session.shards[shard_index]
            learner_predictions = [
                r.base_addr for r in learner.observe(event)
            ]
            if session.applied % self.config.audit_every == 0:
                violations: List[str] = []
                for app_id, head, tail in learner.tables():
                    violations.extend(
                        tail.structural_violations("shard%d/app%d"
                                                   % (shard_index, app_id))
                    )
                if violations:
                    raise RuntimeError(
                        "structural audit failed: " + "; ".join(violations)
                    )
        except Exception as exc:  # noqa: BLE001 — any learner misbehaviour
            # Trip the breaker FIRST — settling the half-open trial must
            # not depend on the recovery steps below succeeding (SL703) —
            # then replace the wounded shard with a fresh learner (it
            # retrains from live traffic while the breaker serves fallback
            # answers).  Deterministic: the same state and input fault
            # identically during journal replay.
            result.breaker_opened = breaker.on_fault(
                self.seq, self.config.breaker_threshold
            )
            result.fault = "%s: %s" % (type(exc).__name__, exc)
            session.shards[shard_index] = self.config.make_learner()
            session.faults += 1
            self.counters["faults"] += 1
            from_learner = False
        else:
            if from_learner:
                result.breaker_closed = breaker.on_ok()

        session.fallback.update(warp, pc, addr)
        if from_learner:
            result.predictions = learner_predictions
        else:
            result.predictions = session.fallback.predict(warp, pc, addr)
            result.degraded = True
            self.counters["degraded"] += 1
        return result

    def apply_batch(
        self, records: List[Tuple[str, int, int, int, int]]
    ) -> List[Optional[ApplyResult]]:
        """Absorb a run of ``(client, warp, pc, addr, app)`` records.

        State-identical to applying each record through :meth:`apply` in
        order — the journal replays record by record, so a recovered
        service must land on the same digest no matter how live traffic
        was batched.  The speedup comes from handing maximal runs that
        share a (session, shard) pair to the learner's vectorized
        :meth:`~repro.core.snake.SnakePrefetcher.observe_batch` in one
        call; any record that cannot be proven equivalent under batching
        (missing session, open/half-open breaker, a structural-audit
        boundary, or a non-Snake learner planted by a test) is routed
        through the scalar :meth:`apply` unchanged.
        """
        results: List[Optional[ApplyResult]] = []
        shards = self.config.shards
        audit_every = self.config.audit_every
        i, n = 0, len(records)
        while i < n:
            client, warp, pc, addr, app = records[i]
            session = self.sessions.get(client)
            j = i
            if session is not None:
                shard_index = pc % shards
                breaker = session.breakers[shard_index]
                # Runs only batch while the breaker is *closed*: a closed
                # breaker with a healthy Snake learner cannot fault, so
                # the scalar path's per-event trial/half-open bookkeeping
                # degenerates to a single ``on_ok``.  The run must also
                # stop short of any structural-audit boundary — that
                # event runs (and may fail) the audit, so it goes scalar.
                if (breaker.state == "closed"
                        and type(session.shards[shard_index])
                        is SnakePrefetcher):
                    boundary = audit_every - session.applied % audit_every
                    limit = min(n - i, boundary - 1)
                    while (j - i < limit and records[j][0] == client
                           and records[j][2] % shards == shard_index):
                        j += 1
            if j - i >= 2:
                results.extend(self._apply_run(
                    session, pc % shards, records[i:j]
                ))
                i = j
            else:
                results.append(self.apply(client, warp, pc, addr, app))
                i += 1
        return results

    def _apply_run(
        self, session: ClientSession, shard_index: int,
        records: List[Tuple[str, int, int, int, int]],
    ) -> List[ApplyResult]:
        """Batched fast lane for one eligibility-checked run (see
        :meth:`apply_batch` for the conditions that make this exactly
        equivalent to sequential :meth:`apply` calls)."""
        base_seq = self.seq
        events = [
            AccessEvent(
                warp_id=warp, cta_id=0, pc=pc, base_addr=addr,
                line_addr=addr, now=base_seq + k + 1, app_id=app,
            )
            for k, (_, warp, pc, addr, app) in enumerate(records)
        ]
        prediction_lists = session.shards[shard_index].observe_batch(events)
        count = len(records)
        self.seq = base_seq + count
        session.last_active = self.seq
        session.applied += count
        self.counters["applied"] += count
        # Every event in the run answers from the (closed) learner: the
        # per-event ``on_ok`` calls collapse to one failure-count reset.
        session.breakers[shard_index].on_ok()
        fallback_update = session.fallback.update
        results: List[ApplyResult] = []
        for (_, warp, pc, addr, _), predictions in zip(
            records, prediction_lists
        ):
            fallback_update(warp, pc, addr)
            results.append(ApplyResult(
                predictions=[r.base_addr for r in predictions],
                shard=shard_index,
            ))
        return results

    # ------------------------------------------------------------------
    # Pure reads

    def predict(self, client: str, warp: int, pc: int, addr: int,
                app: int = 0) -> Optional[Tuple[List[int], bool]]:
        """Answer a prediction query without touching durable state;
        returns None when the session does not exist."""
        session = self.sessions.get(client)
        if session is None:
            return None
        shard_index = pc % self.config.shards
        breaker = session.breakers[shard_index]
        if breaker.would_answer_from_learner(self.seq,
                                             self.config.breaker_cooldown):
            event = AccessEvent(
                warp_id=warp, cta_id=0, pc=pc, base_addr=addr, line_addr=addr,
                now=self.seq, app_id=app,
            )
            return peek_predictions(session.shards[shard_index], event), False
        return session.fallback.predict(warp, pc, addr), True

    def stats(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "sessions": len(self.sessions),
            "counters": dict(self.counters),
        }

    def audit(self) -> List[str]:
        """Structural invariants across every session's learner tables
        (the chaos certificate's final green light)."""
        violations: List[str] = []
        for client, session in self.sessions.items():
            for index, learner in enumerate(session.shards):
                for app_id, head, tail in learner.tables():
                    label = "%s/shard%d/app%d" % (client, index, app_id)
                    violations.extend(tail.structural_violations(label))
        return violations

    # ------------------------------------------------------------------
    # Durability

    def snapshot(self) -> Dict[str, Any]:
        return {
            "v": STATE_VERSION,
            "seq": self.seq,
            "config": asdict(self.config),
            "counters": dict(self.counters),
            "sessions": [
                [client, session.snapshot()]
                for client, session in self.sessions.items()
            ],
        }

    @classmethod
    def restore(cls, data: Mapping[str, Any]) -> "ServiceState":
        if data.get("v") != STATE_VERSION:
            raise ValueError(
                "unsupported ServiceState snapshot version %r"
                % (data.get("v"),)
            )
        config = ServeConfig(**{k: v for k, v in data["config"].items()})
        state = cls(config)
        state.seq = int(data["seq"])
        state.counters = {k: int(v) for k, v in data["counters"].items()}
        for client, session_data in data["sessions"]:
            state.sessions[str(client)] = ClientSession.restore(
                config, session_data
            )
        return state

    def state_digest(self) -> str:
        """The byte-identity certificate: sha256 over the canonical JSON
        serialization of the snapshot."""
        payload = json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


__all__ = [
    "AdmitResult",
    "ApplyResult",
    "ClientSession",
    "ServeConfig",
    "ServiceState",
    "ShardBreaker",
    "StrideFallback",
    "peek_predictions",
]
