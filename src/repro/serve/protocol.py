"""The serve wire protocol: length-prefixed JSON frames, strictly validated.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object.  The framing exists so the
server can bound *every* read: a declared length above
:data:`MAX_FRAME_BYTES` is rejected before a byte of payload is buffered
(memory-bomb defense), and a peer that dribbles a frame out slower than
the frame deadline is a slow-loris, not a client.

Validation mirrors the external-trace loader's strictness
(:mod:`repro.gpusim.traceio`): the service learns *mutable model state*
from these records, so every numeric field must be a plain JSON integer
— booleans, floats (including the ``NaN``/``Infinity`` literals Python's
``json`` happily parses), strings and out-of-range values are rejected
at the protocol edge with an explicit NACK, never absorbed.

Everything here is sans-I/O (bytes in, objects out) so the codec is unit
testable without sockets and reusable by clients, the load generator and
the chaos harness.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional

#: Hard ceiling on one frame's payload (requests are tiny; anything close
#: to this is hostile or corrupt).
MAX_FRAME_BYTES = 1 << 20

#: Frame header: unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")
HEADER_BYTES = HEADER.size

#: Request operations the service understands.
OPS = ("hello", "access", "predict", "stats", "ping", "bye")

#: NACK reasons the service may answer with.  Every reason is explicit —
#: a shed, refused or rejected request is *always* told why.
NACK_REASONS = (
    "overload",        # ingress queue full: load shed, retry later
    "deadline",        # request aged past its processing budget in queue
    "busy",            # admission control: session table full of active clients
    "malformed",       # frame or record failed protocol validation
    "protocol",        # valid frame, invalid op sequence (e.g. access before hello)
    "session-expired", # the session was evicted; re-hello to continue
    "slow-client",     # frame arrived slower than the frame deadline
    "shutdown",        # the service is draining
)


class FrameError(ValueError):
    """A frame (or the stream carrying it) violates the protocol.

    ``offset`` is the byte offset of the offending frame in the
    connection's stream, ``frame_index`` its ordinal — same shape as
    :class:`repro.gpusim.traceio.TraceFormatError` so operators get a
    pinpoint, not a guess.
    """

    def __init__(self, message: str, *, offset: int = 0,
                 frame_index: int = 0) -> None:
        self.offset = offset
        self.frame_index = frame_index
        super().__init__(
            "%s (frame %d at byte offset %d)" % (message, frame_index, offset)
        )


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire form (canonical JSON, so
    identical messages are identical bytes)."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            "frame payload of %d bytes exceeds the %d-byte ceiling"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder for one connection's byte stream.

    Feed it arbitrary chunks; it returns every complete frame decoded so
    far and keeps the remainder buffered.  Protocol violations raise
    :class:`FrameError` carrying the stream offset; the connection is
    then unrecoverable by design (framing is lost).
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._offset = 0       # stream offset of the buffer's first byte
        self._frames = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        out: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return out
            (length,) = HEADER.unpack_from(self._buffer, 0)
            if length == 0:
                raise FrameError(
                    "zero-length frame", offset=self._offset,
                    frame_index=self._frames,
                )
            if length > self.max_frame:
                raise FrameError(
                    "declared frame length %d exceeds the %d-byte ceiling"
                    % (length, self.max_frame),
                    offset=self._offset, frame_index=self._frames,
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return out
            payload = bytes(self._buffer[HEADER_BYTES:HEADER_BYTES + length])
            del self._buffer[:HEADER_BYTES + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(
                    "undecodable frame payload: %s" % exc,
                    offset=self._offset, frame_index=self._frames,
                ) from exc
            if not isinstance(message, dict):
                raise FrameError(
                    "frame payload is not an object: %r" % (message,),
                    offset=self._offset, frame_index=self._frames,
                )
            self._offset += HEADER_BYTES + length
            self._frames += 1
            out.append(message)

    @property
    def buffered(self) -> int:
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Request validation.


def _require_int(value: object, what: str, minimum: int = 0,
                 maximum: int = (1 << 64) - 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise FrameError("%s must be an integer, got %r" % (what, value))
    if not minimum <= value <= maximum:
        raise FrameError(
            "%s must be in [%d, %d], got %d" % (what, minimum, maximum, value)
        )
    return value


def validate_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Check one decoded request frame and return its normalized form.

    Raises :class:`FrameError` on anything out of contract.  The
    normalized dict carries only known fields, so hostile extras never
    reach the learner or the journal.
    """
    op = message.get("op")
    if op not in OPS:
        raise FrameError(
            "unknown op %r (known: %s)" % (op, ", ".join(OPS))
        )
    out: Dict[str, Any] = {"op": op}
    if "seq" in message:
        out["seq"] = _require_int(message["seq"], "seq")
    if op == "hello":
        client = message.get("client")
        if not isinstance(client, str) or not 1 <= len(client) <= 128:
            raise FrameError(
                "hello needs a client id string of 1..128 chars, got %r"
                % (client,)
            )
        out["client"] = client
    elif op in ("access", "predict"):
        out["warp"] = _require_int(message.get("warp"), "warp")
        out["pc"] = _require_int(message.get("pc"), "pc")
        out["addr"] = _require_int(message.get("addr"), "addr")
        out["app"] = _require_int(message.get("app", 0), "app")
    elif op == "stats":
        digest = message.get("digest", False)
        if not isinstance(digest, bool):
            raise FrameError("stats digest flag must be a boolean")
        out["digest"] = digest
    return out


# ---------------------------------------------------------------------------
# Response constructors.


def ack(seq: Optional[int] = None, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True}
    if seq is not None:
        response["seq"] = seq
    response.update(fields)
    return response


def nack(reason: str, seq: Optional[int] = None, detail: str = "",
         retry_after_s: Optional[float] = None) -> Dict[str, Any]:
    """An explicit refusal.  Every shed, refused or rejected request gets
    one of these — the zero-silent-drop contract the chaos harness and
    load generator certify."""
    if reason not in NACK_REASONS:
        raise ValueError(
            "unknown NACK reason %r (known: %s)"
            % (reason, ", ".join(NACK_REASONS))
        )
    response: Dict[str, Any] = {"ok": False, "error": reason}
    if seq is not None:
        response["seq"] = seq
    if detail:
        response["detail"] = detail
    if retry_after_s is not None:
        response["retry_after_s"] = retry_after_s
    return response


__all__ = [
    "FrameDecoder",
    "FrameError",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "NACK_REASONS",
    "OPS",
    "ack",
    "encode_frame",
    "nack",
    "validate_request",
]
