"""Seeded chaos for the serving layer, ending in a recovery certificate.

The harness mixes *behaved* clients (loadgen lockstep streams) with
*misbehaving* ones chosen deterministically from the fault plan — the
same hash-the-identity idiom as :mod:`repro.gpusim.faults`, so a seed
fully determines which client does what:

* ``client.disconnect_mid_frame`` — dies after writing half a frame
* ``client.slow_loris``           — starts a frame and stalls; must be
  told ``slow-client`` (or cut off) within the frame deadline
* ``client.malformed_frame``      — sends garbage JSON; must receive an
  explicit ``malformed`` NACK and the connection must stay usable
* ``client.truncated_frame``      — declares N payload bytes, sends
  fewer, disconnects
* ``journal.torn_tail``           — the on-disk journal gains a torn
  trailing record before recovery (the kill -9 disk signature)

In kill mode the server runs as a subprocess; mid-stream it gets a real
``SIGKILL``, the journal is torn, and the harness then proves the crash
recovery contract: a restarted server and an independent in-process
:meth:`Journal.recover` of a byte-copy of the data directory reach the
**same state digest** (byte-identical canonical snapshots), the torn
fragment is quarantined, the structural audit is green, and a client can
resume its session and keep streaming.  Violations of any expectation —
including a behaved client experiencing a silent drop on a surviving
connection — are collected, never asserted mid-flight, so one run
reports everything it found.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gpusim.faults import _hash01
from repro.runner.transport import WallClock

from .journal import JOURNAL_NAME, Journal
from .loadgen import (
    CLIENT_ADDR_STRIDE,
    LoadReport,
    ServeClient,
    _Gauge,
    _one_client,
    suite_events,
)
from .protocol import HEADER, encode_frame
from .service import PORT_FILE

SERVE_SITES: Tuple[str, ...] = (
    "client.disconnect_mid_frame",
    "client.slow_loris",
    "client.malformed_frame",
    "client.truncated_frame",
    "journal.torn_tail",
)

SERVE_DEFAULT_RATES: Dict[str, float] = {
    "client.disconnect_mid_frame": 0.15,
    "client.slow_loris": 0.1,
    "client.malformed_frame": 0.15,
    "client.truncated_frame": 0.1,
    "journal.torn_tail": 1.0,
}


def serve_catalog() -> Dict[str, str]:
    """Serve site -> one-line description (docs and the CLI)."""
    return {
        "client.disconnect_mid_frame": "a client dies after half a frame",
        "client.slow_loris": "a client starts a frame and stalls forever",
        "client.malformed_frame": "a client sends undecodable frame payload",
        "client.truncated_frame": "a client under-delivers a declared length",
        "journal.torn_tail": "the journal gains a torn trailing record",
    }


@dataclass(frozen=True)
class ServeFaultPlan:
    """Seeded (site, probability) plan; which clients misbehave is a pure
    hash of (seed, site, client index), independent of scheduling."""

    seed: int = 0
    rates: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in SERVE_SITES:
                raise ValueError(
                    "unknown serve fault site %r (known: %s)"
                    % (site, ", ".join(SERVE_SITES))
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rate for %s must be in [0, 1]" % site)

    @classmethod
    def make(cls, rates: Mapping[str, float],
             seed: int = 0) -> "ServeFaultPlan":
        return cls(seed=int(seed), rates=tuple(sorted(rates.items())))

    @classmethod
    def single(cls, site: str, rate: Optional[float] = None,
               seed: int = 0) -> "ServeFaultPlan":
        return cls.make(
            {site: SERVE_DEFAULT_RATES[site] if rate is None else rate},
            seed=seed,
        )

    @classmethod
    def storm(cls, seed: int = 0) -> "ServeFaultPlan":
        return cls.make(SERVE_DEFAULT_RATES, seed=seed)

    def label(self) -> str:
        sites = [s for s, r in self.rates if r > 0]
        if set(sites) == set(SERVE_SITES):
            return "serve-storm"
        return "+".join(s.split(".", 1)[1] for s in sites) if sites else "none"

    def rate(self, site: str) -> float:
        for name, value in self.rates:
            if name == site:
                return value
        return 0.0

    def client_site(self, index: int) -> Optional[str]:
        """Which client-plane attack (if any) client ``index`` performs.
        First matching site in sorted order wins, so the assignment is
        order-independent and reproducible."""
        for site, rate in self.rates:
            if site.startswith("client.") and rate > 0.0:
                if _hash01(self.seed, site, "client-%d" % index, 1) < rate:
                    return site
        return None

    def journal_torn(self) -> bool:
        return _hash01(self.seed, "journal.torn_tail", "journal", 1) < (
            self.rate("journal.torn_tail")
        )


@dataclass
class ServeChaosReport:
    """Everything one chaos run observed; ``ok`` iff no violations."""

    plan_label: str = ""
    behaved: int = 0
    misbehaved: Dict[str, int] = field(default_factory=dict)
    load: Optional[LoadReport] = None
    killed: bool = False
    torn: bool = False
    quarantined: int = 0
    digest_served: str = ""
    digest_recovered: str = ""
    replayed: int = 0
    snapshot_seq: int = 0
    resumed_after_restart: bool = False
    scenarios: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def note(self, line: str) -> None:
        self.scenarios.append(line)

    def violate(self, line: str) -> None:
        self.violations.append(line)
        self.scenarios.append("VIOLATION: " + line)

    def render(self) -> str:
        lines = ["serve chaos [%s]" % self.plan_label]
        lines.extend("  . %s" % line for line in self.scenarios)
        verdict = (
            "certificate GREEN" if self.ok
            else "%d violation(s)" % len(self.violations)
        )
        lines.append("serve chaos: %d behaved + %d misbehaving clients, %s"
                     % (self.behaved,
                        sum(self.misbehaved.values()), verdict))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Misbehaving clients


async def _attack(site: str, index: int, host: str, port: int,
                  frame_timeout_s: float, report: ServeChaosReport) -> None:
    """Run one misbehaving client; records expectation failures."""
    try:
        client = await ServeClient.connect(host, port)
    except OSError:
        return  # server already down (kill phase): nothing to certify
    name = "chaos-%s-%d" % (site.split(".", 1)[1], index)
    try:
        if site == "client.disconnect_mid_frame":
            await client.request({"op": "hello", "client": name})
            whole = encode_frame({"op": "access", "warp": 0, "pc": 16,
                                  "addr": 4096, "app": 0})
            client.writer.write(whole[: len(whole) // 2])
            await client.writer.drain()
            # die abruptly, mid-frame
        elif site == "client.truncated_frame":
            await client.request({"op": "hello", "client": name})
            client.writer.write(HEADER.pack(64) + b'{"op": "acc')
            await client.writer.drain()
        elif site == "client.slow_loris":
            await client.request({"op": "hello", "client": name})
            client.writer.write(HEADER.pack(64))  # a frame that never comes
            await client.writer.drain()
            try:
                response = await asyncio.wait_for(
                    client.read_response(), frame_timeout_s * 8 + 2.0
                )
                if response.get("error") != "slow-client":
                    report.violate(
                        "%s: expected slow-client NACK, got %r"
                        % (name, response))
            except (asyncio.IncompleteReadError, EOFError, OSError,
                    ConnectionResetError):
                pass  # cut off without a NACK reaching us: acceptable
            except asyncio.TimeoutError:
                report.violate(
                    "%s: neither NACKed nor disconnected within %.1fs"
                    % (name, frame_timeout_s * 8 + 2.0))
        elif site == "client.malformed_frame":
            await client.request({"op": "hello", "client": name})
            client.writer.write(HEADER.pack(12) + b"\xffgarbage!!!!")
            await client.writer.drain()
            response = await asyncio.wait_for(client.read_response(), 30.0)
            if response.get("error") != "malformed":
                report.violate(
                    "%s: expected malformed NACK, got %r" % (name, response))
            # the framing stayed intact, so the connection must still work
            response = await client.request(
                {"op": "access", "warp": 1, "pc": 24, "addr": 8192, "app": 0})
            if "ok" not in response:
                report.violate(
                    "%s: connection unusable after malformed NACK" % name)
    except (OSError, EOFError, asyncio.IncompleteReadError,
            ConnectionResetError, asyncio.TimeoutError):
        pass  # attacks tolerate a dying server (kill phase)
    finally:
        await client.close()


# ---------------------------------------------------------------------------
# Server subprocess management (kill mode)


class _ServerProcess:
    """A real ``snake-repro serve`` subprocess on an ephemeral port."""

    def __init__(self, data_dir: Path, *, frame_timeout_s: float,
                 snapshot_every: int, queue_depth: int = 512) -> None:
        self.data_dir = data_dir
        self.frame_timeout_s = frame_timeout_s
        self.snapshot_every = snapshot_every
        self.queue_depth = queue_depth
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self._clock = WallClock()

    def start(self) -> None:
        import repro

        port_file = self.data_dir / PORT_FILE
        if port_file.exists():
            port_file.unlink()
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--data-dir", str(self.data_dir),
                "--queue-depth", str(self.queue_depth),
                "--frame-timeout", str(self.frame_timeout_s),
                "--snapshot-every", str(self.snapshot_every),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def wait_ready(self, timeout_s: float = 60.0) -> bool:
        deadline = self._clock.now() + timeout_s
        port_file = self.data_dir / PORT_FILE
        while self._clock.now() < deadline:
            if self.proc is not None and self.proc.poll() is not None:
                return False
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    self.port = int(text)
                    return True
            self._clock.sleep(0.02)
        return False

    def kill9(self) -> None:
        assert self.proc is not None
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def terminate(self, timeout_s: float = 30.0) -> None:
        if self.proc is None or self.proc.poll() is not None:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


async def _server_digest(host: str, port: int) -> Tuple[str, Dict]:
    client = await ServeClient.connect(host, port)
    try:
        response = await client.request({"op": "stats", "digest": True})
        return str(response.get("digest", "")), response
    finally:
        await client.close()


def _durable_progress(data_dir: Path) -> int:
    """Total mutations made durable so far: the snapshot's seq plus the
    journal records on top (the journal truncates at each snapshot, so
    its raw length alone is not monotonic)."""
    progress = 0
    snapshot = data_dir / "snapshot.json"
    if snapshot.exists():
        try:
            progress = int(json.loads(snapshot.read_text()).get("seq", 0))
        except (ValueError, OSError):
            pass  # mid-replace read: the journal count still moves us
    journal = data_dir / JOURNAL_NAME
    if journal.exists():
        progress += journal.read_bytes().count(b"\n")
    return progress


async def _kill_when_journal_grows(proc: _ServerProcess, data_dir: Path,
                                   records: int,
                                   report: ServeChaosReport) -> bool:
    """SIGKILL the server once durable progress shows the stream is truly
    mid-flight: sessions trained, frames in flight, queue non-empty."""
    for _ in range(30000):
        if proc.proc is not None and proc.proc.poll() is not None:
            return False
        if _durable_progress(data_dir) >= records:
            proc.kill9()
            report.killed = True
            report.note("SIGKILL delivered mid-stream (>= %d durable records)"
                        % records)
            return True
        await asyncio.sleep(0.01)
    return False


# ---------------------------------------------------------------------------
# The harness


def run_serve_chaos(plan: Optional[ServeFaultPlan] = None, *,
                    clients: int = 24, events_per_client: int = 60,
                    apps: Sequence[str] = ("lps", "hotspot"),
                    scale: float = 0.05, workload_seed: int = 1,
                    kill: bool = True,
                    data_dir: Optional[Path] = None,
                    frame_timeout_s: float = 0.5,
                    snapshot_every: int = 50) -> ServeChaosReport:
    """One full chaos scenario; see the module docstring for the story."""
    plan = plan or ServeFaultPlan.storm()
    report = ServeChaosReport(plan_label=plan.label())
    workdir = Path(data_dir) if data_dir else Path(
        tempfile.mkdtemp(prefix="snake-serve-chaos-")
    )
    cleanup = data_dir is None
    try:
        return asyncio.run(_run_chaos(
            plan, report, workdir, clients, events_per_client, apps,
            scale, workload_seed, kill, frame_timeout_s, snapshot_every,
        ))
    finally:
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)


async def _run_chaos(plan: ServeFaultPlan, report: ServeChaosReport,
                     workdir: Path, clients: int, events_per_client: int,
                     apps: Sequence[str], scale: float, workload_seed: int,
                     kill: bool, frame_timeout_s: float,
                     snapshot_every: int) -> ServeChaosReport:
    data_dir = workdir / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    per_app = suite_events(apps, scale=scale, seed=workload_seed)

    server = _ServerProcess(
        data_dir, frame_timeout_s=frame_timeout_s,
        snapshot_every=snapshot_every,
    )
    server.start()
    try:
        if not server.wait_ready():
            report.violate("server subprocess never became ready")
            return report
        assert server.port is not None
        host, port = "127.0.0.1", server.port
        report.note("server up on port %d (data dir %s)" % (port, data_dir))

        # Split the client population by the seeded plan.
        attacks: List = []
        behaved: List = []
        load = LoadReport()
        gauge = _Gauge()
        first_behaved: Optional[int] = None
        for index in range(clients):
            site = plan.client_site(index)
            if site is not None:
                report.misbehaved[site] = report.misbehaved.get(site, 0) + 1
                attacks.append(_attack(
                    site, index, host, port, frame_timeout_s, report))
            else:
                if first_behaved is None:
                    first_behaved = index
                report.behaved += 1
                events = per_app[index % len(per_app)][:events_per_client]
                behaved.append(_one_client(
                    index, host, port, events, load, gauge))
        load.clients = report.behaved

        tasks = [asyncio.ensure_future(c) for c in attacks + behaved]
        killer = None
        if kill:
            # Enough journal growth that sessions exist and frames are in
            # flight, small enough that plenty of stream remains unsent.
            threshold = max(10, report.behaved * events_per_client // 4)
            killer = asyncio.ensure_future(_kill_when_journal_grows(
                server, data_dir, threshold, report))
        await asyncio.gather(*tasks)
        if killer is not None:
            await killer
        report.load = load
        load.peak_concurrent = gauge.peak
        report.note(load.summary())
        if load.silent:
            report.violate(
                "%d request(s) silently dropped on surviving connections"
                % load.silent)
        if kill and not report.killed:
            report.note("stream finished before the kill trigger "
                        "(server never SIGKILLed)")
        if kill and report.killed and not load.aborted:
            report.note("no behaved client was mid-stream at the kill "
                        "(all finished first)")

        if not kill:
            # Graceful path: drain the server so the final snapshot lands,
            # then certify recovery against the flushed state.
            served_digest, _ = await _server_digest(host, port)
            report.digest_served = served_digest
            server.terminate()

        # The kill -9 disk signature: tear the journal's trailing record.
        if plan.journal_torn():
            Journal(data_dir).tear()
            report.torn = True
            report.note("journal torn (half-written trailing record)")

        # Byte-copy the data directory BEFORE anyone recovers from it, so
        # the in-process recovery and the restarted server read the same
        # bytes independently.
        copy_dir = workdir / "data-copy"
        if copy_dir.exists():
            shutil.rmtree(copy_dir)
        shutil.copytree(data_dir, copy_dir)

        recovery = Journal.recover(copy_dir)
        report.digest_recovered = recovery.state.state_digest()
        report.replayed = recovery.replayed
        report.snapshot_seq = recovery.snapshot_seq
        report.quarantined = recovery.quarantined
        report.note(
            "independent recovery: snapshot seq=%d + %d journal records "
            "-> seq=%d (%d stale skipped, %d torn quarantined)"
            % (recovery.snapshot_seq, recovery.replayed,
               recovery.state.seq, recovery.skipped, recovery.quarantined))
        if report.torn and recovery.quarantined != 1:
            report.violate("torn journal record was not quarantined")
        audit = recovery.state.audit()
        if audit:
            report.violate("structural audit after recovery: %s"
                           % "; ".join(audit[:3]))
        else:
            report.note("structural audit green (%d sessions)"
                        % len(recovery.state.sessions))

        # Restart the server on the original directory and compare digests.
        if kill:
            server.start()
            if not server.wait_ready():
                report.violate("server did not come back after SIGKILL")
                return report
            host, port = "127.0.0.1", server.port
            served_digest, stats = await _server_digest(host, port)
            report.digest_served = served_digest
            report.note("restarted server on port %d: seq=%s, %d sessions"
                        % (port, stats.get("seq"), stats.get("sessions", 0)))

            # Post-recovery liveness: the first behaved client reconnects
            # — resuming its recovered session — and keeps streaming.
            index = 0 if first_behaved is None else first_behaved
            name = "lg-%05d" % index
            offset = index * CLIENT_ADDR_STRIDE
            events = per_app[index % len(per_app)]
            try:
                client = await ServeClient.connect(host, port)
                response = await client.request(
                    {"op": "hello", "client": name})
                resumed = response.get("session") == "resumed"
                streamed = bool(response.get("ok"))
                for k, (warp, pc, addr) in enumerate(events[:10]):
                    response = await client.request({
                        "op": "access", "warp": warp, "pc": pc,
                        "addr": addr + offset, "app": 0, "seq": k})
                    streamed = streamed and "ok" in response
                await client.request({"op": "bye"})
                await client.close()
                report.resumed_after_restart = resumed
                if not streamed:
                    report.violate(
                        "post-restart liveness failed: %s could not stream"
                        % name)
                elif resumed:
                    report.note("client %s resumed its recovered session "
                                "and streamed 10 more events" % name)
                else:
                    # Legitimate only if the kill landed before this
                    # client's hello reached the journal.
                    report.note("client %s streamed after restart (session "
                                "was new: hello not yet durable at kill)"
                                % name)
            except (OSError, EOFError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError) as exc:
                report.violate("post-restart liveness failed: %s" % exc)

        if report.digest_served and report.digest_recovered:
            if report.digest_served == report.digest_recovered:
                report.note("state digests MATCH (%s...): snapshot + WAL "
                            "replay is byte-identical"
                            % report.digest_served[:16])
            else:
                report.violate(
                    "state digest mismatch: served %s != recovered %s"
                    % (report.digest_served[:16],
                       report.digest_recovered[:16]))
        elif kill:
            report.violate("could not obtain both state digests")
        return report
    finally:
        server.terminate()


__all__ = [
    "SERVE_DEFAULT_RATES",
    "SERVE_SITES",
    "ServeChaosReport",
    "ServeFaultPlan",
    "run_serve_chaos",
    "serve_catalog",
]
