"""Load generator: replay the workload suite as many concurrent clients.

Each simulated client connects, says hello, streams one workload's
memory accesses as ``access`` requests in strict request→response
lockstep, and says bye.  Clients share per-app event lists (extracted
once from the trace builders) but write into disjoint address spaces
(client index << 32), so a thousand clients cost one kernel build per
app, not a thousand.

The report certifies the zero-silent-drop contract: for every client
whose connection survived, ``sent == acked + nacked`` — a shed or
refused request always produced an explicit NACK.  Clients whose
connection *died* (only expected when the chaos harness is killing the
server) are tallied as aborted, with their in-flight request counted as
``unanswered`` rather than silently ignored.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.gpusim.trace import KernelTrace
from repro.workloads import build_kernel

from .protocol import FrameDecoder, FrameError, HEADER_BYTES, encode_frame

#: One observed access: (warp, pc, addr).
AccessTuple = Tuple[int, int, int]

#: Per-client address-space stride: client ``i`` offsets every address by
#: ``i * CLIENT_ADDR_STRIDE`` so sessions never alias.
CLIENT_ADDR_STRIDE = 1 << 32

_REQUEST_TIMEOUT_S = 60.0


class ServeClient:
    """Minimal asyncio client for the serve frame protocol (shared by the
    load generator, the chaos harness, and the tests)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self._decoder = FrameDecoder()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, message: Dict[str, Any],
                      timeout: float = _REQUEST_TIMEOUT_S) -> Dict[str, Any]:
        self.writer.write(encode_frame(message))
        await self.writer.drain()
        return await asyncio.wait_for(self.read_response(), timeout)

    async def read_response(self) -> Dict[str, Any]:
        header = await self.reader.readexactly(HEADER_BYTES)
        length = int.from_bytes(header, "big")
        payload = await self.reader.readexactly(length)
        frames = self._decoder.feed(header + payload)
        if len(frames) != 1:
            raise FrameError("expected exactly one response frame")
        return frames[0]

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def kernel_events(kernel: KernelTrace) -> List[AccessTuple]:
    """Flatten a kernel trace into interleaved (warp, pc, addr) accesses.

    Warps are interleaved position-by-position (a round-robin scheduler's
    view), so the stream exercises inter-warp stride detection the way a
    real SM would — warp-major order would starve it.
    """
    streams = [
        [(warp.warp_id, instr.pc, instr.base_addr)
         for instr in warp.instrs if instr.is_mem]
        for cta in kernel.ctas for warp in cta.warps
    ]
    events: List[AccessTuple] = []
    position = 0
    remaining = True
    while remaining:
        remaining = False
        for stream in streams:
            if position < len(stream):
                events.append(stream[position])
                remaining = True
        position += 1
    return events


def suite_events(apps: Sequence[str], scale: float = 0.1,
                 seed: int = 1) -> List[List[AccessTuple]]:
    """One event list per app (built once, shared by all clients)."""
    return [
        kernel_events(build_kernel(app, scale=scale, seed=seed))
        for app in apps
    ]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    clients: int = 0
    connect_failures: int = 0
    aborted: int = 0            # connection died mid-stream
    sent: int = 0
    acked: int = 0
    nacked: Dict[str, int] = field(default_factory=dict)
    degraded: int = 0
    unanswered: int = 0         # sent on a connection that then died
    silent: int = 0             # unanswered on a SURVIVING connection: must be 0
    peak_concurrent: int = 0

    def nack_total(self) -> int:
        return sum(self.nacked.values())

    def summary(self) -> str:
        nacks = ", ".join(
            "%s=%d" % (reason, count)
            for reason, count in sorted(self.nacked.items())
        ) or "none"
        return (
            "loadgen: %d clients (peak %d concurrent, %d connect failures, "
            "%d aborted), %d sent = %d acked + %d nacked (%s), "
            "%d degraded answers, %d unanswered, %d SILENT" % (
                self.clients, self.peak_concurrent, self.connect_failures,
                self.aborted, self.sent, self.acked, self.nack_total(),
                nacks, self.degraded, self.unanswered, self.silent,
            )
        )


class _Gauge:
    """Tracks the number of in-flight clients and its high-water mark."""

    def __init__(self) -> None:
        self.active = 0
        self.peak = 0

    def enter(self) -> None:
        self.active += 1
        self.peak = max(self.peak, self.active)

    def leave(self) -> None:
        self.active -= 1


async def _one_client(index: int, host: str, port: int,
                      events: Sequence[AccessTuple], report: LoadReport,
                      gauge: _Gauge) -> None:
    name = "lg-%05d" % index
    offset = index * CLIENT_ADDR_STRIDE
    try:
        client = await ServeClient.connect(host, port)
    except OSError:
        report.connect_failures += 1
        return
    gauge.enter()
    sent = answered = 0
    alive = True
    try:
        try:
            sent += 1
            response = await client.request(
                {"op": "hello", "client": name, "seq": 0}
            )
            answered += 1
            _tally(report, response)
            if response.get("ok"):
                for k, (warp, pc, addr) in enumerate(events):
                    sent += 1
                    response = await client.request({
                        "op": "access", "warp": warp, "pc": pc,
                        "addr": addr + offset, "seq": k + 1,
                    })
                    answered += 1
                    _tally(report, response)
            sent += 1
            response = await client.request({"op": "bye", "seq": len(events) + 1})
            answered += 1
            _tally(report, response)
        except (OSError, EOFError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, FrameError):
            alive = False
            report.aborted += 1
    finally:
        gauge.leave()
        report.sent += sent
        lost = sent - answered
        report.unanswered += lost
        if alive:
            # The connection survived end to end, so every request must
            # have been answered — anything else is a silent drop.
            report.silent += lost
        await client.close()


async def _run(host: str, port: int, clients: int,
               events_per_client: int, apps: Sequence[str], scale: float,
               seed: int) -> LoadReport:
    per_app = suite_events(apps, scale=scale, seed=seed)
    report = LoadReport(clients=clients)
    gauge = _Gauge()
    tasks = []
    for index in range(clients):
        events = per_app[index % len(per_app)]
        if events_per_client and len(events) > events_per_client:
            events = events[:events_per_client]
        tasks.append(_one_client(index, host, port, events, report, gauge))
    await asyncio.gather(*tasks)
    report.peak_concurrent = gauge.peak
    return report


def run_loadgen(host: str, port: int, *, clients: int = 100,
                events_per_client: int = 30,
                apps: Sequence[str] = ("lps", "hotspot", "backprop"),
                scale: float = 0.1, seed: int = 1) -> LoadReport:
    """Blocking entry point: replay ``apps`` as ``clients`` concurrent
    sessions against a running server and report the tally."""
    return asyncio.run(_run(
        host, port, clients, events_per_client, apps, scale, seed
    ))


def _tally(report: LoadReport, response: Dict[str, Any]) -> None:
    if response.get("ok"):
        report.acked += 1
        if response.get("degraded"):
            report.degraded += 1
    else:
        reason = str(response.get("error", "?"))
        report.nacked[reason] = report.nacked.get(reason, 0) + 1


__all__ = [
    "CLIENT_ADDR_STRIDE",
    "LoadReport",
    "ServeClient",
    "kernel_events",
    "run_loadgen",
    "suite_events",
]
