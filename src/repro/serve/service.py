"""The asyncio serving shell around the deterministic core.

Layering: :mod:`.protocol` decodes and validates bytes, :mod:`.state`
owns every state transition, :mod:`.journal` makes transitions durable —
this module only moves frames and enforces the *resource* policies that
keep an online service alive:

* **Backpressure, not buffering.**  Mutating requests pass through one
  bounded ingress queue.  A full queue sheds the request with an
  explicit ``overload`` NACK at the accept edge — the client always
  hears about it (the zero-silent-drop contract), and memory stays
  bounded no matter how many clients pile on.
* **Deadline budgets.**  Each queued request carries its enqueue time; a
  request that aged past the deadline budget when the worker reaches it
  is answered with a ``deadline`` NACK instead of being processed late.
* **Slow-client eviction.**  Frame reads are bounded: a peer that stalls
  mid-frame (slow-loris) or goes silent past the idle window is told
  ``slow-client`` (best effort) and disconnected.
* **Single-writer ordering.**  One worker task applies all mutations, so
  journal order *is* state order — the property recovery replays by.

Reads (``predict``, ``stats``, ``ping``) are answered inline from the
connection handler: the core guarantees they never move durable state,
so they need neither the queue nor the journal.

Probes: ``ping`` is the liveness check (the event loop is turning);
``stats`` carries ``ready`` (recovery finished, not draining) as the
readiness signal.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.events import NULL_BUS, BusLike, ServeEvent
from repro.runner.transport import WallClock

from .journal import Journal, RecoveryReport
from .protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    ack,
    encode_frame,
    nack,
    validate_request,
)
from .state import ServeConfig

#: Name of the file (inside the data directory) advertising the bound
#: port — how the chaos harness and load generator find a server that
#: asked for an ephemeral port.
PORT_FILE = "serve.port"


@dataclass(frozen=True)
class ServeSettings:
    """Shell-level knobs (resource policy); the learner-side knobs live
    in :class:`ServeConfig` and are journaled with the state."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral; see PORT_FILE
    data_dir: str = "serve-data"
    queue_depth: int = 256         # bounded ingress queue (backpressure)
    deadline_s: float = 2.0        # per-request processing budget
    frame_timeout_s: float = 5.0   # payload must land this fast (slow-loris)
    idle_timeout_s: float = 60.0   # silent connections are closed after this
    snapshot_every: int = 1000     # journal records between snapshots
    batch_limit: int = 32          # max queued requests drained per sweep
    fsync: bool = False
    max_frame: int = MAX_FRAME_BYTES
    config: ServeConfig = field(default_factory=ServeConfig)


@dataclass
class ServerStats:
    """Shell-side tallies.  Deliberately *outside* the durable state:
    denials, sheds and predictions are pure reads/refusals, so counting
    them durably would desynchronize live state from journal replay."""

    connections: int = 0
    requests: int = 0
    acked: int = 0
    nacked: Dict[str, int] = field(default_factory=dict)
    predictions: int = 0
    shed: int = 0
    evicted_slow: int = 0
    malformed: int = 0
    disconnects: int = 0

    def nack_total(self) -> int:
        return sum(self.nacked.values())


class PrefetchServer:
    """One serving process: recovery, the listener, and the worker."""

    def __init__(self, settings: Optional[ServeSettings] = None, *,
                 obs: BusLike = NULL_BUS, clock: Optional[WallClock] = None) -> None:
        self.settings = settings or ServeSettings()
        self.obs = obs
        self.clock = clock if clock is not None else WallClock()
        self.stats = ServerStats()
        self.state = None  # type: ignore[assignment]  # set by start()
        self.journal: Optional[Journal] = None
        self.recovery: Optional[RecoveryReport] = None
        self.ready = False
        self.draining = False
        self.port: Optional[int] = None
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        settings = self.settings
        self.recovery = Journal.recover(settings.data_dir, settings.config)
        self.state = self.recovery.state
        self.journal = Journal(
            settings.data_dir,
            snapshot_every=settings.snapshot_every,
            fsync=settings.fsync,
        )
        self.journal.open()  # simlint: disable=SL601 -- one-shot startup I/O before the listener accepts; nothing is on the loop yet
        self._emit(
            "recover",
            detail="seq=%d replayed=%d skipped=%d quarantined=%d" % (
                self.state.seq, self.recovery.replayed,
                self.recovery.skipped, self.recovery.quarantined,
            ),
        )
        self._queue = asyncio.Queue(maxsize=settings.queue_depth)
        self._worker_task = asyncio.ensure_future(self._worker())
        self._server = await asyncio.start_server(
            self._handle_connection, settings.host, settings.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        port_file = Path(settings.data_dir) / PORT_FILE
        port_file.write_text("%d\n" % self.port)  # simlint: disable=SL601 -- tiny one-shot port-file write during startup, before serving begins
        self.ready = True

    async def serve_forever(self) -> None:
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, answer everything queued,
        snapshot, close.  Requests arriving mid-drain get ``shutdown``
        NACKs — refused explicitly, never dropped."""
        self.draining = True
        self.ready = False
        self._emit("drain")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue is not None:
            await self._queue.join()
        if self._worker_task is not None:
            self._worker_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker_task
        if self.journal is not None and self.state is not None:
            self.journal.write_snapshot(self.state)
            self._emit("snapshot", detail="final seq=%d" % self.state.seq)
            self.journal.close()

    def _emit(self, action: str, client: str = "", detail: str = "") -> None:
        if self.obs.enabled:
            self.obs.emit(ServeEvent(
                cycle=0, sm_id=-1, client=client, action=action, detail=detail,
            ))

    # ------------------------------------------------------------------
    # The single mutation worker

    async def _worker(self) -> None:
        assert self._queue is not None
        queue = self._queue
        while True:
            # Sweep the backlog: one awaited item plus whatever is already
            # queued behind it, so a busy shard drains through the state
            # core's batched lane (``ServiceState.apply_batch``) instead of
            # one ``apply`` per loop turn.  Bounded by ``batch_limit`` to
            # keep the event loop responsive under sustained load.
            items = [await queue.get()]
            while len(items) < self.settings.batch_limit:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._process_swept(items)
            finally:
                for _ in items:
                    queue.task_done()

    def _process_swept(self, items: List[tuple]) -> None:
        """Answer one sweep of queued requests.

        Deadline shedding, cancellation, and hello handling stay
        per-item; contiguous runs of live access records are handed to
        :meth:`_process_access_batch` so the state core can batch them.
        Response order matches queue order exactly.
        """
        run: List[tuple] = []
        for item in items:
            op, client, request, future, enqueued = item
            if future.cancelled():
                continue
            age = self.clock.now() - enqueued
            if age > self.settings.deadline_s:
                self.stats.shed += 1
                self._emit("shed", client=client,
                           detail="deadline: aged %.3fs in queue" % age)
                future.set_result(nack(
                    "deadline", seq=request.get("seq"),
                    detail="aged %.3fs in queue" % age,
                    retry_after_s=self.settings.deadline_s,
                ))
                continue
            if op == "hello":
                self._process_access_batch(run)
                run = []
                future.set_result(self._process_hello(request))
            else:
                run.append((client, request, future))
        self._process_access_batch(run)

    def _process_access_batch(
        self, items: List[tuple]
    ) -> None:
        """Apply a run of access requests through the batched state lane
        and journal each applied record at its own sequence number."""
        if not items:
            return
        if len(items) == 1:
            client, request, future = items[0]
            future.set_result(self._process_access(client, request))
            return
        assert self.state is not None and self.journal is not None
        applied_list = self.state.apply_batch([
            (client, request["warp"], request["pc"], request["addr"],
             request["app"])
            for client, request, _ in items
        ])
        # ``apply_batch`` advances ``seq`` once per *applied* record;
        # walking the results reconstructs each record's own seq for the
        # journal (expired-session records do not consume one).
        seq = self.state.seq - sum(1 for a in applied_list if a is not None)
        for (client, request, future), applied in zip(items, applied_list):
            if applied is None:
                future.set_result(nack(
                    "session-expired", seq=request.get("seq"),
                    detail="session was evicted; re-hello to continue",
                ))
                continue
            seq += 1
            self.journal.record_access(
                seq, client, request["warp"], request["pc"],
                request["addr"], request["app"],
            )
            self._maybe_snapshot()
            if applied.breaker_opened:
                self._emit("breaker_open", client=client,
                           detail="shard %d: %s"
                           % (applied.shard, applied.fault))
            if applied.breaker_closed:
                self._emit("breaker_close", client=client,
                           detail="shard %d" % applied.shard)
            future.set_result(ack(
                seq=request.get("seq"), predictions=applied.predictions,
                degraded=applied.degraded,
            ))

    def _process_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.state is not None and self.journal is not None
        client = request["client"]
        result = self.state.admit(client)
        if not result.ok:
            self._emit("deny", client=client, detail=result.reason)
            return nack("busy", seq=request.get("seq"),
                        detail="session table full of active clients")
        if result.created:
            self.journal.record_admit(self.state.seq, client)
            self._maybe_snapshot()
            if result.evicted:
                self._emit("evict_session", client=result.evicted,
                           detail="evicted for %s" % client)
        self._emit("accept", client=client,
                   detail="new" if result.created else "resumed")
        return ack(seq=request.get("seq"), client=client,
                   session="new" if result.created else "resumed")

    def _process_access(self, client: str,
                        request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.state is not None and self.journal is not None
        applied = self.state.apply(
            client, request["warp"], request["pc"], request["addr"],
            request["app"],
        )
        if applied is None:
            return nack("session-expired", seq=request.get("seq"),
                        detail="session was evicted; re-hello to continue")
        self.journal.record_access(
            self.state.seq, client, request["warp"], request["pc"],
            request["addr"], request["app"],
        )
        self._maybe_snapshot()
        if applied.breaker_opened:
            self._emit("breaker_open", client=client,
                       detail="shard %d: %s" % (applied.shard, applied.fault))
        if applied.breaker_closed:
            self._emit("breaker_close", client=client,
                       detail="shard %d" % applied.shard)
        return ack(seq=request.get("seq"), predictions=applied.predictions,
                   degraded=applied.degraded)

    def _maybe_snapshot(self) -> None:
        assert self.state is not None and self.journal is not None
        if self.journal.maybe_snapshot(self.state):
            self._emit("snapshot", detail="seq=%d" % self.state.seq)

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        decoder = FrameDecoder(self.settings.max_frame)
        client: Optional[str] = None
        try:
            while True:
                frame = await self._read_frame(reader, writer, client)
                if frame is None:
                    break
                self.stats.requests += 1
                try:
                    request = validate_request(decoder.feed(frame)[0])
                except FrameError as exc:
                    # The frame parsed as bytes, so framing is intact:
                    # NACK the bad request and keep the connection.
                    self.stats.malformed += 1
                    self._emit("malformed", client=client or "",
                               detail=str(exc))
                    await self._send(writer, nack("malformed", detail=str(exc)))
                    continue
                keep_going, client = await self._dispatch(
                    writer, request, client
                )
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            self.stats.disconnects += 1
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_frame(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter,
                          client: Optional[str]) -> Optional[bytes]:
        """One bounded frame read; None means the connection is done
        (disconnect, idle eviction, slow-loris eviction, broken framing)."""
        try:
            header = await asyncio.wait_for(
                reader.readexactly(HEADER_BYTES), self.settings.idle_timeout_s
            )
        except asyncio.IncompleteReadError:
            self.stats.disconnects += 1  # clean close or died mid-header
            return None
        except asyncio.TimeoutError:
            await self._evict_slow(writer, client, "idle past %.1fs"
                                   % self.settings.idle_timeout_s)
            return None
        length = int.from_bytes(header, "big")
        if length == 0 or length > self.settings.max_frame:
            self.stats.malformed += 1
            self._emit("malformed", client=client or "",
                       detail="declared frame length %d" % length)
            await self._send(writer, nack(
                "malformed", detail="declared frame length %d is outside "
                "(0, %d]" % (length, self.settings.max_frame)))
            return None  # framing is lost; the connection must die
        try:
            payload = await asyncio.wait_for(
                reader.readexactly(length), self.settings.frame_timeout_s
            )
        except asyncio.IncompleteReadError as exc:
            self.stats.disconnects += 1
            self._emit("malformed", client=client or "",
                       detail="disconnect mid-frame (%d of %d payload bytes)"
                       % (len(exc.partial), length))
            return None  # peer is gone: nothing to NACK at
        except asyncio.TimeoutError:
            await self._evict_slow(
                writer, client,
                "frame stalled past %.1fs" % self.settings.frame_timeout_s)
            return None
        return header + payload

    async def _evict_slow(self, writer: asyncio.StreamWriter,
                          client: Optional[str], detail: str) -> None:
        self.stats.evicted_slow += 1
        self._emit("evict_slow", client=client or "", detail=detail)
        await self._send(writer, nack("slow-client", detail=detail))

    async def _dispatch(self, writer: asyncio.StreamWriter,
                        request: Dict[str, Any],
                        client: Optional[str]) -> Tuple[bool, Optional[str]]:
        """Route one validated request; returns (keep_connection, client)."""
        op = request["op"]
        seq = request.get("seq")
        if op == "ping":
            await self._send(writer, ack(seq=seq, pong=True))
            return True, client
        if op == "bye":
            await self._send(writer, ack(seq=seq, bye=True))
            return False, client
        if op == "stats":
            await self._send(writer, self._stats_response(request))
            return True, client
        if op == "predict":
            await self._send(writer, self._predict_response(request, client))
            return True, client
        if op == "access" and client is None:
            await self._send(writer, nack(
                "protocol", seq=seq, detail="access before hello"))
            return True, client
        # hello / access: mutations go through the bounded queue.
        response = await self._enqueue(op, client or "", request)
        await self._send(writer, response)
        if op == "hello" and response.get("ok"):
            client = request["client"]
        return True, client

    def _stats_response(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.state is not None
        payload: Dict[str, Any] = {
            "ready": self.ready,
            "draining": self.draining,
            "queue": self._queue.qsize() if self._queue else 0,
            "server": {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "acked": self.stats.acked,
                "nacked": dict(self.stats.nacked),
                "shed": self.stats.shed,
                "evicted_slow": self.stats.evicted_slow,
                "malformed": self.stats.malformed,
                "predictions": self.stats.predictions,
            },
        }
        payload.update(self.state.stats())
        if request.get("digest"):
            payload["digest"] = self.state.state_digest()
        # No request-seq echo here: the state's own "seq" (from stats())
        # is the meaningful sequence number in a stats response.
        response = ack()
        response.update(payload)
        return response

    def _predict_response(self, request: Dict[str, Any],
                          client: Optional[str]) -> Dict[str, Any]:
        assert self.state is not None
        seq = request.get("seq")
        if client is None:
            return nack("protocol", seq=seq, detail="predict before hello")
        answer = self.state.predict(
            client, request["warp"], request["pc"], request["addr"],
            request["app"],
        )
        if answer is None:
            return nack("session-expired", seq=seq,
                        detail="session was evicted; re-hello to continue")
        self.stats.predictions += 1
        predictions, degraded = answer
        return ack(seq=seq, predictions=predictions, degraded=degraded)

    async def _enqueue(self, op: str, client: str,
                       request: Dict[str, Any]) -> Dict[str, Any]:
        seq = request.get("seq")
        if self.draining:
            return nack("shutdown", seq=seq, detail="service is draining")
        assert self._queue is not None
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        try:
            self._queue.put_nowait(
                (op, client, request, future, self.clock.now())
            )
        except asyncio.QueueFull:
            self.stats.shed += 1
            self._emit("shed", client=client, detail="overload")
            return nack("overload", seq=seq,
                        detail="ingress queue full (%d)"
                        % self.settings.queue_depth,
                        retry_after_s=self.settings.deadline_s / 4)
        return await future

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, Any]) -> None:
        if response.get("ok"):
            self.stats.acked += 1
        else:
            reason = response.get("error", "?")
            self.stats.nacked[reason] = self.stats.nacked.get(reason, 0) + 1
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            writer.write(encode_frame(response))
            await writer.drain()


async def _run_until_signalled(server: PrefetchServer) -> None:
    import signal

    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    hooked = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # exotic platform / nested loop: stop via KeyboardInterrupt
    try:
        serve = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        serve.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve
        await server.stop()
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)


def run_server(settings: ServeSettings, obs: BusLike = NULL_BUS) -> int:
    """Blocking entry point used by ``snake-repro serve``: start, print
    the endpoint, serve until SIGINT/SIGTERM, drain, exit 0."""
    async def main() -> None:
        server = PrefetchServer(settings, obs=obs)
        await server.start()
        print("serving on %s:%d (data dir %s, queue %d, deadline %.1fs)"
              % (settings.host, server.port, settings.data_dir,
                 settings.queue_depth, settings.deadline_s), flush=True)
        if server.recovery is not None and (
            server.recovery.replayed or server.recovery.snapshot_seq
        ):
            print("recovered seq=%d (snapshot seq=%d, %d journal records "
                  "replayed, %d torn fragments quarantined)"
                  % (server.state.seq, server.recovery.snapshot_seq,
                     server.recovery.replayed, server.recovery.quarantined),
                  flush=True)
        await _run_until_signalled(server)

    asyncio.run(main())
    return 0


__all__ = [
    "PORT_FILE",
    "PrefetchServer",
    "ServeSettings",
    "ServerStats",
    "run_server",
]
