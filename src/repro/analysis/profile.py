"""Per-PC profiling: where does a prefetcher win or lose?

Wraps a simulation with a recording prefetcher/L1 pair and reports, for
every static load PC of a kernel, its access count, L1 hit rate and how
much of it the prefetcher covered.  This is the tool you reach for when a
benchmark underperforms — it shows exactly which loads the Tail table
failed to learn.

Example::

    from repro.analysis.profile import profile_kernel
    rows = profile_kernel("histo", "snake")
    for row in rows:
        print(row)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpusim import GPUConfig
from repro.gpusim.gpu import GPU
from repro.gpusim.unified_cache import L1Outcome
from repro.prefetch import build_setup
from repro.workloads import build_kernel


@dataclass
class PCProfile:
    """Aggregated behaviour of one static load PC."""

    pc: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    reserved: int = 0
    covered: int = 0
    timely: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def coverage(self) -> float:
        return self.covered / self.accesses if self.accesses else 0.0

    def as_row(self) -> str:
        return (
            "pc=%-8s n=%6d hit=%5.1f%% covered=%5.1f%% timely=%5.1f%%"
            % (
                hex(self.pc),
                self.accesses,
                100 * self.hit_rate,
                100 * (self.covered / self.accesses if self.accesses else 0),
                100 * (self.timely / self.accesses if self.accesses else 0),
            )
        )


class _RecordingL1:
    """Proxy that attributes each demand access's outcome to its load PC."""

    def __init__(self, l1, profiles: Dict[int, PCProfile]) -> None:
        self._l1 = l1
        self._profiles = profiles
        self.current_pc: Optional[int] = None

    def __getattr__(self, name):
        return getattr(self._l1, name)

    def demand_load(self, line_addr: int, now: int, sector_mask: int = -1):
        before_covered = self._l1.stats.prefetch.demand_covered
        before_timely = self._l1.stats.prefetch.demand_timely
        outcome, ready = self._l1.demand_load(
            line_addr, now, sector_mask=sector_mask
        )
        if self.current_pc is not None:
            profile = self._profiles.setdefault(
                self.current_pc, PCProfile(pc=self.current_pc)
            )
            profile.accesses += 1
            if outcome is L1Outcome.HIT:
                profile.hits += 1
            elif outcome is L1Outcome.MISS:
                profile.misses += 1
            elif outcome is L1Outcome.RESERVED:
                profile.reserved += 1
            profile.covered += (
                self._l1.stats.prefetch.demand_covered - before_covered
            )
            profile.timely += (
                self._l1.stats.prefetch.demand_timely - before_timely
            )
        return outcome, ready


def profile_kernel(
    app: str,
    mechanism: str = "snake",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> List[PCProfile]:
    """Run ``app`` under ``mechanism`` and return per-PC profiles sorted by
    access count (descending)."""
    config = config or GPUConfig.scaled()
    kernel = build_kernel(app, scale=scale, seed=seed)
    setup = build_setup(mechanism, config)
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
    )

    profiles: Dict[int, PCProfile] = {}
    for sm in gpu.sms:
        recorder = _RecordingL1(sm.l1, profiles)
        sm.l1 = recorder

        def make_hook(sm=sm, recorder=recorder, original=sm._feed_prefetcher):
            def hook(warp, instr, line_addr):
                recorder.current_pc = instr.pc
                original(warp, instr, line_addr)

            return hook

        sm._feed_prefetcher = make_hook()
    gpu.run(kernel)
    return sorted(profiles.values(), key=lambda p: -p.accesses)
