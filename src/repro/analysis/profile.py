"""Per-PC profiling: where does a prefetcher win or lose?

Built on the :mod:`repro.obs` telemetry layer: the simulation runs with a
:class:`repro.obs.PCMetricsSink` attached, which attributes every demand
line transaction (:class:`repro.obs.CacheAccessEvent`) to its load PC.
The report shows, for every static load PC of a kernel, its access count,
L1 hit rate and how much of it the prefetcher covered.  This is the tool
you reach for when a benchmark underperforms — it shows exactly which
loads the Tail table failed to learn.

Example::

    from repro.analysis.profile import profile_kernel
    rows = profile_kernel("histo", "snake")
    for row in rows:
        print(row.as_row())

For the richer view (per-PC prefetch issue counts, chain-walk depths,
per-warp tables, time series), use :func:`repro.obs.runner.traced_run`
directly or the ``snake-repro profile`` / ``snake-repro trace`` commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gpusim import GPUConfig
from repro.gpusim.gpu import GPU
from repro.obs import EventBus, PCMetricsSink
from repro.prefetch import build_setup
from repro.workloads import build_kernel


@dataclass
class PCProfile:
    """Aggregated behaviour of one static load PC."""

    pc: int
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    reserved: int = 0
    covered: int = 0
    timely: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def coverage(self) -> float:
        return self.covered / self.accesses if self.accesses else 0.0

    def as_row(self) -> str:
        return (
            "pc=%-8s n=%6d hit=%5.1f%% covered=%5.1f%% timely=%5.1f%%"
            % (
                hex(self.pc),
                self.accesses,
                100 * self.hit_rate,
                100 * (self.covered / self.accesses if self.accesses else 0),
                100 * (self.timely / self.accesses if self.accesses else 0),
            )
        )


def profile_kernel(
    app: str,
    mechanism: str = "snake",
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> List[PCProfile]:
    """Run ``app`` under ``mechanism`` and return per-PC profiles sorted by
    access count (descending).  Accesses are per line transaction and
    include replayed reservation fails, so totals are at least one per
    static load executed."""
    config = config or GPUConfig.scaled()
    kernel = build_kernel(app, scale=scale, seed=seed)
    setup = build_setup(mechanism, config)

    metrics = PCMetricsSink()
    gpu = GPU(
        config=setup.config,
        prefetcher_factory=setup.prefetcher_factory,
        throttle_factory=setup.throttle_factory,
        storage_mode=setup.storage_mode,
        obs=EventBus([metrics]),
    )
    gpu.run(kernel)

    profiles = [
        PCProfile(
            pc=row.pc,
            accesses=row.accesses,
            hits=row.hits,
            misses=row.misses,
            reserved=row.reserved,
            covered=row.covered,
            timely=row.timely,
        )
        for row in metrics.per_pc.values()
    ]
    return sorted(profiles, key=lambda p: -p.accesses)
