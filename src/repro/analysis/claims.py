"""Automated verification of the paper's claims.

Each :class:`Claim` encodes one falsifiable statement from the paper's
abstract/evaluation as a predicate over the reproduced results; running
:func:`check_claims` re-simulates what is needed and reports, claim by
claim, whether the *shape* holds (the reproduction target — absolute
numbers differ on a scaled substrate, see EXPERIMENTS.md).

CLI: ``snake-repro claims``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List

from . import experiments


@dataclass(frozen=True)
class Claim:
    """One falsifiable statement from the paper."""

    source: str  # where the paper makes it
    statement: str
    check: Callable[[dict], bool]
    measure: Callable[[dict], str]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    holds: bool
    measured: str

    def __str__(self) -> str:
        verdict = "PASS     " if self.holds else "DEVIATION"
        return "%s %-10s %s\n          measured: %s" % (
            verdict, self.claim.source, self.claim.statement, self.measured
        )


def _context(scale: float, seed: int) -> dict:
    """Everything the claim predicates read, computed once."""
    return {
        "fig6": experiments.figure6(scale=scale, seed=seed),
        "fig11": experiments.figure11(scale=scale, seed=seed),
        "fig16": experiments.figure16(scale=scale, seed=seed),
        "fig17": experiments.figure17(scale=scale, seed=seed),
        "fig18": experiments.figure18(scale=scale, seed=seed),
        "fig19": experiments.figure19(scale=scale, seed=seed),
        "fig25": experiments.figure25(scale=scale, seed=seed),
        "table3": experiments.table3(),
    }


def _pct(x: float) -> str:
    return "%.1f%%" % (100 * x)


CLAIMS: List[Claim] = [
    Claim(
        "abstract",
        "Snake achieves high coverage of demand requests (paper: ~80%)",
        lambda c: c["fig16"]["snake"]["mean"] > 0.5,
        lambda c: "mean coverage " + _pct(c["fig16"]["snake"]["mean"]),
    ),
    Claim(
        "abstract",
        "Snake prefetches accurately and timely (paper: ~75%)",
        lambda c: c["fig17"]["snake"]["mean"] > 0.35,
        lambda c: "mean timely accuracy " + _pct(c["fig17"]["snake"]["mean"]),
    ),
    Claim(
        "abstract",
        "Snake improves GPU performance (paper: +17% average)",
        lambda c: c["fig18"]["snake"]["mean"] > 1.05,
        lambda c: "mean IPC x%.2f" % c["fig18"]["snake"]["mean"],
    ),
    Claim(
        "abstract",
        "Snake reduces energy consumption (paper: -17%)",
        lambda c: c["fig19"]["snake"]["mean"] < 1.0,
        lambda c: "mean energy x%.2f" % c["fig19"]["snake"]["mean"],
    ),
    Claim(
        "fig6",
        "The Ideal chain prefetcher out-covers MTA (paper: +25%)",
        lambda c: c["fig6"]["ideal"]["mean"] > c["fig6"]["mta"]["mean"] + 0.10,
        lambda c: "ideal %s vs MTA %s" % (
            _pct(c["fig6"]["ideal"]["mean"]), _pct(c["fig6"]["mta"]["mean"])),
    ),
    Claim(
        "fig6",
        "The Ideal chain prefetcher out-covers CTA-aware (paper: +70%)",
        lambda c: c["fig6"]["ideal"]["mean"] > c["fig6"]["cta"]["mean"] + 0.30,
        lambda c: "ideal %s vs CTA %s" % (
            _pct(c["fig6"]["ideal"]["mean"]), _pct(c["fig6"]["cta"]["mean"])),
    ),
    Claim(
        "fig11",
        "Chains of strides cover more accesses than MTA's fixed strides "
        "(paper: ~70% vs ~55%)",
        lambda c: c["fig11"]["chains"]["mean"] > c["fig11"]["mta"]["mean"],
        lambda c: "chains %s vs MTA %s" % (
            _pct(c["fig11"]["chains"]["mean"]), _pct(c["fig11"]["mta"]["mean"])),
    ),
    Claim(
        "fig16",
        "Snake out-covers the best prior mechanism, MTA (paper: +15%)",
        lambda c: c["fig16"]["snake"]["mean"] > c["fig16"]["mta"]["mean"] + 0.05,
        lambda c: "snake %s vs MTA %s" % (
            _pct(c["fig16"]["snake"]["mean"]), _pct(c["fig16"]["mta"]["mean"])),
    ),
    Claim(
        "fig17",
        "Snake is far more accurate than CTA-aware (paper: +55%)",
        lambda c: c["fig17"]["snake"]["mean"] > c["fig17"]["cta"]["mean"] + 0.20,
        lambda c: "snake %s vs CTA %s" % (
            _pct(c["fig17"]["snake"]["mean"]), _pct(c["fig17"]["cta"]["mean"])),
    ),
    Claim(
        "fig18",
        "LIB sees one of the largest speedups (paper: the largest)",
        lambda c: c["fig18"]["snake"]["lib"]
        >= sorted(
            v for k, v in c["fig18"]["snake"].items() if k != "mean"
        )[-3],
        lambda c: "LIB x%.2f (max x%.2f)" % (
            c["fig18"]["snake"]["lib"],
            max(v for k, v in c["fig18"]["snake"].items() if k != "mean")),
    ),
    Claim(
        "fig18",
        "The aggressive spatial prefetcher (Tree) trails Snake",
        lambda c: c["fig18"]["snake"]["mean"] > c["fig18"]["tree"]["mean"],
        lambda c: "snake x%.2f vs tree x%.2f" % (
            c["fig18"]["snake"]["mean"], c["fig18"]["tree"]["mean"]),
    ),
    Claim(
        "fig16",
        "nw shows low coverage despite regular patterns (low repetition)",
        lambda c: c["fig16"]["snake"]["nw"] < c["fig16"]["snake"]["mean"] + 0.05,
        lambda c: "nw %s vs mean %s" % (
            _pct(c["fig16"]["snake"]["nw"]), _pct(c["fig16"]["snake"]["mean"])),
    ),
    Claim(
        "fig25",
        "Snake's hit rate lands within 5% of Isolated-Snake's",
        lambda c: abs(
            c["fig25"]["snake"]["mean"] - c["fig25"]["isolated-snake"]["mean"]
        ) < 0.05,
        lambda c: "snake %s vs isolated %s" % (
            _pct(c["fig25"]["snake"]["mean"]),
            _pct(c["fig25"]["isolated-snake"]["mean"])),
    ),
    Claim(
        "fig25",
        "Snake raises the baseline L1 hit rate substantially "
        "(paper: 45% -> 79%)",
        lambda c: c["fig25"]["snake"]["mean"]
        > c["fig25"]["baseline"]["mean"] + 0.08,
        lambda c: "baseline %s -> snake %s" % (
            _pct(c["fig25"]["baseline"]["mean"]),
            _pct(c["fig25"]["snake"]["mean"])),
    ),
    Claim(
        "table3",
        "Head table costs 448 bytes, Tail table 320 bytes per SM",
        lambda c: c["table3"]["head"]["total_bytes"] == 448
        and c["table3"]["tail"]["total_bytes"] == 320,
        lambda c: "head %dB, tail %dB" % (
            c["table3"]["head"]["total_bytes"],
            c["table3"]["tail"]["total_bytes"]),
    ),
]


def check_claims(scale: float = 0.5, seed: int = 1) -> List[ClaimResult]:
    """Evaluate every encoded claim; returns the verdicts in order."""
    context = _context(scale, seed)
    return [
        ClaimResult(claim=claim, holds=claim.check(context),
                    measured=claim.measure(context))
        for claim in CLAIMS
    ]


def render_claims(results: List[ClaimResult]) -> str:
    held = sum(1 for r in results if r.holds)
    lines = [str(r) for r in results]
    lines.append("")
    lines.append("%d/%d claims hold on the scaled substrate" % (held, len(results)))
    return "\n".join(lines)
