"""One function per table/figure of the paper's evaluation.

Every ``figure*``/``table*`` function returns plain dictionaries shaped like
the paper's data series (app -> value, or app -> mechanism -> value), so the
benchmark harness and the CLI can print the same rows the paper reports.

Figures 16-19 are different measurements of the *same* simulation sweep, so
the sweep is memoized — computing Fig 16 makes Figs 17-19 free.  Memo keys
are the :mod:`repro.runner` deterministic job hashes, which digest *every*
result-relevant knob (app, mechanism, scale, seed, the full config, and all
mechanism kwargs), so two calls share a cached simulation iff they would
simulate identically.

Resilience: a cell whose simulation hangs (watchdog) or cannot be built
becomes a :class:`repro.runner.FailedResult` instead of aborting the sweep,
and every figure function degrades gracefully — failed cells surface as
``FAILED(reason)`` markers in the rendered output (see ``docs/ROBUSTNESS.md``).
The ``figure16_from``-style helpers compute the same dictionaries from an
externally produced sweep (e.g. the checkpointed ``snake-repro sweep``).
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.gpusim import GPUConfig, SimStats
from repro.gpusim.area import tail_cost_sweep
from repro.gpusim.energy import EnergyParams, energy_of
from repro.gpusim.gpu import GPU
from repro.runner import FailedResult, JobError, JobSpec, execute_job, job_hash
from repro.prefetch import COMPARISON_POINTS, build_setup
from repro.workloads import BENCHMARKS, build_kernel, build_tiled_conv

from . import chains

#: Mechanisms of the motivation study (Fig 6).
MOTIVATION_POINTS = ["intra", "inter", "mta", "cta", "ideal"]

#: job hash -> SimStats; one entry per unique simulation ever run.
_JOB_CACHE: Dict[str, SimStats] = {}
#: tuple of job hashes -> the nested sweep dict (kept so repeated
#: ``comparison_sweep`` calls return the *same* object).
_SWEEP_CACHE: Dict[tuple, Dict[str, Dict[str, SimStats]]] = {}


def run_app(
    app: str,
    mechanism: str,
    config: Optional[GPUConfig] = None,
    scale: float = 1.0,
    seed: int = 1,
    **mech_kwargs,
) -> SimStats:
    """Simulate one benchmark under one mechanism (memoized by job hash)."""
    spec = JobSpec.make(
        app, mechanism, config=config, scale=scale, seed=seed, **mech_kwargs
    )
    key = job_hash(spec)
    if key not in _JOB_CACHE:
        _JOB_CACHE[key] = execute_job(spec)
    return _JOB_CACHE[key]


def _run_cell(app: str, mechanism: str, scale: float, seed: int):
    """One sweep cell: a failure is contained to a ``FailedResult`` so a
    single poisoned cell cannot take down the whole grid."""
    try:
        return run_app(app, mechanism, scale=scale, seed=seed)
    except JobError as exc:
        return FailedResult(kind=exc.kind, message=str(exc),
                            state_dump=exc.state_dump)


def comparison_sweep(
    mechanisms: Optional[Iterable[str]] = None,
    apps: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
) -> Dict[str, Dict[str, SimStats]]:
    """Run every (app, mechanism) pair once; memoized by job hashes."""
    mechanisms = tuple(mechanisms if mechanisms is not None else ["none"] + COMPARISON_POINTS)
    apps = tuple(apps if apps is not None else BENCHMARKS)
    key = tuple(
        job_hash(JobSpec.make(app, mech, scale=scale, seed=seed))
        for app in apps
        for mech in mechanisms
    )
    if key not in _SWEEP_CACHE:
        results: Dict[str, Dict[str, SimStats]] = {}
        for app in apps:
            results[app] = {
                mech: _run_cell(app, mech, scale=scale, seed=seed)
                for mech in mechanisms
            }
        _SWEEP_CACHE[key] = results
    return _SWEEP_CACHE[key]


def _failed(value) -> bool:
    return getattr(value, "failed", False)


def _metric(cell, attr: str):
    """Read one statistic off a sweep cell, passing ``FailedResult``
    markers through untouched so they reach the rendered report."""
    return cell if _failed(cell) else getattr(cell, attr)


def _sweep_mechanisms(sweep: Mapping[str, Mapping[str, object]]) -> List[str]:
    """The non-baseline mechanisms present in a sweep dict, in order."""
    for series in sweep.values():
        return [mech for mech in series if mech != "none"]
    return []


def _with_mean(series: Dict[str, float]) -> Dict[str, float]:
    """Append the cross-application average, as the paper's figures do.

    ``FAILED`` cells are excluded from the mean (it averages the cells
    that did run) but stay in the series so reports show the marker.
    """
    values = [v for v in series.values() if not _failed(v)]
    out = dict(series)
    out["mean"] = statistics.mean(values) if values else 0.0
    return out


# ---------------------------------------------------------------------------
# Motivation (Figs 3-5): baseline behaviour of memory-bound apps.


def figure3(scale: float = 1.0, seed: int = 1) -> Dict[str, float]:
    """Reservation fails / total L1 accesses, baseline GPU."""
    sweep = comparison_sweep(["none"], scale=scale, seed=seed)
    return _with_mean(
        {app: _metric(sweep[app]["none"], "reservation_fail_rate") for app in sweep}
    )


def figure4(scale: float = 1.0, seed: int = 1) -> Dict[str, float]:
    """L1<->L2 interconnect bandwidth utilization, baseline GPU."""
    sweep = comparison_sweep(["none"], scale=scale, seed=seed)
    return _with_mean(
        {app: _metric(sweep[app]["none"], "bandwidth_utilization") for app in sweep}
    )


def figure5(scale: float = 1.0, seed: int = 1) -> Dict[str, float]:
    """Memory stalls / total stalls, baseline GPU."""
    sweep = comparison_sweep(["none"], scale=scale, seed=seed)
    return _with_mean(
        {app: _metric(sweep[app]["none"], "memory_stall_fraction") for app in sweep}
    )


def figure6(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Coverage of Intra/Inter/MTA/CTA vs the Ideal prefetcher."""
    sweep = comparison_sweep(
        ["none"] + MOTIVATION_POINTS, scale=scale, seed=seed
    )
    out: Dict[str, Dict[str, float]] = {}
    for mech in MOTIVATION_POINTS:
        out[mech] = _with_mean(
            {app: _metric(sweep[app][mech], "coverage") for app in sweep}
        )
    return out


# ---------------------------------------------------------------------------
# Chain opportunity (Figs 9-11): pure trace analysis.


def figure9(scale: float = 1.0, seed: int = 1) -> Dict[str, float]:
    """PC_lds in chains / total PC_lds of a representative warp."""
    return _with_mean(
        {
            app: chains.chain_pc_fraction(build_kernel(app, scale=scale, seed=seed))
            for app in BENCHMARKS
        }
    )


def figure10(scale: float = 1.0, seed: int = 1) -> Dict[str, float]:
    """Maximum chain repetition count within a representative warp."""
    series = {
        app: float(
            chains.max_chain_repetition(build_kernel(app, scale=scale, seed=seed))
        )
        for app in BENCHMARKS
    }
    return _with_mean(series)


def figure11(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Accesses prefetchable via chains of strides vs via MTA."""
    chain_series: Dict[str, float] = {}
    mta_series: Dict[str, float] = {}
    for app in BENCHMARKS:
        kernel = build_kernel(app, scale=scale, seed=seed)
        chain_series[app] = chains.chain_predictable_fraction(kernel)
        mta_series[app] = chains.mta_predictable_fraction(kernel)
    return {"chains": _with_mean(chain_series), "mta": _with_mean(mta_series)}


# ---------------------------------------------------------------------------
# Main evaluation (Figs 16-19).
#
# Each figure has a ``_from`` form that derives the series from an already
# materialized sweep dict (``comparison_sweep`` output or the checkpointed
# ``snake-repro sweep``'s ``SweepResult.cells()``).  FAILED cells propagate
# into the series so the reports can render ``FAILED(reason)`` markers; a
# failed *baseline* poisons the derived ratios for that app too.


def figure16_from(sweep: Mapping[str, Mapping]) -> Dict[str, Dict[str, float]]:
    """Prefetch coverage per mechanism, from a materialized sweep."""
    return {
        mech: _with_mean({app: _metric(sweep[app][mech], "coverage") for app in sweep})
        for mech in _sweep_mechanisms(sweep)
    }


def figure17_from(sweep: Mapping[str, Mapping]) -> Dict[str, Dict[str, float]]:
    """Prefetch (timely) accuracy per mechanism, from a materialized sweep."""
    return {
        mech: _with_mean({app: _metric(sweep[app][mech], "accuracy") for app in sweep})
        for mech in _sweep_mechanisms(sweep)
    }


def figure18_from(sweep: Mapping[str, Mapping]) -> Dict[str, Dict[str, float]]:
    """IPC normalized to the baseline GPU, from a materialized sweep.

    Apps whose baseline has zero IPC are skipped (as before); apps whose
    baseline or mechanism cell FAILED keep the failure marker.
    """
    out: Dict[str, Dict[str, float]] = {}
    for mech in _sweep_mechanisms(sweep):
        series: Dict[str, float] = {}
        for app in sweep:
            cell, base = sweep[app][mech], sweep[app].get("none")
            if base is None:
                continue  # sweep ran without a baseline: nothing to normalize by
            if _failed(cell):
                series[app] = cell
            elif _failed(base):
                series[app] = base
            elif base.ipc:
                series[app] = cell.ipc / base.ipc
        out[mech] = _with_mean(series)
    return out


def figure19_from(
    sweep: Mapping[str, Mapping], config: Optional[GPUConfig] = None
) -> Dict[str, Dict[str, float]]:
    """Energy normalized to the baseline GPU, from a materialized sweep."""
    config = config or GPUConfig.scaled()
    out: Dict[str, Dict[str, float]] = {}
    for mech in _sweep_mechanisms(sweep):
        series: Dict[str, float] = {}
        for app in sweep:
            cell, base_cell = sweep[app][mech], sweep[app].get("none")
            if base_cell is None:
                continue
            if _failed(cell):
                series[app] = cell
                continue
            if _failed(base_cell):
                series[app] = base_cell
                continue
            params = EnergyParams.for_config(config)
            base = energy_of(base_cell, config.num_sms, params=params).total_j
            mech_energy = energy_of(
                cell, config.num_sms, params=params, prefetcher_present=True
            ).total_j
            if base:
                series[app] = mech_energy / base
        out[mech] = _with_mean(series)
    return out


def figure16(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Prefetch coverage of the ten comparison points."""
    return figure16_from(comparison_sweep(scale=scale, seed=seed))


def figure17(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Prefetch (timely) accuracy of the ten comparison points."""
    return figure17_from(comparison_sweep(scale=scale, seed=seed))


def figure18(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """IPC normalized to the baseline GPU."""
    return figure18_from(comparison_sweep(scale=scale, seed=seed))


def figure19(
    scale: float = 1.0, seed: int = 1, config: Optional[GPUConfig] = None
) -> Dict[str, Dict[str, float]]:
    """Energy normalized to the baseline GPU (Snake and key competitors)."""
    return figure19_from(comparison_sweep(scale=scale, seed=seed), config=config)


# ---------------------------------------------------------------------------
# Sensitivity studies (Figs 20-23).


def figure20(
    entry_sizes: Tuple[int, ...] = (2, 5, 10, 20, 40),
    scale: float = 1.0,
    seed: int = 1,
) -> Dict[int, float]:
    """Mean Snake coverage vs Tail-table entry count (LRU+popcount)."""
    out = {}
    for entries in entry_sizes:
        config = GPUConfig.scaled().with_(tail_entries=entries)
        stats = [
            run_app(app, "snake", config=config, scale=scale, seed=seed)
            for app in BENCHMARKS
        ]
        out[entries] = statistics.mean(s.coverage for s in stats)
    return out


def figure21(entry_sizes: Tuple[int, ...] = (2, 5, 10, 20, 40)) -> Dict[int, int]:
    """Hardware cost (bytes per SM) vs Tail-table entry count."""
    return tail_cost_sweep(entry_sizes)


def figure22(
    entry_sizes: Tuple[int, ...] = (2, 5, 10, 20, 40),
    scale: float = 1.0,
    seed: int = 1,
) -> Dict[int, float]:
    """Mean Snake coverage with the popcount-only eviction policy."""
    out = {}
    for entries in entry_sizes:
        config = GPUConfig.scaled().with_(tail_entries=entries)
        stats = [
            run_app(
                app, "snake", config=config, scale=scale, seed=seed,
                eviction="pop",
            )
            for app in BENCHMARKS
        ]
        out[entries] = statistics.mean(s.coverage for s in stats)
    return out


def figure23(
    intervals: Tuple[int, ...] = (0, 10, 25, 50, 100, 200),
    scale: float = 1.0,
    seed: int = 1,
) -> Dict[int, Tuple[float, float]]:
    """(coverage, accuracy) trade-off vs throttling interval."""
    out = {}
    for interval in intervals:
        config = GPUConfig.scaled().with_(throttle_interval=interval)
        stats = [
            run_app(app, "snake", config=config, scale=scale, seed=seed)
            for app in BENCHMARKS
        ]
        out[interval] = (
            statistics.mean(s.coverage for s in stats),
            statistics.mean(s.accuracy for s in stats),
        )
    return out


# ---------------------------------------------------------------------------
# Tiling study (Fig 24) and decoupling study (Fig 25).


def figure24(
    tile_fracs: Tuple[float, ...] = (0.25, 0.50, 0.75, 1.0),
    scale: float = 1.0,
    seed: int = 1,
) -> Dict[float, Dict[str, Tuple[float, float]]]:
    """Tiled vs Snake+Tiled: (ipc, energy) normalized to the untiled,
    unprefetched baseline, for each tile size."""
    config = GPUConfig.scaled()

    def run(tile_frac: float, mech: str) -> SimStats:
        kernel = build_tiled_conv(
            tile_frac=tile_frac,
            unified_bytes=config.l1.size_bytes,
            scale=scale,
            seed=seed,
        )
        setup = build_setup(mech, config)
        gpu = GPU(
            config=setup.config,
            prefetcher_factory=setup.prefetcher_factory,
            throttle_factory=setup.throttle_factory,
            storage_mode=setup.storage_mode,
        )
        return gpu.run(kernel)

    baseline = run(0.0, "none")
    params = EnergyParams.for_config(config)
    base_energy = energy_of(baseline, config.num_sms, params=params).total_j
    out: Dict[float, Dict[str, Tuple[float, float]]] = {}
    for frac in tile_fracs:
        tiled = run(frac, "none")
        fused = run(frac, "snake")
        # Tiling changes the instruction mix (staged loads + shared-memory
        # compute), so performance is compared on runtime for the same
        # useful work, not on IPC.
        out[frac] = {
            "tiled": (
                baseline.cycles / tiled.cycles,
                energy_of(tiled, config.num_sms, params=params).total_j
                / base_energy,
            ),
            "snake+tiled": (
                baseline.cycles / fused.cycles,
                energy_of(
                    fused, config.num_sms, params=params, prefetcher_present=True
                ).total_j / base_energy,
            ),
        }
    return out


def figure25(scale: float = 1.0, seed: int = 1) -> Dict[str, Dict[str, float]]:
    """L1 data cache hit rate: baseline / Snake / Isolated-Snake."""
    out: Dict[str, Dict[str, float]] = {"baseline": {}, "snake": {}, "isolated-snake": {}}
    for app in BENCHMARKS:
        out["baseline"][app] = run_app(app, "none", scale=scale, seed=seed).l1_hit_rate
        out["snake"][app] = run_app(app, "snake", scale=scale, seed=seed).l1_hit_rate
        out["isolated-snake"][app] = run_app(
            app, "isolated-snake", scale=scale, seed=seed
        ).l1_hit_rate
    return {label: _with_mean(series) for label, series in out.items()}


# ---------------------------------------------------------------------------
# Tables.


def table3() -> Dict[str, Dict[str, int]]:
    """Snake's table parameters (bytes per entry / total)."""
    from repro.gpusim.area import HeadTableLayout, TailTableLayout

    head, tail = HeadTableLayout(), TailTableLayout()
    return {
        "head": {
            "bytes_per_entry": head.bytes_per_entry,
            "entries": head.entries,
            "total_bytes": head.total_bytes,
        },
        "tail": {
            "bytes_per_entry": tail.bytes_per_entry,
            "entries": tail.entries,
            "total_bytes": tail.total_bytes,
        },
    }
