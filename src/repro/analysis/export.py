"""Export experiment results to CSV or JSON.

The experiment functions return plain dicts (series, matrices, sweeps);
these helpers flatten any of those shapes into rows so results can be
archived or plotted outside the repo::

    from repro.analysis import experiments, export
    export.to_csv(experiments.figure16(), "fig16.csv")
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Mapping, Sequence, Tuple, Union

Pathish = Union[str, Path]


def flatten(result: Mapping) -> Tuple[List[str], List[list]]:
    """Normalize a series / matrix / sweep dict into (header, rows).

    * series  ``{x: value}``            -> columns (key, value)
    * matrix  ``{row: {col: value}}``   -> columns (row, col, value)
    * sweep   ``{x: (v1, v2, ...)}``    -> columns (key, value_0, value_1, ...)
    """
    if not result:
        return ["key", "value"], []

    sample = next(iter(result.values()))
    if isinstance(sample, Mapping):
        rows = [
            [row_key, col_key, value]
            for row_key, series in result.items()
            for col_key, value in series.items()
        ]
        return ["row", "column", "value"], rows
    if isinstance(sample, Sequence) and not isinstance(sample, (str, bytes)):
        width = len(sample)
        header = ["key"] + ["value_%d" % i for i in range(width)]
        rows = [[key, *values] for key, values in result.items()]
        return header, rows
    return ["key", "value"], [[key, value] for key, value in result.items()]


def to_csv(result: Mapping, path: Pathish) -> Path:
    """Write an experiment result as CSV; returns the path written."""
    header, rows = flatten(result)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def to_json(result: Mapping, path: Pathish) -> Path:
    """Write an experiment result as JSON (keys coerced to strings)."""
    def coerce(obj):
        if isinstance(obj, Mapping):
            return {str(k): coerce(v) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return list(obj)
        if not isinstance(obj, (int, float, str, bool, type(None))):
            return str(obj)  # e.g. a FailedResult marker -> "FAILED(kind)"
        return obj

    path = Path(path)
    path.write_text(json.dumps(coerce(result), indent=2, sort_keys=True))
    return path
