"""Fixed-width text rendering of experiment results.

The benchmark harness and CLI print these tables so a run's output can be
compared line-by-line against the paper's figures.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Union

Number = Union[int, float]


def _fmt(value: Number, percent: bool) -> str:
    # Non-numbers are failure markers (repro.runner.FailedResult renders
    # as "FAILED(kind)"): show them verbatim in the failed cell.
    if not isinstance(value, (int, float)):
        return "%7s" % value
    if percent:
        return "%6.1f%%" % (100.0 * value)
    if isinstance(value, int):
        return "%7d" % value
    return "%7.3f" % value


_BAR_WIDTH = 32


def _bar(value: Number, peak: Number) -> str:
    """A proportional ASCII bar, so CLI output reads like the figure."""
    if peak <= 0 or not isinstance(value, (int, float)):
        return ""
    filled = int(round(_BAR_WIDTH * max(0.0, min(1.0, value / peak))))
    return "|" + "#" * filled


def render_series(
    title: str, series: Mapping[str, Number], percent: bool = False
) -> str:
    """One-row figure (app -> value), with proportional bars."""
    lines = [title, "-" * len(title)]
    peak = max(
        (v for v in series.values() if isinstance(v, (int, float))), default=0
    )
    for name, value in series.items():
        lines.append(
            "%-10s %s %s" % (name, _fmt(value, percent), _bar(value, peak))
        )
    return "\n".join(lines)


def render_matrix(
    title: str,
    matrix: Mapping[str, Mapping[str, Number]],
    percent: bool = False,
) -> str:
    """Multi-row figure (mechanism -> app -> value); mechanisms are rows."""
    mechs = list(matrix)
    if not mechs:
        return title
    apps = list(matrix[mechs[0]])
    width = max(len(m) for m in mechs) + 2
    header = " " * width + " ".join("%9s" % a[:9] for a in apps)
    lines = [title, "-" * len(header), header]
    for mech in mechs:
        row = "%-*s" % (width, mech)
        row += " ".join(
            "%9s" % _fmt(matrix[mech].get(app, 0.0), percent).strip()
            for app in apps
        )
        lines.append(row)
    return "\n".join(lines)


def render_sweep(
    title: str,
    sweep: Mapping[Number, Number],
    x_label: str = "x",
    percent: bool = False,
) -> str:
    """Parameter-sweep figure (x -> value)."""
    lines = [title, "-" * len(title), "%-10s %9s" % (x_label, "value")]
    for x, value in sweep.items():
        lines.append("%-10s %9s" % (x, _fmt(value, percent).strip()))
    return "\n".join(lines)


def render_pairs(
    title: str,
    sweep: Mapping[Number, Sequence[Number]],
    labels: Sequence[str],
    x_label: str = "x",
    percent: bool = False,
) -> str:
    """Sweep with several values per x (e.g. coverage and accuracy)."""
    header = "%-10s" % x_label + " ".join("%9s" % l[:9] for l in labels)
    lines = [title, "-" * len(header), header]
    for x, values in sweep.items():
        row = "%-10s" % x
        row += " ".join("%9s" % _fmt(v, percent).strip() for v in values)
        lines.append(row)
    return "\n".join(lines)
