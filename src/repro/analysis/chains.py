"""Offline chain analysis of kernel traces (the paper's §2 motivation).

These functions look only at the *trace*, never at the timing model, exactly
like the paper's "trace-based analysis on the memory accesses":

* :func:`chain_pc_fraction` — Fig 9: how many of a representative warp's
  load PCs participate in a chain (a transition between consecutive load PCs
  whose stride repeats).
* :func:`max_chain_repetition` — Fig 10: how often the most frequent chain
  repeats within a representative warp.
* :func:`chain_predictable_fraction` / :func:`mta_predictable_fraction` —
  Fig 11: the share of memory accesses predictable by chains of strides vs
  by MTA's fixed intra/inter-warp strides.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.gpusim.trace import KernelTrace, WarpTrace

Transition = Tuple[int, int, int]  # (pc1, pc2, stride)


def load_transitions(warp: WarpTrace) -> List[Transition]:
    """Consecutive-load transitions of one warp."""
    loads = warp.loads()
    return [
        (a.pc, b.pc, b.base_addr - a.base_addr)
        for a, b in zip(loads, loads[1:])
    ]


def repeated_transitions(warp: WarpTrace) -> Counter:
    """Transitions that occur at least twice (the chain links the paper's
    detector could train on)."""
    counts = Counter(load_transitions(warp))
    return Counter({t: n for t, n in counts.items() if n >= 2})


def chain_pc_fraction(kernel: KernelTrace) -> float:
    """Fig 9: PCs in chains / total load PCs, for the representative warp."""
    warp = kernel.representative_warp()
    all_pcs = {i.pc for i in warp.loads()}
    if not all_pcs:
        return 0.0
    chain_pcs = set()
    for pc1, pc2, _ in repeated_transitions(warp):
        chain_pcs.add(pc1)
        chain_pcs.add(pc2)
    return len(chain_pcs & all_pcs) / len(all_pcs)


def max_chain_repetition(kernel: KernelTrace) -> int:
    """Fig 10: the repetition count of the most repeated chain link within
    the representative warp."""
    warp = kernel.representative_warp()
    repeated = repeated_transitions(warp)
    if not repeated:
        return 0
    return max(repeated.values())


def chain_predictable_fraction(kernel: KernelTrace) -> float:
    """Fig 11 (chains): the fraction of all load accesses whose incoming
    transition (pc1 -> pc2, stride) was observed before — by any warp, since
    chains detected in one warp serve the others."""
    seen: set = set()
    predictable = 0
    total = 0
    last: Dict[int, Tuple[int, int]] = {}  # warp id -> (pc, addr)
    for warp in kernel.all_warps():
        for instr in warp.loads():
            total += 1
            prev = last.get(warp.warp_id)
            if prev is not None:
                transition = (prev[0], instr.pc, instr.base_addr - prev[1])
                if transition in seen:
                    predictable += 1
                seen.add(transition)
            last[warp.warp_id] = (instr.pc, instr.base_addr)
    return predictable / total if total else 0.0


def mta_predictable_fraction(kernel: KernelTrace) -> float:
    """Fig 11 (MTA): accesses predictable by a fixed intra-warp stride
    (same warp, same PC, repeated delta) or a fixed inter-warp stride
    (adjacent warps, same PC, repeated per-warp delta)."""
    intra_last: Dict[Tuple[int, int], Tuple[int, int]] = {}
    inter_last: Dict[int, Tuple[int, int]] = {}
    inter_stride: Dict[int, Dict[int, int]] = defaultdict(dict)
    predictable = 0
    total = 0
    for warp in kernel.all_warps():
        for instr in warp.loads():
            total += 1
            covered = False

            key = (warp.warp_id, instr.pc)
            prev = intra_last.get(key)
            delta = None
            if prev is not None:
                delta = instr.base_addr - prev[0]
                if delta != 0 and delta == prev[1]:
                    covered = True
            intra_last[key] = (instr.base_addr, delta if delta else (prev[1] if prev else 0))

            last = inter_last.get(instr.pc)
            if last is not None and last[0] != warp.warp_id:
                gap = warp.warp_id - last[0]
                if gap > 0:
                    per_warp = (instr.base_addr - last[1]) / gap
                    votes = inter_stride[instr.pc]
                    if votes.get("stride") == per_warp:
                        covered = True
                    votes["stride"] = per_warp
            inter_last[instr.pc] = (warp.warp_id, instr.base_addr)

            if covered:
                predictable += 1
    return predictable / total if total else 0.0
