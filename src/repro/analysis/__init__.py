"""Metrics, chain analysis, per-figure experiments, claims checking,
profiling, and export."""

from . import chains, claims, export, profile, report

__all__ = ["chains", "claims", "export", "profile", "report"]
