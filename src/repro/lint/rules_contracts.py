"""SL8xx — cross-module contract conformance (docs/STATIC_ANALYSIS.md).

Three vocabularies hold the serve/runner/obs subsystems together:

* the closed NACK reason set (``repro/serve/protocol.py::NACK_REASONS``) —
  every refusal the server sends and every reason a client matches on;
* the event action/phase vocabularies
  (``repro/obs/events.py::SERVE_ACTIONS/LEASE_ACTIONS/JOB_PHASES``) —
  every lifecycle string an emit site produces or a sink compares on;
* the snapshot/journal/checkpoint schema-version constants
  (``STATE_VERSION``, ``FORMAT_VERSION``) — the only legal spelling of a
  version number in durable payloads.

Each is declared in exactly one module and consumed in many.  ``nack()``
validates its reason at runtime, but only on the paths a test happens to
drive; these rules move the check to lint time and extend it to consumer
sites (a chaos assertion comparing against a misspelled reason silently
never fires — that is a contract bug, not a test).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from .engine import RepoContext, Rule, module_of
from .findings import Finding

# ----------------------------------------------------------------------
# SL801


def _constant_strings(expr: ast.expr) -> List[ast.Constant]:
    """String constants in a comparator: a bare literal, or the elements
    of a tuple/list/set literal (membership tests)."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [expr]
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return [
            e for e in expr.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
    return []


def _mentions(expr: ast.expr, tokens: Iterable[str]) -> bool:
    try:
        text = ast.unparse(expr).lower()
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return False
    return any(token in text for token in tokens)


class NackReasonRule(Rule):
    """SL801: a NACK reason string not declared in ``NACK_REASONS``."""

    id = "SL801"
    title = "NACK reason string not declared in serve/protocol.py"
    severity = "error"
    packages = ("repro.serve", "repro.runner", "repro.obs")

    _REASONISH = ("error", "reason", "nack")

    def __init__(self, context: RepoContext) -> None:
        self.context = context

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        vocab = self.context.nack_reasons
        if not vocab or module_of(path) == "repro.serve.protocol":
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, vocab, path))
            elif isinstance(node, ast.Compare):
                findings.extend(self._check_compare(node, vocab, path))
        return findings

    def _check_call(
        self, call: ast.Call, vocab: Set[str], path: str
    ) -> List[Finding]:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "nack":
            return []
        reason: Optional[ast.expr] = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "reason":
                reason = kw.value
        if (
            isinstance(reason, ast.Constant)
            and isinstance(reason.value, str)
            and reason.value not in vocab
        ):
            return [self.finding(
                path, reason,
                "nack() reason %r is not in the protocol vocabulary — "
                "declare it in serve/protocol.py NACK_REASONS or use a "
                "declared reason" % reason.value,
            )]
        return []

    def _check_compare(
        self, node: ast.Compare, vocab: Set[str], path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        sides = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, sides, sides[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                continue
            for lit_side, other in ((left, right), (right, left)):
                for lit in _constant_strings(lit_side):
                    if lit.value in vocab:
                        continue
                    if _mentions(other, self._REASONISH):
                        findings.append(self.finding(
                            path, lit,
                            "comparison against undeclared NACK reason %r "
                            "— this match can never fire; use a reason "
                            "from serve/protocol.py NACK_REASONS"
                            % lit.value,
                        ))
        return findings


# ----------------------------------------------------------------------
# SL802

_EVENT_VOCABS = {
    "ServeEvent": ("action", "serve_actions"),
    "RunnerLeaseEvent": ("action", "lease_actions"),
    "RunnerJobEvent": ("phase", "job_phases"),
}


class EventVocabRule(Rule):
    """SL802: an event ``action``/``phase`` string not declared in the
    ``repro/obs/events.py`` vocabulary tuples — at constructor sites, at
    the scheduler/server emit helpers, and at consumer comparisons."""

    id = "SL802"
    title = "event action/phase string not declared in obs/events.py"
    severity = "error"
    packages = ("repro.serve", "repro.runner", "repro.obs")

    def __init__(self, context: RepoContext) -> None:
        self.context = context

    def _vocab(self, name: str) -> Set[str]:
        return getattr(self.context, name)  # type: ignore[no-any-return]

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        ctx = self.context
        if not (ctx.serve_actions or ctx.lease_actions or ctx.job_phases):
            return []
        findings: List[Finding] = []
        module = module_of(path)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(node, module, path))
            elif isinstance(node, ast.Compare):
                findings.extend(self._check_compare(node, path))
        return findings

    def _flag(
        self, path: str, node: ast.AST, label: str, value: str,
        vocab_name: str,
    ) -> Finding:
        declared = "/".join(
            sorted({"serve_actions": "SERVE_ACTIONS",
                    "lease_actions": "LEASE_ACTIONS",
                    "job_phases": "JOB_PHASES"}[v]
                   for v in vocab_name.split())
        )
        return self.finding(
            path, node,
            "event %s %r is not declared in obs/events.py %s — grow the "
            "vocabulary there, never at the emit or match site"
            % (label, value, declared),
        )

    def _check_call(
        self, call: ast.Call, module: str, path: str
    ) -> List[Finding]:
        findings: List[Finding] = []
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name in _EVENT_VOCABS:
            field, vocab_name = _EVENT_VOCABS[name]
            for kw in call.keywords:
                if (
                    kw.arg == field
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and kw.value.value not in self._vocab(vocab_name)
                ):
                    findings.append(self._flag(
                        path, kw.value, field, kw.value.value, vocab_name,
                    ))
        elif name == "_emit" and module.startswith("repro.serve"):
            arg = call.args[0] if call.args else None
            if (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                and arg.value not in self.context.serve_actions
            ):
                findings.append(self._flag(
                    path, arg, "action", arg.value, "serve_actions",
                ))
        elif name == "_emit_lease" and module.startswith("repro.runner"):
            arg: Optional[ast.expr] = (
                call.args[2] if len(call.args) > 2 else None
            )
            for kw in call.keywords:
                if kw.arg == "action":
                    arg = kw.value
            if (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                and arg.value not in self.context.lease_actions
            ):
                findings.append(self._flag(
                    path, arg, "action", arg.value, "lease_actions",
                ))
        elif name == "_emit_job" and module.startswith("repro.runner"):
            for kw in call.keywords:
                if (
                    kw.arg == "phase"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                    and kw.value.value not in self.context.job_phases
                ):
                    findings.append(self._flag(
                        path, kw.value, "phase", kw.value.value, "job_phases",
                    ))
        return findings

    def _check_compare(self, node: ast.Compare, path: str) -> List[Finding]:
        findings: List[Finding] = []
        sides = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, sides, sides[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                continue
            for lit_side, other in ((left, right), (right, left)):
                field = (
                    other.attr if isinstance(other, ast.Attribute) else None
                )
                if field == "action":
                    vocab = self.context.serve_actions | self.context.lease_actions
                    vocab_name = "serve_actions lease_actions"
                elif field == "phase":
                    vocab = self.context.job_phases
                    vocab_name = "job_phases"
                else:
                    continue
                for lit in _constant_strings(lit_side):
                    if lit.value not in vocab:
                        findings.append(self._flag(
                            path, lit, field, lit.value, vocab_name,
                        ))
        return findings


# ----------------------------------------------------------------------
# SL803

_VERSION_NAME_RE = re.compile(r"^_?[A-Z][A-Z_]*VERSION[A-Z_]*$")
_VERSION_KEYS = {
    "v", "version", "schema_version", "state_version", "format_version",
}


def _declared_version_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and _VERSION_NAME_RE.match(
                    target.id
                ):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _VERSION_NAME_RE.match(node.target.id):
                names.add(node.target.id)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                local = alias.asname or alias.name
                if _VERSION_NAME_RE.match(local):
                    names.add(local)
    return names


def _version_key_read(expr: ast.expr) -> bool:
    """Does this expression read a version-ish key: ``d["v"]`` or
    ``d.get("v")``?"""
    if isinstance(expr, ast.Subscript):
        key = expr.slice
        return (
            isinstance(key, ast.Constant) and key.value in _VERSION_KEYS
        )
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "get"
        and expr.args
    ):
        first = expr.args[0]
        return (
            isinstance(first, ast.Constant) and first.value in _VERSION_KEYS
        )
    return False


class VersionLiteralRule(Rule):
    """SL803: a module that declares (or imports) a schema-version
    constant spells a version as a bare int literal in a durable payload
    key or comparison — the constant and the literal will drift apart."""

    id = "SL803"
    title = "schema version written as a bare literal, not the constant"
    severity = "error"
    packages = ("repro.serve", "repro.runner", "repro.obs")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        declared = _declared_version_names(tree)
        if not declared:
            return []
        names = " / ".join(sorted(declared))
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value in _VERSION_KEYS
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, int)
                        and not isinstance(value.value, bool)
                    ):
                        findings.append(self.finding(
                            path, value,
                            "durable payload writes schema version as "
                            "bare literal under key %r — use the declared "
                            "constant (%s)" % (key.value, names),
                        ))
            elif isinstance(node, ast.Compare):
                sides = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, sides, sides[1:]):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    for key_side, lit_side in ((left, right), (right, left)):
                        if (
                            _version_key_read(key_side)
                            and isinstance(lit_side, ast.Constant)
                            and isinstance(lit_side.value, int)
                            and not isinstance(lit_side.value, bool)
                        ):
                            findings.append(self.finding(
                                path, lit_side,
                                "schema-version comparison against bare "
                                "literal — compare against the declared "
                                "constant (%s)" % names,
                            ))
        return findings
