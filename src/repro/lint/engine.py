"""simlint's chassis: rule base class, repo harvesting, suppression, runner.

The framework is deliberately small: a :class:`Rule` is a class with an id
(``SL101``), a severity, the dotted package prefixes it guards, and a
``check(tree, path) -> list[Finding]`` method over one parsed module.  What
makes the rules *simulator-aware* is the :class:`RepoContext` handed to them
at construction: a pre-pass over the whole file set harvests the event
dataclass schema from ``repro/obs/events.py``, the ``SimStats`` /
``PrefetchStats`` counter fields from ``repro/gpusim/stats.py`` and the
``GPUConfig`` surface (fields, numeric fields, properties, what
``validate()`` covers, and every config attribute read in the repo) from
``repro/gpusim/config.py`` — so each rule can prove schema discipline
instead of pattern-matching strings.

Suppression policy (``docs/STATIC_ANALYSIS.md``): a finding may be silenced
with an end-of-line comment ``# simlint: disable=SL101 -- <justification>``.
The justification is mandatory; a suppression without one (or naming an
unknown rule id) is itself reported as ``SL000`` and cannot be suppressed.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding

#: Matches one suppression comment; group 1 = rule ids, group 2 = reason.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Z0-9,\s]+?)(?:\s*--\s*(.*))?$"
)

#: Default tree linted by ``snake-repro lint`` (relative to the repo root).
DEFAULT_LINT_ROOT = "src/repro"


def module_of(path: str) -> str:
    """Dotted module for a repo-relative path: ``src/repro/gpusim/sm.py`` →
    ``repro.gpusim.sm``.  Paths outside ``src/`` keep their slash-derived
    name, so fixture files can impersonate any package by path alone."""
    parts = Path(path).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Rule:
    """Base class every simlint rule derives from.

    Class attributes double as the machine-readable catalog: ``id`` is the
    stable ``SLnnn`` identifier, ``title`` a one-line summary (shown by
    ``--list-rules`` and required verbatim in ``docs/STATIC_ANALYSIS.md``),
    and ``packages`` the dotted prefixes the rule guards (empty = all of
    ``src/``).
    """

    id: str = "SL000"
    title: str = ""
    severity: str = "error"
    packages: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.packages:
            return True
        module = module_of(path)
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in self.packages
        )

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


# ----------------------------------------------------------------------
# Repo harvesting (the simulator-awareness pre-pass)


def _dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, str]]:
    """Annotated (name, annotation-source) pairs declared directly on a
    class body — dataclass fields.  ``ClassVar`` annotations are skipped
    (they are schema metadata like ``Event.kind``, not payload)."""
    out: List[Tuple[str, str]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = ast.unparse(stmt.annotation)
            if "ClassVar" in ann:
                continue
            out.append((stmt.target.id, ann))
    return out


def _string_tuple_assign(tree: ast.Module, name: str) -> Set[str]:
    """The string elements of a module-level ``NAME = ("a", "b", ...)``
    (plain or annotated) assignment, or empty when absent."""
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            return {
                elt.value for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
    return set()


_CONFIG_NAMES = {"config", "cfg", "gpu_config", "_config"}
_CONFIG_FACTORIES = {"scaled", "volta_v100", "with_", "from_dict"}


def is_configish(node: ast.AST) -> bool:
    """Heuristic: does this expression evaluate to a ``GPUConfig``?

    Covers the idioms the codebase actually uses — a variable named
    ``config``/``cfg``, an attribute ``*.config`` / ``*._config``, and calls
    to the well-known constructors (``GPUConfig(...)``, ``.scaled()``,
    ``.with_(...)``, ``.from_dict(...)``).
    """
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in ("config", "_config")
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "GPUConfig"
        if isinstance(func, ast.Attribute):
            return func.attr in _CONFIG_FACTORIES
    return False


class RepoContext:
    """Everything harvested from the repo that rules need to be
    simulator-aware.  Tests construct one by hand to exercise a rule
    against fixtures without the full source tree."""

    def __init__(
        self,
        event_fields: Optional[Dict[str, Set[str]]] = None,
        stats_fields: Optional[Set[str]] = None,
        prefetch_stats_fields: Optional[Set[str]] = None,
        config_fields: Optional[Set[str]] = None,
        config_numeric_fields: Optional[Set[str]] = None,
        config_attrs: Optional[Set[str]] = None,
        validate_reads: Optional[Set[str]] = None,
        config_reads: Optional[Set[str]] = None,
        config_field_lines: Optional[Dict[str, int]] = None,
        nack_reasons: Optional[Set[str]] = None,
        serve_actions: Optional[Set[str]] = None,
        lease_actions: Optional[Set[str]] = None,
        job_phases: Optional[Set[str]] = None,
    ) -> None:
        #: event class name -> payload field names (inheritance resolved)
        self.event_fields = event_fields or {}
        self.stats_fields = stats_fields or set()
        self.prefetch_stats_fields = prefetch_stats_fields or set()
        #: GPUConfig dataclass fields
        self.config_fields = config_fields or set()
        #: the int/float subset that validate() must cover
        self.config_numeric_fields = config_numeric_fields or set()
        #: every legal attribute on a config object (fields + properties
        #: + methods + dataclass machinery)
        self.config_attrs = config_attrs or set()
        #: self.<field> reads inside GPUConfig.validate()
        self.validate_reads = validate_reads or set()
        #: config fields read anywhere outside config.py's validate gate
        self.config_reads = config_reads or set()
        #: field name -> definition line in config.py (finding anchors)
        self.config_field_lines = config_field_lines or {}
        #: the closed NACK vocabulary from ``repro/serve/protocol.py``
        self.nack_reasons = nack_reasons or set()
        #: action/phase vocabularies declared in ``repro/obs/events.py``
        self.serve_actions = serve_actions or set()
        self.lease_actions = lease_actions or set()
        self.job_phases = job_phases or set()

    # -- harvest helpers -------------------------------------------------

    def harvest_events(self, tree: ast.Module) -> None:
        """Collect the event payload schema from ``repro/obs/events.py``."""
        own: Dict[str, List[Tuple[str, str]]] = {}
        bases: Dict[str, List[str]] = {}
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                own[node.name] = _dataclass_fields(node)
                bases[node.name] = [
                    b.id for b in node.bases if isinstance(b, ast.Name)
                ]
        for name in own:
            if name != "Event" and not name.endswith("Event"):
                continue
            fields: Set[str] = set()
            chain = [name]
            while chain:
                cls = chain.pop()
                fields.update(f for f, _ in own.get(cls, []))
                chain.extend(b for b in bases.get(cls, []) if b in own)
            self.event_fields[name] = fields

    def harvest_vocabularies(self, tree: ast.Module) -> None:
        """Collect the closed action/phase vocabularies declared as
        module-level string tuples in ``repro/obs/events.py``."""
        wanted = {
            "SERVE_ACTIONS": self.serve_actions,
            "LEASE_ACTIONS": self.lease_actions,
            "JOB_PHASES": self.job_phases,
        }
        for name, into in wanted.items():
            into.update(_string_tuple_assign(tree, name))

    def harvest_protocol(self, tree: ast.Module) -> None:
        """Collect the NACK reason vocabulary from
        ``repro/serve/protocol.py``."""
        self.nack_reasons.update(_string_tuple_assign(tree, "NACK_REASONS"))

    def harvest_stats(self, tree: ast.Module) -> None:
        """Collect counter fields from ``repro/gpusim/stats.py``."""
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "SimStats":
                self.stats_fields = {f for f, _ in _dataclass_fields(node)}
            elif isinstance(node, ast.ClassDef) and node.name == "PrefetchStats":
                self.prefetch_stats_fields = {
                    f for f, _ in _dataclass_fields(node)
                }

    def harvest_config(self, tree: ast.Module) -> None:
        """Collect the ``GPUConfig`` surface from ``repro/gpusim/config.py``.

        The nested machine-description dataclasses (``CacheConfig``,
        ``DRAMTimings``) contribute their fields/properties to the *legal
        attribute* set only: variables named ``config`` routinely hold a
        ``CacheConfig`` (the cache constructors), and SL403 must not flag
        ``config.num_sets`` there.
        """
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name in (
                "CacheConfig", "DRAMTimings"
            ):
                self.config_attrs.update(f for f, _ in _dataclass_fields(node))
                self.config_attrs.update(
                    stmt.name for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                )
            if not (isinstance(node, ast.ClassDef) and node.name == "GPUConfig"):
                continue
            for fname, ann in _dataclass_fields(node):
                self.config_fields.add(fname)
                self.config_attrs.add(fname)
                if ann in ("int", "float"):
                    self.config_numeric_fields.add(fname)
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    self.config_field_lines[stmt.target.id] = stmt.lineno
                if isinstance(stmt, ast.FunctionDef):
                    self.config_attrs.add(stmt.name)
                    reads = {
                        sub.attr
                        for sub in ast.walk(stmt)
                        if isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                    }
                    if stmt.name == "validate":
                        self.validate_reads |= reads
                    elif stmt.name != "__post_init__":
                        # Properties / helpers count as real uses: a field
                        # consumed through max_warps_per_sm is not drift.
                        self.config_reads |= reads & self.config_fields

    def harvest_reads(self, tree: ast.Module) -> None:
        """Record config-field reads in an arbitrary module."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and is_configish(node.value):
                if node.attr in self.config_fields:
                    self.config_reads.add(node.attr)


def harvest(files: Sequence[Tuple[str, ast.Module]]) -> RepoContext:
    """One pre-pass over (path, tree) pairs building the shared context."""
    ctx = RepoContext()
    for path, tree in files:
        module = module_of(path)
        if module == "repro.obs.events":
            ctx.harvest_events(tree)
            ctx.harvest_vocabularies(tree)
        elif module == "repro.serve.protocol":
            ctx.harvest_protocol(tree)
        elif module == "repro.gpusim.stats":
            ctx.harvest_stats(tree)
        elif module == "repro.gpusim.config":
            ctx.harvest_config(tree)
    for path, tree in files:
        if module_of(path) != "repro.gpusim.config":
            ctx.harvest_reads(tree)
    return ctx


# ----------------------------------------------------------------------
# Suppressions


class Suppressions:
    """Per-file map of justified line-level suppressions."""

    def __init__(self) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.problems: List[Finding] = []

    @classmethod
    def scan(cls, path: str, source: str, known_ids: Set[str]) -> "Suppressions":
        supp = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            reason = (match.group(2) or "").strip()
            anchor = Finding(
                path=path, line=lineno, col=match.start() + 1,
                rule="SL000", severity="error", message="",
            )
            unknown = sorted(ids - known_ids)
            if unknown:
                supp.problems.append(
                    Finding(
                        path=path, line=lineno, col=anchor.col, rule="SL000",
                        severity="error",
                        message="suppression names unknown rule id%s %s"
                        % ("" if len(unknown) == 1 else "s", ", ".join(unknown)),
                    )
                )
                ids -= set(unknown)
            if not reason:
                supp.problems.append(
                    Finding(
                        path=path, line=lineno, col=anchor.col, rule="SL000",
                        severity="error",
                        message="suppression without justification "
                        "(write `# simlint: disable=SLnnn -- <why>`)",
                    )
                )
                continue  # an unjustified suppression silences nothing
            if ids:
                supp.by_line.setdefault(lineno, set()).update(ids)
        return supp

    def allows(self, finding: Finding) -> bool:
        return finding.rule in self.by_line.get(finding.line, ())


# ----------------------------------------------------------------------
# Runner


class LintError(ValueError):
    """A source file could not be parsed (syntax error during lint)."""


def collect_files(
    root: Path, paths: Optional[Sequence[str]] = None
) -> List[Path]:
    """Python files to lint: the given files/dirs, default ``src/repro``."""
    targets = [root / p for p in paths] if paths else [root / DEFAULT_LINT_ROOT]
    out: List[Path] = []
    for target in targets:
        if target.is_dir():
            out.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            out.append(target)
        else:
            raise LintError("not a python file or directory: %s" % target)
    return [p for p in out if "egg-info" not in str(p)]


def run_lint(
    root: Path,
    paths: Optional[Sequence[str]] = None,
    only: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint the repo rooted at ``root`` and return sorted findings.

    ``only`` filters to specific rule ids (the CLI's ``--rule``);
    ``rules`` substitutes a hand-built rule set (tests).  Harvesting always
    runs over the *default* tree so single-file invocations still know the
    repo's schemas.
    """
    from .registry import build_rules, rule_ids

    files = collect_files(root, paths)
    parsed: List[Tuple[str, ast.Module, str]] = []
    for path in files:
        rel = path.relative_to(root).as_posix() if path.is_absolute() else str(path)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError("cannot parse %s: %s" % (rel, exc)) from exc
        parsed.append((rel, tree, source))

    harvest_set = [(rel, tree) for rel, tree, _ in parsed]
    if paths:
        # Partial invocations still harvest schemas from the full tree.
        try:
            full = collect_files(root, None)
            harvest_set = []
            for path in full:
                rel = path.relative_to(root).as_posix()
                harvest_set.append((rel, ast.parse(path.read_text())))
        except (OSError, LintError, SyntaxError):
            pass  # fixture trees without src/repro harvest from themselves

    context = harvest(harvest_set)
    if rules is None:
        rules = build_rules(context)
    if only:
        wanted = set(only)
        unknown = wanted - rule_ids()
        if unknown:
            raise LintError(
                "unknown rule id%s: %s (see --list-rules)"
                % ("" if len(unknown) == 1 else "s", ", ".join(sorted(unknown)))
            )
        rules = [r for r in rules if r.id in wanted]

    known = rule_ids()
    findings: List[Finding] = []
    for rel, tree, source in parsed:
        supp = Suppressions.scan(rel, source, known)
        findings.extend(supp.problems)
        for rule in rules:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(tree, rel):
                if not supp.allows(finding):
                    findings.append(finding)
    return sorted(findings)
