"""Grandfathering with an atomic ratchet (``lint-baseline.json``).

The baseline maps finding fingerprints (line-insensitive, see
:meth:`repro.lint.findings.Finding.fingerprint`) to allowed counts.  The
contract is a one-way ratchet:

* a finding **not in** the baseline, or **exceeding** its allowed count,
  always fails — new debt cannot be added;
* a baseline entry whose violation was fixed goes *stale* and is reported,
  and ``--update-baseline`` rewrites the file (atomically, via a temp file
  + ``os.replace``) with only what still exists — the allowance can only
  shrink.

The file is committed, so the ratchet-down is reviewed like any other
code change.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .findings import Finding

#: default committed location, relative to the repo root
DEFAULT_BASELINE = "lint-baseline.json"

_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class BaselineResult:
    """Outcome of screening findings against a baseline."""

    #: findings not covered by the baseline — these fail the gate
    new: List[Finding] = field(default_factory=list)
    #: findings absorbed by a baseline allowance
    grandfathered: List[Finding] = field(default_factory=list)
    #: fingerprint -> unused allowance (fixed debt; ratchet these away)
    stale: Dict[str, int] = field(default_factory=dict)


def load(path: Path) -> Dict[str, int]:
    """Read a baseline; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BaselineError("cannot read baseline %s: %s" % (path, exc)) from exc
    if (
        not isinstance(data, dict)
        or data.get("version") != _VERSION
        or not isinstance(data.get("findings"), dict)
    ):
        raise BaselineError(
            "baseline %s is not a version-%d simlint baseline" % (path, _VERSION)
        )
    findings = data["findings"]
    for key, count in findings.items():
        if not isinstance(count, int) or count < 1:
            raise BaselineError(
                "baseline entry %r has invalid count %r" % (key, count)
            )
    return dict(findings)


def save(path: Path, findings: Sequence[Finding]) -> Dict[str, int]:
    """Atomically (re)write the baseline from the current findings."""
    counts = Counter(f.fingerprint() for f in findings)
    payload = {
        "version": _VERSION,
        "tool": "simlint",
        "comment": (
            "Grandfathered findings; counts may only shrink. Regenerate "
            "with `snake-repro lint --update-baseline`."
        ),
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    text = json.dumps(payload, indent=2, sort_keys=False) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return dict(counts)


def screen(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> BaselineResult:
    """Split findings into new vs. grandfathered and spot stale allowances.

    Within one fingerprint the first ``allowed`` occurrences (in sorted
    order) are grandfathered; every excess occurrence is new.
    """
    result = BaselineResult()
    used: Counter = Counter()
    for finding in sorted(findings):
        key = finding.fingerprint()
        if used[key] < baseline.get(key, 0):
            used[key] += 1
            result.grandfathered.append(finding)
        else:
            result.new.append(finding)
    for key, allowed in sorted(baseline.items()):
        if used[key] < allowed:
            result.stale[key] = allowed - used[key]
    return result
