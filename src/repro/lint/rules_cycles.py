"""Cycle-accounting rules (SL3xx).

The cycle-accurate model has exactly one place where simulated time moves:
the SM's event loop (``__init__`` initialises the clock, ``step`` and
``step_event`` advance it).  A stray ``self.now += n`` in a cache or
prefetcher would silently skew every latency in the run, so SL301 pins
clock writes to the designated advance methods.

SL302 guards the statistics the figures are built from: ``SimStats`` /
``PrefetchStats`` are plain dataclasses, so a typo'd counter name
(``stats.l1_hit`` for ``stats.l1_hits``) would *create* a fresh attribute
at runtime instead of failing — a counter the conservation auditor
(``SimStats.verify``) never sees.  Every stats write must target a
declared field.

SL303 protects the skip-ahead performance model (docs/PERFORMANCE.md):
memory-side components are functional — they take a timestamp and return
one (next-free-time resources) — and only the event core in
``repro/gpusim/sm.py`` / ``gpu.py`` may crank a clock cycle-by-cycle.  A
``self.now += 1`` creeping into a cache or DRAM model would reintroduce
per-cycle polling and silently destroy the event core's wall-clock wins,
so the rule forbids additive clock advancement outside the core outright.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from .engine import RepoContext, Rule
from .findings import Finding

#: the only methods allowed to move a component clock
ADVANCE_METHODS = ("__init__", "step", "step_event", "reset")

#: attribute names that *are* component clocks in this codebase
_CLOCK_ATTRS = ("now", "cycle")

#: the only modules allowed to crank a clock with ``+=`` — the event core
EVENT_CORE_MODULES = ("gpusim/sm.py", "gpusim/gpu.py")


class CycleAdvanceRule(Rule):
    """SL301: simulated time advances only inside designated methods."""

    id = "SL301"
    title = "clock written outside a designated advance method"
    packages = ("repro.gpusim", "repro.core", "repro.prefetch")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for func, targets in _attribute_writes(tree):
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _CLOCK_ATTRS
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and (func is None or func.name not in ADVANCE_METHODS)
                ):
                    where = func.name if func is not None else "module scope"
                    findings.append(self.finding(
                        path, target,
                        "self.%s written in %s; the clock may only move in "
                        "%s" % (target.attr, where, "/".join(ADVANCE_METHODS)),
                    ))
        return findings


class CycleCrankRule(Rule):
    """SL303: clocks may not be cranked with ``+=`` outside the event core
    — components report horizons (next-free timestamps) instead of ticking
    (docs/PERFORMANCE.md's horizon contract)."""

    id = "SL303"
    title = "clock cranked with += outside the event core"
    packages = ("repro.gpusim", "repro.core", "repro.prefetch")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if path.endswith(EVENT_CORE_MODULES):
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr in _CLOCK_ATTRS
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                findings.append(self.finding(
                    path, node.target,
                    "self.%s += … outside the event core; model time as "
                    "next-free horizons, never per-cycle ticks (the skip-"
                    "ahead loop would silently degrade to polling)"
                    % node.target.attr,
                ))
        return findings


class StatsFieldRule(Rule):
    """SL302: stats writes must target declared SimStats/PrefetchStats
    fields (``verify()`` only audits declared counters)."""

    id = "SL302"
    title = "write to an undeclared stats counter"

    def __init__(self, context: RepoContext) -> None:
        self._sim = context.stats_fields
        self._prefetch = context.prefetch_stats_fields

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if not self._sim or path.endswith("gpusim/stats.py"):
            # No schema harvested (fixture tree), or the defining module
            # itself — its internals are covered by tests + verify().
            return []
        # repro.serve's ``stats`` attribute is a ServerStats (the serving
        # shell's tallies), not a SimStats; the stats-name heuristic
        # cannot tell them apart.
        if "/serve/" in path.replace("\\", "/"):
            return []
        findings: List[Finding] = []
        for func, targets in _attribute_writes(tree):
            stats_locals = _stats_locals(func) if func is not None else {}
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owner = target.value
                # <...>.stats.prefetch.X  /  <...>.stats.X
                if isinstance(owner, ast.Attribute) and owner.attr == "prefetch" \
                        and isinstance(owner.value, ast.Attribute) \
                        and owner.value.attr == "stats":
                    if target.attr not in self._prefetch:
                        findings.append(self._unknown(
                            path, target, "PrefetchStats", self._prefetch
                        ))
                elif isinstance(owner, ast.Attribute) and owner.attr == "stats":
                    if target.attr not in self._sim:
                        findings.append(self._unknown(
                            path, target, "SimStats", self._sim
                        ))
                elif isinstance(owner, ast.Name) and owner.id in stats_locals:
                    declared = (
                        self._sim
                        if stats_locals[owner.id] == "SimStats"
                        else self._prefetch
                    )
                    if target.attr not in declared:
                        findings.append(self._unknown(
                            path, target, stats_locals[owner.id], declared
                        ))
        return findings

    def _unknown(
        self, path: str, target: ast.Attribute, cls: str, declared: Set[str]
    ) -> Finding:
        return self.finding(
            path, target,
            "%s has no declared counter %r — verify() will never audit it "
            "(declared: %s)" % (cls, target.attr, ", ".join(sorted(declared))),
        )


def _attribute_writes(tree: ast.Module):
    """Yield (enclosing function or None, [store targets]) for every
    assignment / augmented assignment in the module."""
    def walk(node: ast.AST, func) -> Iterable:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, child)
            else:
                if isinstance(child, ast.Assign):
                    yield func, child.targets
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    yield func, [child.target]
                yield from walk(child, func)

    return walk(tree, None)


def _stats_locals(func: ast.AST) -> Dict[str, str]:
    """Names bound to ``SimStats()`` / ``PrefetchStats()`` in a function —
    lets the rule follow ``total = SimStats(); total.l1_hitz = 1``."""
    out: Dict[str, str] = {}
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in ("SimStats", "PrefetchStats")
        ):
            out[node.targets[0].id] = node.value.func.id
    return out
