"""Generic dataflow solving over :mod:`repro.lint.cfg` graphs.

Three layers, each one screwdriver-plain:

* :class:`DataflowProblem` — the protocol a client analysis implements:
  a join-semilattice value domain plus block and edge transfer functions.
  Edge transfers see both the block's *in* and *out* values because
  exception edges need pre-state semantics (a statement that raises did
  not complete, so its effect must not leak onto the ``except`` edge —
  except for settling effects, where the client decides).
* :func:`solve` — the classic worklist fixpoint, forward or backward.
* Two shipped analyses: :class:`ReachingDefinitions` (which binding sites
  reach each block) and :class:`MustRelease` (the three-point lattice
  ``UNREACHED < SETTLED < HELD`` proving a resource acquired at one block
  is settled on every path to both exits).  SL7xx is a thin shell around
  :class:`MustRelease`; SL6xx reuses :func:`solve` with its own domains.

Values must be hashable/comparable with ``==``; ``join`` must be monotone
(the solver re-queues successors only when a join actually grows a value,
so a non-monotone join would not terminate).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import ast

from .cfg import Block, Edge, FunctionCFG, binds


class DataflowProblem:
    """Client protocol for :func:`solve`.  Subclass and override."""

    #: "forward" (values flow entry → exits) or "backward"
    direction: str = "forward"

    def initial(self) -> object:
        """Bottom: the value for a block no fact has reached yet."""
        raise NotImplementedError

    def boundary(self) -> object:
        """The value entering the graph (at entry for forward problems,
        at the exits for backward ones)."""
        return self.initial()

    def join(self, left: object, right: object) -> object:
        raise NotImplementedError

    def transfer_block(self, block: Block, value: object) -> object:
        """Value after executing ``block`` given ``value`` before it."""
        return value

    def transfer_edge(
        self, edge: Edge, in_value: object, out_value: object
    ) -> object:
        """Value carried along ``edge``.  Default: the source block's
        out-value.  Override to make exception edges use pre-state or to
        kill facts on branch edges (``if lease:`` false edge)."""
        return out_value


class Solution:
    """Fixpoint result: per-block in/out values keyed by block id."""

    def __init__(
        self, graph: FunctionCFG,
        in_values: Dict[int, object], out_values: Dict[int, object],
    ) -> None:
        self.graph = graph
        self.in_values = in_values
        self.out_values = out_values

    def value_in(self, block: Block) -> object:
        return self.in_values[block.bid]

    def value_out(self, block: Block) -> object:
        return self.out_values[block.bid]


def solve(graph: FunctionCFG, problem: DataflowProblem) -> Solution:
    """Worklist fixpoint of ``problem`` over ``graph``."""
    forward = problem.direction == "forward"
    in_values: Dict[int, object] = {
        b.bid: problem.initial() for b in graph.blocks
    }
    if forward:
        in_values[graph.entry.bid] = problem.boundary()
    else:
        for exit_block in graph.exits():
            in_values[exit_block.bid] = problem.boundary()
    out_values: Dict[int, object] = {}

    worklist = deque(graph.blocks)
    queued = {b.bid for b in graph.blocks}
    while worklist:
        block = worklist.popleft()
        queued.discard(block.bid)
        in_value = in_values[block.bid]
        out_value = problem.transfer_block(block, in_value)
        first = block.bid not in out_values
        if not first and out_values[block.bid] == out_value:
            continue
        out_values[block.bid] = out_value
        edges = block.succs if forward else block.preds
        for edge in edges:
            neighbor = edge.dst if forward else edge.src
            carried = problem.transfer_edge(edge, in_value, out_value)
            merged = problem.join(in_values[neighbor.bid], carried)
            if merged != in_values[neighbor.bid] or neighbor.bid not in out_values:
                in_values[neighbor.bid] = merged
                if neighbor.bid not in queued:
                    queued.add(neighbor.bid)
                    worklist.append(neighbor)
    # blocks never transferred (unreachable): out = in
    for block in graph.blocks:
        out_values.setdefault(block.bid, in_values[block.bid])
    return Solution(graph, in_values, out_values)


# ----------------------------------------------------------------------
# Reaching definitions


class ReachingDefinitions(DataflowProblem):
    """Forward may-analysis: the set of ``(name, block id)`` binding sites
    that may reach each block.  Parameters bind at entry (block id of
    entry).  ``del x`` kills without generating."""

    direction = "forward"

    def __init__(self, graph: FunctionCFG) -> None:
        self.graph = graph
        args = graph.func.args
        params = [
            a.arg for a in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            )
        ]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self._params = params

    def initial(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset()

    def boundary(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset((p, self.graph.entry.bid) for p in self._params)

    def join(self, left: object, right: object) -> object:
        return left | right  # type: ignore[operator]

    def transfer_block(self, block: Block, value: object) -> object:
        bound = binds(block)
        if not bound:
            return value
        kept = frozenset(
            (name, bid) for name, bid in value  # type: ignore[union-attr]
            if name not in bound
        )
        dels = set()
        for stmt in block.stmts:
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            dels.add(sub.id)
        gen = frozenset((name, block.bid) for name in bound - dels)
        return kept | gen

    def defs_reaching(
        self, solution: Solution, block: Block, name: str
    ) -> Set[int]:
        value = solution.value_in(block)
        return {
            bid for n, bid in value  # type: ignore[union-attr]
            if n == name
        }


# ----------------------------------------------------------------------
# Must-release


#: three-point lattice; join = max, so HELD (may still be held) dominates
UNREACHED, SETTLED, HELD = 0, 1, 2


class MustRelease(DataflowProblem):
    """Forward may-hold analysis for one acquisition site.

    ``acquire_bid`` generates HELD; any block id in ``settle_bids`` drops
    HELD back to SETTLED (a release call, or an ownership escape — return,
    store to an attribute, handing the object to another call).  Exception
    edges leaving the *acquire* block carry the pre-state (an acquire that
    raised never acquired); exception edges leaving a *settle* block carry
    the settled post-state (a ``close()`` that raised still relinquished
    ownership for lint purposes).  If ``guard_name`` is set, the branch
    where ``if <guard_name>:`` is false also settles — the acquisition
    provably did not happen on that path (circuit-breaker half-open
    trials are guarded exactly like this).
    """

    direction = "forward"

    def __init__(
        self,
        acquire_bid: int,
        settle_bids: Iterable[int],
        guard_name: Optional[str] = None,
    ) -> None:
        self.acquire_bid = acquire_bid
        self.settle_bids = set(settle_bids)
        self.guard_name = guard_name

    def initial(self) -> int:
        return UNREACHED

    def boundary(self) -> int:
        # flow exists at entry with nothing held; UNREACHED is reserved
        # for blocks the fixpoint has not delivered any path to yet
        return SETTLED

    def join(self, left: object, right: object) -> object:
        return max(left, right)  # type: ignore[call-overload]

    def transfer_block(self, block: Block, value: object) -> object:
        state = int(value)  # type: ignore[arg-type]
        if block.bid in self.settle_bids and state == HELD:
            state = SETTLED
        if block.bid == self.acquire_bid and state != UNREACHED:
            state = HELD
        return state

    def transfer_edge(
        self, edge: Edge, in_value: object, out_value: object
    ) -> object:
        if edge.kind == "except" and edge.src.bid == self.acquire_bid:
            # the acquiring statement raised: nothing was acquired
            return in_value
        if self.guard_name and edge.cond is not None:
            if _branch_refutes(edge, self.guard_name):
                if int(out_value) == HELD:  # type: ignore[arg-type]
                    return SETTLED
        return out_value


def _branch_refutes(edge: Edge, name: str) -> bool:
    """True when taking ``edge`` proves the guard variable is falsy:
    the false edge of ``if name:`` or the true edge of ``if not name:``."""
    cond = edge.cond
    if edge.kind == "false" and isinstance(cond, ast.Name):
        return cond.id == name
    if (
        edge.kind == "true"
        and isinstance(cond, ast.UnaryOp)
        and isinstance(cond.op, ast.Not)
        and isinstance(cond.operand, ast.Name)
    ):
        return cond.operand.id == name
    return False


class Leak:
    """One escaping path: the resource may reach ``exit_kind``
    (``"normal"`` or ``"exception"``) still held.  ``path_kinds`` is the
    edge-kind witness from the acquisition to that exit — symbolic on
    purpose, so SL7xx messages stay line-number-free and baseline
    fingerprints survive unrelated edits."""

    def __init__(self, exit_kind: str, path_kinds: Tuple[str, ...]) -> None:
        self.exit_kind = exit_kind
        self.path_kinds = path_kinds

    def describe(self) -> str:
        hops = [k for k in self.path_kinds if k != "normal"]
        route = " via " + "/".join(dict.fromkeys(hops)) if hops else ""
        what = (
            "the exceptional exit" if self.exit_kind == "exception"
            else "the normal exit"
        )
        return what + route


def find_leaks(
    graph: FunctionCFG,
    acquire: Block,
    settle_bids: Iterable[int],
    guard_name: Optional[str] = None,
) -> List[Leak]:
    """Solve :class:`MustRelease` and return a leak witness per exit the
    resource may still be held at (empty list = proven settled on all
    paths)."""
    problem = MustRelease(acquire.bid, settle_bids, guard_name)
    solution = solve(graph, problem)
    leaks: List[Leak] = []
    for exit_block, kind in (
        (graph.exit, "normal"), (graph.raise_exit, "exception"),
    ):
        if int(solution.value_in(exit_block)) == HELD:  # type: ignore[arg-type]
            path = _held_path(graph, problem, solution, acquire, exit_block)
            leaks.append(Leak(kind, path))
    return leaks


def _held_path(
    graph: FunctionCFG,
    problem: MustRelease,
    solution: Solution,
    acquire: Block,
    target: Block,
) -> Tuple[str, ...]:
    """BFS witness: a shortest edge-kind path from the acquisition to
    ``target`` along which the value stays HELD."""
    parents: Dict[int, Tuple[int, str]] = {}
    queue = deque([acquire])
    seen = {acquire.bid}
    while queue:
        block = queue.popleft()
        if block is target:
            break
        for edge in block.succs:
            carried = problem.transfer_edge(
                edge,
                solution.value_in(block),
                solution.value_out(block),
            )
            if int(carried) != HELD:  # type: ignore[arg-type]
                continue
            if edge.dst.bid in seen:
                continue
            seen.add(edge.dst.bid)
            parents[edge.dst.bid] = (block.bid, edge.kind)
            queue.append(edge.dst)
    kinds: List[str] = []
    bid = target.bid
    while bid in parents:
        bid, kind = parents[bid]
        kinds.append(kind)
    return tuple(reversed(kinds))
