"""SARIF 2.1.0 rendering for simlint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file produced here annotates PR diffs
inline with each finding.  One run, one tool (``simlint``), the full rule
catalog as ``tool.driver.rules`` (so GitHub can render titles and help
text), and one result per finding.

Baseline semantics map onto SARIF's ``baselineState``: findings the
ratchet would fail the build for are ``new``; grandfathered ones are
``unchanged`` (uploaded so they still annotate, but recognisably old).
The simlint fingerprint — path::rule::message, line-insensitive by
design — rides along in ``partialFingerprints`` so code-scanning dedups
findings across pushes the same way ``lint-baseline.json`` does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .findings import Finding
from .registry import catalog

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key; bump the suffix if fingerprint() semantics change
FINGERPRINT_KEY = "simlint/v1"

_LEVELS = {"error": "error", "warning": "warning", "warn": "warning"}


def _rules_array() -> List[Dict[str, Any]]:
    rules = []
    for rule_id, title, scope in catalog():
        rules.append({
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": title},
            "fullDescription": {
                "text": "%s (guards %s; see docs/STATIC_ANALYSIS.md)"
                % (title, scope),
            },
            "defaultConfiguration": {"level": "error"},
        })
    return rules


def _result(finding: Finding, baseline_state: str) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "note"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": max(finding.col, 1),
                },
            },
        }],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
        "baselineState": baseline_state,
    }


def to_sarif(
    findings: Sequence[Finding],
    grandfathered: Sequence[Finding] = (),
) -> Dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log dict (``json.dump`` it)."""
    results = [_result(f, "new") for f in findings]
    results += [_result(f, "unchanged") for f in grandfathered]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "version": "2.0.0",
                    "rules": _rules_array(),
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {
                "SRCROOT": {"description": {"text": "repository root"}},
            },
            "results": results,
        }],
    }
