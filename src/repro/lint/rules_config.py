"""Config-drift rules (SL4xx).

``GPUConfig`` is the single source of truth for the modeled machine, so
three kinds of drift matter:

* a field nothing reads (SL401) — the knob silently does nothing, which is
  worse than not having it: sweeps over it produce identical rows that
  *look* like a real insensitivity result;
* a numeric field ``validate()`` does not cover (SL402) — a nonsense value
  sails into the timing model instead of failing construction;
* a reference to a field that does not exist (SL403) — a renamed field
  leaves ``.with_(old_name=...)`` call sites or ``config.old_name`` reads
  that only explode (or worse, no-op) at runtime.

All three anchor their findings at ``repro/gpusim/config.py`` (SL401/402)
or the offending call site (SL403), using the surface harvested by the
engine pre-pass.
"""

from __future__ import annotations

import ast
from typing import List

from .engine import RepoContext, Rule, is_configish
from .findings import Finding

#: attributes legal on any dataclass instance (not drift)
_DATACLASS_ATTRS = {"__dataclass_fields__", "__class__", "__dict__"}


class ConfigFieldReadRule(Rule):
    """SL401: every GPUConfig field must be read by the simulator."""

    id = "SL401"
    title = "GPUConfig field never read outside validate()"

    def __init__(self, context: RepoContext) -> None:
        self._ctx = context

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if not path.endswith("gpusim/config.py"):
            return []
        ctx = self._ctx
        findings: List[Finding] = []
        for field in sorted(ctx.config_fields - ctx.config_reads):
            line = ctx.config_field_lines.get(field, 1)
            anchor = ast.Module(body=[], type_ignores=[])
            anchor.lineno, anchor.col_offset = line, 0
            findings.append(self.finding(
                path, anchor,
                "GPUConfig.%s is never read by the simulator — a knob that "
                "does nothing; wire it up or remove it" % field,
            ))
        return findings


class ConfigValidateRule(Rule):
    """SL402: every numeric GPUConfig field must be covered by validate()."""

    id = "SL402"
    title = "numeric GPUConfig field not covered by validate()"

    def __init__(self, context: RepoContext) -> None:
        self._ctx = context

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if not path.endswith("gpusim/config.py"):
            return []
        ctx = self._ctx
        findings: List[Finding] = []
        for field in sorted(ctx.config_numeric_fields - ctx.validate_reads):
            line = ctx.config_field_lines.get(field, 1)
            anchor = ast.Module(body=[], type_ignores=[])
            anchor.lineno, anchor.col_offset = line, 0
            findings.append(self.finding(
                path, anchor,
                "GPUConfig.%s is numeric but validate() never checks it; "
                "an InvalidConfigError bound is required" % field,
            ))
        return findings


class UnknownConfigFieldRule(Rule):
    """SL403: no reference to a GPUConfig field that does not exist."""

    id = "SL403"
    title = "reference to a nonexistent GPUConfig field"

    def __init__(self, context: RepoContext) -> None:
        self._attrs = context.config_attrs

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if not self._attrs or path.endswith("gpusim/config.py"):
            return []
        # repro.serve's ``config`` attributes are a ServeConfig (its own
        # frozen dataclass with __post_init__ validation), not a GPUConfig;
        # the configish-name heuristic cannot tell them apart.
        if "/serve/" in path.replace("\\", "/"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and is_configish(node.value):
                if (
                    node.attr not in self._attrs
                    and node.attr not in _DATACLASS_ATTRS
                    and not node.attr.startswith("__")
                ):
                    findings.append(self.finding(
                        path, node,
                        "GPUConfig has no attribute %r — renamed or typo'd "
                        "config field" % node.attr,
                    ))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "with_"
                and is_configish(node.func.value)
            ):
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg not in self._attrs:
                        findings.append(self.finding(
                            path, node,
                            "with_(%s=...) names a nonexistent GPUConfig "
                            "field" % kw.arg,
                        ))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "GPUConfig"
            ):
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg not in self._attrs:
                        findings.append(self.finding(
                            path, node,
                            "GPUConfig(%s=...) names a nonexistent field" % kw.arg,
                        ))
        return findings
