"""Determinism rules (SL1xx).

The simulator's contract is bit-identical reruns: same trace + same seed =
same figures (the runner's checkpoint resume and the chaos harness both
lean on it).  Three things silently break that contract in Python:

* wall-clock reads (``time.time()`` & friends) leaking into simulated time,
* the process-global RNG (``random.random()``, ``numpy.random.*``,
  ``os.urandom``) instead of a seeded ``random.Random`` instance,
* iteration order of ``set`` objects, which for strings varies run-to-run
  under hash randomisation (PYTHONHASHSEED).

These rules guard the timing-model packages (``repro.gpusim``,
``repro.core``, ``repro.prefetch``) and the serving layer
(``repro.serve``, whose journal-replay recovery certificate rests on the
same bit-identity contract — wall-clock deadlines there go through the
injected ``WallClock``); the wall-clock-domain runner is exempt by
construction.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from .engine import Rule
from .findings import Finding

GUARDED: Tuple[str, ...] = (
    "repro.gpusim", "repro.core", "repro.prefetch", "repro.serve",
)

#: time-module functions that read the host clock
_WALL_CLOCK_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
}
#: datetime/date constructors that read the host clock
_NOW_FNS = {"now", "utcnow", "today"}


class WallClockRule(Rule):
    """SL101: no wall-clock reads inside the timing model."""

    id = "SL101"
    title = "wall-clock read in simulated-time code"
    packages = GUARDED

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and node.attr in _WALL_CLOCK_FNS
                ):
                    findings.append(self.finding(
                        path, node,
                        "time.%s() reads the host clock; simulated time must "
                        "come from the cycle domain (SM.now)" % node.attr,
                    ))
                elif node.attr in _NOW_FNS and (
                    (isinstance(base, ast.Name) and base.id in ("datetime", "date"))
                    or (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date"))
                ):
                    findings.append(self.finding(
                        path, node,
                        "datetime.%s() reads the host clock inside the "
                        "timing model" % node.attr,
                    ))
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_FNS:
                        findings.append(self.finding(
                            path, node,
                            "`from time import %s` pulls the host clock into "
                            "simulated-time code" % alias.name,
                        ))
        return findings


class UnseededRngRule(Rule):
    """SL102: randomness must flow through a seeded ``random.Random``."""

    id = "SL102"
    title = "unseeded / process-global randomness in the timing model"
    packages = GUARDED

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "random"
                    and node.attr not in ("Random", "SystemRandom")
                    and isinstance(getattr(node, "ctx", ast.Load()), ast.Load)
                ):
                    # random.<fn>() uses the process-global Mersenne Twister
                    # whose state is shared across every caller in-process.
                    findings.append(self.finding(
                        path, node,
                        "random.%s uses the process-global RNG; construct a "
                        "random.Random(seed) owned by the component" % node.attr,
                    ))
                elif node.attr == "random" and isinstance(base, ast.Name) and (
                    base.id in ("np", "numpy")
                ):
                    findings.append(self.finding(
                        path, node,
                        "numpy.random module-level RNG is process-global; "
                        "use numpy.random.Generator seeded per component",
                    ))
                elif node.attr == "urandom" and isinstance(base, ast.Name) and (
                    base.id == "os"
                ):
                    findings.append(self.finding(
                        path, node,
                        "os.urandom is entropy, not simulation state; derive "
                        "values from the seeded RNG",
                    ))
                elif node.attr in ("uuid1", "uuid4") and isinstance(
                    base, ast.Name
                ) and base.id == "uuid":
                    findings.append(self.finding(
                        path, node,
                        "uuid.%s is nondeterministic; derive ids from the "
                        "seeded RNG or a counter" % node.attr,
                    ))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in ("Random", "SystemRandom"):
                            findings.append(self.finding(
                                path, node,
                                "`from random import %s` binds the "
                                "process-global RNG" % alias.name,
                            ))
                elif node.module == "secrets":
                    findings.append(self.finding(
                        path, node,
                        "the secrets module is entropy by design; the timing "
                        "model must be seeded",
                    ))
        return findings


def _is_setish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class SetIterationRule(Rule):
    """SL103: no order-sensitive iteration directly over a set."""

    id = "SL103"
    title = "order-sensitive iteration over a set"
    packages = GUARDED

    _MESSAGE = (
        "iteration order of a set is hash-dependent (PYTHONHASHSEED); "
        "wrap it in sorted(...) before iterating"
    )

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_setish(node.iter):
                findings.append(self.finding(path, node.iter, self._MESSAGE))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_setish(gen.iter):
                        findings.append(self.finding(path, gen.iter, self._MESSAGE))
            elif isinstance(node, ast.Call):
                func = node.func
                # list(set(..)) / tuple(set(..)) freeze the arbitrary order;
                # "".join(set(..)) serialises it.  (sorted/min/max/len/sum
                # are order-insensitive and stay legal.)
                order_sensitive = (
                    isinstance(func, ast.Name) and func.id in ("list", "tuple", "enumerate")
                ) or (isinstance(func, ast.Attribute) and func.attr == "join")
                if order_sensitive and node.args and _is_setish(node.args[0]):
                    findings.append(self.finding(path, node.args[0], self._MESSAGE))
        return findings
