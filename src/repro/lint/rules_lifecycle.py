"""SL7xx — resource-lifecycle rules: must-release over all CFG paths.

The PR-4 AST engine can see that a ``release()`` call *exists*; it cannot
see that an exception between ``grant()`` and ``release()`` skips it.
These rules run the :class:`repro.lint.dataflow.MustRelease` lattice per
acquisition site and report any path — normal or exceptional — on which
the resource may leave the function still held.  Findings name the leaking
path symbolically (exit kind + edge kinds), never by line number, so
baseline fingerprints survive unrelated edits.

Ownership model (deliberate, documented noise tradeoffs):

* ``with`` acquisitions are inherently settled and never tracked.
* Escapes settle: returning/yielding the object, storing it on an
  attribute or into a container, handing it to another call, or aliasing
  it transfers ownership to code outside this function's CFG.
* Receiver-bound resources (``table.grant(...)`` settled by
  ``table.release(...)``) are only tracked when the receiver is a *local
  name or parameter*.  A self-rooted receiver (``self._leases.grant``)
  is cross-method ownership — the scheduler grants in ``_assign`` and
  settles in ``_expire`` — which a per-function analysis must not flag.
* A release that itself raises still counts as settled (``close()``
  failing mid-close relinquishes ownership for lint purposes); an
  *acquire* that raises acquired nothing (pre-state on its except edge).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .cfg import Block, FunctionCFG, all_function_cfgs, func_path
from .dataflow import find_leaks
from .engine import Rule
from .findings import Finding


class _Site:
    """One tracked acquisition."""

    def __init__(
        self,
        block: Block,
        call: ast.Call,
        callee: str,
        result_var: Optional[str],
        receiver_src: Optional[str],
        guard_name: Optional[str],
    ) -> None:
        self.block = block
        self.call = call
        self.callee = callee
        self.result_var = result_var
        self.receiver_src = receiver_src
        self.guard_name = guard_name


def _single_stmt_call(stmt: ast.stmt) -> Optional[Tuple[ast.Call, Optional[str]]]:
    """(call, bound name) when the statement is exactly ``var = f(...)``
    or a bare ``f(...)``; nested calls are consumed by their consumer and
    not tracked."""
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        return stmt.value, None
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and isinstance(stmt.value, ast.Call)
    ):
        return stmt.value, stmt.targets[0].id
    if (
        isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and isinstance(stmt.value, ast.Call)
    ):
        return stmt.value, stmt.target.id
    return None


def _name_loads(root: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name
        and isinstance(n.ctx, ast.Load)
        for n in ast.walk(root)
    )


class _LifecycleRule(Rule):
    """Shared machinery; subclasses define the acquire/settle vocabulary."""

    #: method names whose call acquires (any receiver shape filtered below)
    acquire_attrs: Tuple[str, ...] = ()
    #: the subset of ``acquire_attrs`` settled through the *receiver*
    #: (``table.release(...)``); these need a local-Name receiver, the
    #: rest are settled through their bound result
    receiver_bound_attrs: Tuple[str, ...] = ()
    #: bare builtin names that acquire (``open``)
    acquire_names: Tuple[str, ...] = ()
    #: methods on the *result* that settle
    result_release_attrs: Tuple[str, ...] = ()
    #: methods on the *receiver* that settle
    receiver_release_attrs: Tuple[str, ...] = ()
    #: does ``await result`` settle (futures)?
    await_settles: bool = False
    #: is the acquisition conditional on its truthy result (breaker
    #: half-open trials: the false branch of ``if result:`` settles)?
    guarded: bool = False
    #: must the result be bound for method-acquires to be tracked?  (keeps
    #: ``self.journal.open()`` — returns None by design — out of SL701)
    require_bound_result: bool = True
    #: human label for messages
    resource_label: str = "resource"
    #: remediation hint appended to the finding
    remedy: str = "wrap it in try/finally or with"

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for graph in all_function_cfgs(tree):
            reachable = graph.reachable()
            for site in self._sites(graph, reachable):
                settle_bids = self._settle_bids(graph, site)
                leaks = find_leaks(
                    graph, site.block, settle_bids, site.guard_name
                )
                if not leaks:
                    continue
                where = " and ".join(leak.describe() for leak in leaks)
                findings.append(
                    self.finding(
                        path, site.call,
                        "%s acquired by %s() in %s may reach %s still "
                        "unsettled — %s"
                        % (
                            self.resource_label, site.callee, graph.qualname,
                            where, self.remedy,
                        ),
                    )
                )
        return findings

    # -- site discovery --------------------------------------------------

    def _sites(
        self, graph: FunctionCFG, reachable: Set[int]
    ) -> Iterator[_Site]:
        for block in graph.blocks:
            if block.bid not in reachable or not block.stmts:
                continue
            hit = _single_stmt_call(block.stmts[0])
            if hit is None:
                continue
            call, result_var = hit
            site = self._classify(block, call, result_var)
            if site is not None:
                yield site

    def _classify(
        self, block: Block, call: ast.Call, result_var: Optional[str]
    ) -> Optional[_Site]:
        path = func_path(call.func)
        callee = ".".join(path)
        if len(path) == 1 and path[0] in self.acquire_names:
            return _Site(block, call, callee, result_var, None, None)
        if len(path) >= 2 and path[-1] in self.acquire_attrs:
            receiver_src: Optional[str] = None
            if path[-1] in self.receiver_bound_attrs:
                # receiver-bound tracking needs a local identity;
                # self-rooted receivers are cross-method ownership
                if not isinstance(call.func, ast.Attribute) or not isinstance(
                    call.func.value, ast.Name
                ):
                    return None
                receiver_src = call.func.value.id
            elif self.require_bound_result and result_var is None:
                return None
            guard = result_var if (self.guarded and result_var) else None
            return _Site(block, call, callee, result_var, receiver_src, guard)
        return None

    # -- settlement discovery --------------------------------------------

    def _settle_bids(self, graph: FunctionCFG, site: _Site) -> Set[int]:
        bids: Set[int] = set()
        for block in graph.blocks:
            if block is site.block:
                continue
            if self._settles(block, site):
                bids.add(block.bid)
        return bids

    def _settles(self, block: Block, site: _Site) -> bool:
        var = site.result_var
        for node in block.walk():
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if (
                        var is not None
                        and isinstance(func.value, ast.Name)
                        and func.value.id == var
                        and func.attr in self.result_release_attrs
                    ):
                        return True
                    if (
                        site.receiver_src is not None
                        and isinstance(func.value, ast.Name)
                        and func.value.id == site.receiver_src
                        and func.attr in self.receiver_release_attrs
                    ):
                        return True
                if var is not None and self._escapes_into_call(node, var):
                    return True
            if var is None:
                continue
            if isinstance(node, ast.Await) and _name_loads(node.value, var):
                if self.await_settles:
                    return True
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and _name_loads(value, var):
                    return True
            if isinstance(node, ast.Assign):
                stores_out = any(
                    isinstance(t, (ast.Attribute, ast.Subscript, ast.Name))
                    for t in node.targets
                )
                if stores_out and _name_loads(node.value, var):
                    # stored on an attribute / into a container, or
                    # aliased to another local: ownership moved
                    return True
        return False

    @staticmethod
    def _escapes_into_call(call: ast.Call, var: str) -> bool:
        """``var`` handed to another callable (argument position, not the
        receiver of the call itself)."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if _name_loads(arg, var):
                return True
        return False


class FileHandleRule(_LifecycleRule):
    """SL701: a file handle opened without ``with`` must be provably
    closed (or have its ownership transferred) on every path."""

    id = "SL701"
    title = "file handle may leak on a path (no close/with/ownership move)"
    severity = "error"
    packages = ()

    acquire_attrs = ("open", "fdopen")
    acquire_names = ("open",)
    result_release_attrs = ("close",)
    require_bound_result = True
    resource_label = "file handle"
    remedy = (
        "use `with`, or close it in try/finally on the named path"
    )


class LeaseSettlementRule(_LifecycleRule):
    """SL702: a lease/claim granted on a *local* table must be settled
    (released / quarantined / requeued) or escape on every path.  The
    scheduler's ``self._leases`` grants are cross-method ownership and are
    exempt by the local-receiver requirement."""

    id = "SL702"
    title = "granted lease/claim may leave the function unsettled"
    severity = "error"
    packages = ()

    acquire_attrs = ("grant", "claim")
    receiver_bound_attrs = ("grant", "claim")
    receiver_release_attrs = (
        "release", "expire", "quarantine", "requeue", "discard",
    )
    require_bound_result = False
    resource_label = "lease/claim"
    remedy = (
        "settle it in try/finally (release/quarantine/requeue), or hand "
        "the lease object to an owner"
    )


class TrialSettlementRule(_LifecycleRule):
    """SL703: circuit-breaker half-open trials and loop futures must be
    settled on every path — ``on_ok``/``on_fault`` for a trial opened by
    ``answer_from_learner``, ``set_result``/``set_exception``/``cancel``
    (or an await / ownership move) for a ``create_future`` result.  The
    false branch of ``if trial_result:`` settles: no trial was opened."""

    id = "SL703"
    title = "breaker half-open trial or future may go unsettled on a path"
    severity = "error"
    packages = ()

    acquire_attrs = ("answer_from_learner", "create_future")
    receiver_bound_attrs = ("answer_from_learner",)
    result_release_attrs = ("set_result", "set_exception", "cancel")
    receiver_release_attrs = ("on_ok", "on_fault")
    await_settles = True
    guarded = True
    require_bound_result = True
    resource_label = "half-open trial/future"
    remedy = (
        "settle both outcomes (on_ok/on_fault, set_result/set_exception/"
        "cancel) or transfer the future to its consumer"
    )
