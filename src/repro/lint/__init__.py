"""simlint — simulator-aware static analysis for this repro (SL0xx-SL5xx).

Off-the-shelf linters cannot know that ``self.now`` is the simulated
clock, that ``emit()`` payloads must match the dataclasses in
``repro/obs/events.py``, or that a ``GPUConfig`` field nothing reads is a
lying knob.  simlint parses the repo's own source with :mod:`ast` and
proves those properties *absent* before any simulation runs — the static
complement to the runtime sanitizer (``docs/ROBUSTNESS.md``).

Entry points: ``snake-repro lint`` (CLI, :mod:`repro.lint.cli`),
:func:`run_lint` (library), ``docs/STATIC_ANALYSIS.md`` (rule catalog and
suppression policy).
"""

from .baseline import BaselineError, BaselineResult, load, save, screen
from .engine import (
    LintError,
    RepoContext,
    Rule,
    Suppressions,
    harvest,
    module_of,
    run_lint,
)
from .findings import Finding
from .registry import RULE_CLASSES, build_rules, catalog, rule_ids

__all__ = [
    "BaselineError",
    "BaselineResult",
    "Finding",
    "LintError",
    "RULE_CLASSES",
    "RepoContext",
    "Rule",
    "Suppressions",
    "build_rules",
    "catalog",
    "harvest",
    "load",
    "module_of",
    "rule_ids",
    "run_lint",
    "save",
    "screen",
]
