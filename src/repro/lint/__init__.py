"""simlint — simulator-aware static analysis for this repro (SL0xx-SL8xx).

Off-the-shelf linters cannot know that ``self.now`` is the simulated
clock, that ``emit()`` payloads must match the dataclasses in
``repro/obs/events.py``, or that a ``GPUConfig`` field nothing reads is a
lying knob.  simlint parses the repo's own source with :mod:`ast` and
proves those properties *absent* before any simulation runs — the static
complement to the runtime sanitizer (``docs/ROBUSTNESS.md``).

Since v2, the engine also lowers every function to a control-flow graph
(:mod:`repro.lint.cfg`) and solves dataflow problems over it
(:mod:`repro.lint.dataflow`), so the SL6xx async-safety, SL7xx
resource-lifecycle and SL8xx contract-conformance families can prove
"along every path, including exception edges" properties the per-node
AST matchers structurally cannot.

Entry points: ``snake-repro lint`` (CLI, :mod:`repro.lint.cli`),
:func:`run_lint` (library), ``docs/STATIC_ANALYSIS.md`` (rule catalog and
suppression policy).
"""

from .baseline import BaselineError, BaselineResult, load, save, screen
from .cfg import Block, Edge, FunctionCFG, all_function_cfgs, build_cfg
from .dataflow import (
    DataflowProblem,
    MustRelease,
    ReachingDefinitions,
    Solution,
    find_leaks,
    solve,
)
from .engine import (
    LintError,
    RepoContext,
    Rule,
    Suppressions,
    harvest,
    module_of,
    run_lint,
)
from .findings import Finding
from .registry import RULE_CLASSES, build_rules, catalog, rule_ids
from .sarif import to_sarif

__all__ = [
    "BaselineError",
    "BaselineResult",
    "Block",
    "DataflowProblem",
    "Edge",
    "Finding",
    "FunctionCFG",
    "LintError",
    "MustRelease",
    "RULE_CLASSES",
    "ReachingDefinitions",
    "RepoContext",
    "Rule",
    "Solution",
    "Suppressions",
    "all_function_cfgs",
    "build_cfg",
    "build_rules",
    "catalog",
    "find_leaks",
    "harvest",
    "load",
    "module_of",
    "rule_ids",
    "run_lint",
    "save",
    "screen",
    "solve",
    "to_sarif",
]
