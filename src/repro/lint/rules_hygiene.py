"""API-hygiene rules (SL5xx) — the general-purpose tier.

These apply to all of ``src/`` (not just the timing model): mutable
default arguments (shared across calls, the classic aliasing bug), bare
``except:`` (swallows KeyboardInterrupt/SystemExit and hides the runner's
typed error taxonomy), and ``assert`` used for control flow (stripped
under ``python -O``, so the "check" vanishes in optimised runs).  Asserts
that only *narrow types* (``assert x is not None``, ``assert
isinstance(x, T)``) are allowed — they document invariants for mypy and
removing them cannot change behaviour of correct code.
"""

from __future__ import annotations

import ast
from typing import List

from .engine import Rule
from .findings import Finding

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


class MutableDefaultRule(Rule):
    """SL501: no mutable default arguments."""

    id = "SL501"
    title = "mutable default argument"

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    findings.append(self.finding(
                        path, default,
                        "mutable default argument in %s() is shared across "
                        "calls; default to None and construct inside" % node.name,
                    ))
        return findings


class BareExceptRule(Rule):
    """SL502: no bare ``except:`` clauses."""

    id = "SL502"
    title = "bare except clause"

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(self.finding(
                    path, node,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit and "
                    "hides the error taxonomy; catch specific exceptions",
                ))
        return findings


def _is_narrowing(test: ast.AST) -> bool:
    """``x is not None`` / ``x is None`` comparisons and ``isinstance``
    calls are type-narrowing, not control flow."""
    if isinstance(test, ast.Compare):
        return all(isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops)
    if isinstance(test, ast.Call) and isinstance(test.func, ast.Name):
        return test.func.id == "isinstance"
    if isinstance(test, ast.BoolOp):
        return all(_is_narrowing(value) for value in test.values)
    return False


class AssertControlFlowRule(Rule):
    """SL503: ``assert`` only for type narrowing, never for control flow."""

    id = "SL503"
    title = "assert used for control flow / validation"

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert) and not _is_narrowing(node.test):
                findings.append(self.finding(
                    path, node,
                    "assert is stripped under -O so this check vanishes in "
                    "optimised runs; raise an exception (narrowing asserts "
                    "`is [not] None` / isinstance are allowed)",
                ))
        return findings
