"""Per-function control-flow graphs for simlint's dataflow rules.

The PR-4 rule set is a per-node AST pattern matcher; it can say "this call
exists" but never "on every path".  The SL6xx/SL7xx families need the
latter — *along all paths, including the exception edges, this lease is
settled* — so this module lowers each ``def`` / ``async def`` body into a
small CFG that :mod:`repro.lint.dataflow` solves over.

Design choices (kept deliberately boring):

* **Single-payload blocks.**  Every basic block carries at most one simple
  statement (``stmts``), or one branch/loop test (``control``), or one
  ``with``-header item list (``withitems``).  Per-statement blocks make
  exception edges precise: each may-raise statement gets its own ``except``
  edge to the innermost enclosing handler (or the synthetic
  ``raise_exit``), so "an exception between acquire and release" is a real
  path in the graph, not a heuristic.
* **Two exits.**  ``exit`` is the normal return/fall-through exit;
  ``raise_exit`` is the uncaught-exception exit.  Must-release analysis
  checks both.
* **Shared finally.**  A ``finally`` suite is lowered once, with out-edges
  to the normal continuation, to the enclosing handler (exception
  propagation), and to ``exit`` (return continuation).  This merges the
  continuations a real interpreter keeps separate — a sound
  over-approximation that keeps the graph linear in source size.
* **Opaque nested defs.**  A nested ``def``/``lambda`` is a binding, not a
  control transfer; its body is analysed in its *own* CFG (see
  :func:`all_function_cfgs`), never inlined into the parent's.
* **Await boundaries.**  Every block knows whether executing it crosses an
  await point (``has_await``) — ``await`` expressions, ``async for``
  headers and ``async with`` headers all count — which is the load-bearing
  fact for the SL602 staleness analysis.

Constant loop tests are folded: ``while True:`` emits no false edge, so
code after the loop is only reachable through ``break`` — and a blocking
call after an infinite loop is correctly dead to SL601.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: edge kinds, for rules and for the leaking-path witness rendered by SL7xx
EDGE_KINDS = (
    "normal", "true", "false", "loop", "loop-exit",
    "except", "return", "break", "continue", "finally",
)

#: statement types that cannot raise; everything else gets an except edge
_NO_RAISE = (ast.Pass, ast.Global, ast.Nonlocal, ast.Break, ast.Continue)


class Edge:
    """A directed CFG edge.  ``cond`` is the branch test for
    ``true``/``false`` edges (the expression the branch is taken on)."""

    __slots__ = ("src", "dst", "kind", "cond")

    def __init__(
        self, src: "Block", dst: "Block", kind: str,
        cond: Optional[ast.expr] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.cond = cond

    def __repr__(self) -> str:
        return "Edge(%s -> %s, %s)" % (self.src.bid, self.dst.bid, self.kind)


class Block:
    """One basic block.  Exactly one of ``stmts`` (a single simple
    statement), ``control`` (a branch/loop test) or ``withitems`` is
    populated; synthetic blocks (entry/exit/joins/finally heads) carry
    none."""

    __slots__ = (
        "bid", "label", "stmts", "control", "withitems", "node",
        "succs", "preds", "has_await", "_forces_await",
    )

    def __init__(self, bid: int, label: str) -> None:
        self.bid = bid
        self.label = label
        self.stmts: List[ast.stmt] = []
        self.control: Optional[ast.expr] = None
        self.withitems: List[ast.withitem] = []
        #: originating AST node (compound header, handler, or the statement)
        self.node: Optional[ast.AST] = None
        self.succs: List[Edge] = []
        self.preds: List[Edge] = []
        self.has_await = False
        self._forces_await = False

    # -- payload views ---------------------------------------------------

    def payload(self) -> List[ast.AST]:
        """The AST evaluated by this block (statement, test or
        context-manager expressions)."""
        out: List[ast.AST] = []
        out.extend(self.stmts)
        if self.control is not None:
            out.append(self.control)
        for item in self.withitems:
            out.append(item.context_expr)
        return out

    def walk(self) -> Iterator[ast.AST]:
        """Shallow AST walk over the payload: descends expressions but not
        nested function/class bodies (those live in their own CFGs)."""
        for root in self.payload():
            for node in shallow_walk(root):
                yield node

    def calls(self) -> List[ast.Call]:
        return [n for n in self.walk() if isinstance(n, ast.Call)]

    def anchor(self) -> ast.AST:
        """Best AST node to anchor a finding's line/col on."""
        if self.stmts:
            return self.stmts[0]
        if self.node is not None:
            return self.node
        if self.control is not None:
            return self.control
        if self.withitems:
            return self.withitems[0].context_expr
        return ast.Pass()  # synthetic block: caller anchors elsewhere

    def __repr__(self) -> str:
        return "Block(%d, %s)" % (self.bid, self.label)


class FunctionCFG:
    """The CFG of one function body."""

    def __init__(self, func: FunctionNode, qualname: str) -> None:
        self.func = func
        self.name = func.name
        self.qualname = qualname
        self.is_async = isinstance(func, ast.AsyncFunctionDef)
        self.blocks: List[Block] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")
        self.raise_exit = self.new_block("raise-exit")

    def new_block(self, label: str) -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    def add_edge(
        self, src: Block, dst: Block, kind: str,
        cond: Optional[ast.expr] = None,
    ) -> Edge:
        edge = Edge(src, dst, kind, cond)
        src.succs.append(edge)
        dst.preds.append(edge)
        return edge

    def reachable(self, start: Optional[Block] = None) -> Set[int]:
        """Block ids reachable from ``start`` (default: entry)."""
        seen: Set[int] = set()
        stack = [start if start is not None else self.entry]
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            stack.extend(e.dst for e in block.succs)
        return seen

    def exits(self) -> Tuple[Block, Block]:
        return self.exit, self.raise_exit


# ----------------------------------------------------------------------
# AST helpers shared by the rule families


def shallow_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function / lambda /
    class bodies — their statements belong to their own CFGs."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def func_path(func: ast.expr) -> Tuple[str, ...]:
    """Dotted-name parts of a call target: ``time.sleep`` →
    ``("time", "sleep")``; non-name roots (calls, subscripts) contribute
    ``"?"`` so ``self.journal.open`` → ``("self", "journal", "open")`` and
    ``get().close`` → ``("?", "close")``."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return tuple(reversed(parts))


def _target_names(target: ast.expr) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            out.add(node.id)
    return out


def binds(block: Block) -> Set[str]:
    """Local names this block (re)binds: assignment targets, loop targets,
    ``with ... as`` names, ``except ... as`` names, walrus targets, imports
    and nested def/class names."""
    names: Set[str] = set()
    for stmt in block.stmts:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names |= _target_names(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            names |= _target_names(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                names |= _target_names(target)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
    node = block.node
    if isinstance(node, (ast.For, ast.AsyncFor)):
        names |= _target_names(node.target)
    if isinstance(node, ast.ExceptHandler) and node.name:
        names.add(node.name)
    for item in block.withitems:
        if item.optional_vars is not None:
            names |= _target_names(item.optional_vars)
    for sub in block.walk():
        if isinstance(sub, ast.NamedExpr) and isinstance(
            sub.target, ast.Name
        ):
            names.add(sub.target.id)
    return names


def _may_raise(stmt: ast.stmt) -> bool:
    return not isinstance(stmt, _NO_RAISE)


def _catch_all(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch every exception (``except:``, ``except
    Exception``, ``except BaseException``)?"""
    kind = handler.type
    if kind is None:
        return True
    return isinstance(kind, ast.Name) and kind.id in (
        "Exception", "BaseException",
    )


def _test_cannot_raise(expr: ast.expr) -> bool:
    """Branch tests built only from name loads, constants, ``not``,
    ``and``/``or`` and ``is``/``is not`` cannot raise, so their headers
    need no exception edge (an ``if lease:`` must not manufacture a
    HELD path to the raise exit)."""
    if isinstance(expr, (ast.Name, ast.Constant)):
        return True
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return _test_cannot_raise(expr.operand)
    if isinstance(expr, ast.BoolOp):
        return all(_test_cannot_raise(v) for v in expr.values)
    if isinstance(expr, ast.Compare):
        return (
            all(isinstance(op, (ast.Is, ast.IsNot)) for op in expr.ops)
            and _test_cannot_raise(expr.left)
            and all(_test_cannot_raise(c) for c in expr.comparators)
        )
    return False


def _const_truth(expr: Optional[ast.expr]) -> Optional[bool]:
    """Truthiness of a constant test, or None when not statically known."""
    if isinstance(expr, ast.Constant):
        try:
            return bool(expr.value)
        except Exception:  # pragma: no cover - exotic constants
            return None
    return None


# ----------------------------------------------------------------------
# Builder

#: pending out-edges awaiting their destination: (src block, kind, cond)
Frontier = List[Tuple[Block, str, Optional[ast.expr]]]


class _Builder:
    def __init__(self, func: FunctionNode, qualname: str) -> None:
        self.cfg = FunctionCFG(func, qualname)
        #: innermost exception continuation (handler dispatch / finally /
        #: raise_exit)
        self.exc_targets: List[Block] = [self.cfg.raise_exit]
        #: innermost finally heads, for routing ``return``
        self.finally_stack: List[Block] = []
        #: per-loop collected break frontiers
        self.break_stack: List[Frontier] = []
        #: per-loop continue targets (the loop header)
        self.continue_stack: List[Block] = []

    # -- plumbing --------------------------------------------------------

    def connect(self, frontier: Frontier, dst: Block) -> None:
        for src, kind, cond in frontier:
            self.cfg.add_edge(src, dst, kind, cond)

    def exc_edge(self, block: Block) -> None:
        self.cfg.add_edge(block, self.exc_targets[-1], "except")

    def seq(self, stmts: Sequence[ast.stmt], frontier: Frontier) -> Frontier:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    # -- statement lowering ----------------------------------------------

    def stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if hasattr(ast, "TryStar") and isinstance(
            stmt, getattr(ast, "TryStar")
        ):  # pragma: no cover - py3.11 except*
            return self._try(stmt, frontier)
        if hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            return self._match(stmt, frontier)
        return self._simple(stmt, frontier)

    def _leaf(self, stmt: ast.stmt, frontier: Frontier, label: str) -> Block:
        block = self.cfg.new_block(label)
        block.stmts.append(stmt)
        block.node = stmt
        self.connect(frontier, block)
        if _may_raise(stmt):
            self.exc_edge(block)
        return block

    def _simple(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        block = self._leaf(stmt, frontier, type(stmt).__name__)
        if isinstance(stmt, ast.Return):
            target = (
                self.finally_stack[-1] if self.finally_stack else self.cfg.exit
            )
            self.cfg.add_edge(block, target, "return")
            return []
        if isinstance(stmt, ast.Raise):
            # the unconditional raise replaces the fall-through; the
            # except edge added by _leaf already points at the handler
            return []
        if isinstance(stmt, ast.Break):
            if self.break_stack:
                self.break_stack[-1].append((block, "break", None))
            return []
        if isinstance(stmt, ast.Continue):
            if self.continue_stack:
                self.cfg.add_edge(block, self.continue_stack[-1], "continue")
            return []
        return [(block, "normal", None)]

    def _if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        header = self.cfg.new_block("if")
        header.control = stmt.test
        header.node = stmt
        self.connect(frontier, header)
        if not _test_cannot_raise(stmt.test):
            self.exc_edge(header)
        truth = _const_truth(stmt.test)
        out: Frontier = []
        if truth is not False:
            out += self.seq(stmt.body, [(header, "true", stmt.test)])
        if truth is not True:
            false_edge: Frontier = [(header, "false", stmt.test)]
            out += self.seq(stmt.orelse, false_edge) if stmt.orelse else false_edge
        return out

    def _while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        header = self.cfg.new_block("while")
        header.control = stmt.test
        header.node = stmt
        self.connect(frontier, header)
        if not _test_cannot_raise(stmt.test):
            self.exc_edge(header)
        truth = _const_truth(stmt.test)
        self.break_stack.append([])
        self.continue_stack.append(header)
        body_out: Frontier = []
        if truth is not False:
            body_out = self.seq(stmt.body, [(header, "true", stmt.test)])
        self.connect(body_out, header)
        self.continue_stack.pop()
        breaks = self.break_stack.pop()
        out: Frontier = []
        if truth is not True:
            false_edge: Frontier = [(header, "false", stmt.test)]
            out += self.seq(stmt.orelse, false_edge) if stmt.orelse else false_edge
        return out + breaks

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor], frontier: Frontier
    ) -> Frontier:
        header = self.cfg.new_block(
            "async-for" if isinstance(stmt, ast.AsyncFor) else "for"
        )
        header.control = stmt.iter
        header.node = stmt
        if isinstance(stmt, ast.AsyncFor):
            header._forces_await = True
        self.connect(frontier, header)
        self.exc_edge(header)
        self.break_stack.append([])
        self.continue_stack.append(header)
        body_out = self.seq(stmt.body, [(header, "loop", None)])
        self.connect(body_out, header)
        self.continue_stack.pop()
        breaks = self.break_stack.pop()
        exhausted: Frontier = [(header, "loop-exit", None)]
        out = self.seq(stmt.orelse, exhausted) if stmt.orelse else exhausted
        return out + breaks

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], frontier: Frontier
    ) -> Frontier:
        header = self.cfg.new_block(
            "async-with" if isinstance(stmt, ast.AsyncWith) else "with"
        )
        header.withitems = list(stmt.items)
        header.node = stmt
        if isinstance(stmt, ast.AsyncWith):
            header._forces_await = True
        self.connect(frontier, header)
        self.exc_edge(header)
        return self.seq(stmt.body, [(header, "normal", None)])

    def _match(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        # ast.Match only exists on 3.10+; accessed via getattr for 3.9
        header = self.cfg.new_block("match")
        header.control = stmt.subject  # type: ignore[attr-defined]
        header.node = stmt
        self.connect(frontier, header)
        self.exc_edge(header)
        match_as = getattr(ast, "MatchAs", None)
        out: Frontier = []
        exhaustive = False
        for case in stmt.cases:  # type: ignore[attr-defined]
            out += self.seq(case.body, [(header, "true", None)])
            if (
                match_as is not None
                and isinstance(case.pattern, match_as)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if not exhaustive:
            out.append((header, "false", None))
        return out

    def _try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        has_finally = bool(stmt.finalbody)
        outer_exc = self.exc_targets[-1]
        f_in: Optional[Block] = None
        if has_finally:
            f_in = self.cfg.new_block("finally")
            f_in.node = stmt
            self.finally_stack.append(f_in)

        dispatch: Optional[Block] = None
        if stmt.handlers:
            dispatch = self.cfg.new_block("except-dispatch")
            dispatch.node = stmt
        body_exc = dispatch if dispatch is not None else (
            f_in if f_in is not None else outer_exc
        )

        self.exc_targets.append(body_exc)
        body_out = self.seq(stmt.body, frontier)
        self.exc_targets.pop()
        # the else clause runs only when the body did not raise, and its
        # own exceptions are NOT caught by this try's handlers
        self.exc_targets.append(f_in if f_in is not None else outer_exc)
        body_out = self.seq(stmt.orelse, body_out)
        self.exc_targets.pop()

        handler_out: Frontier = []
        if dispatch is not None:
            self.exc_targets.append(f_in if f_in is not None else outer_exc)
            for handler in stmt.handlers:
                head = self.cfg.new_block("except-handler")
                head.node = handler
                self.cfg.add_edge(dispatch, head, "except")
                handler_out += self.seq(
                    handler.body, [(head, "normal", None)]
                )
            if not any(_catch_all(h) for h in stmt.handlers):
                # no handler matched: the exception keeps propagating
                self.cfg.add_edge(
                    dispatch,
                    f_in if f_in is not None else outer_exc,
                    "except",
                )
            self.exc_targets.pop()

        after = body_out + handler_out
        if f_in is not None:
            self.finally_stack.pop()
            self.connect(after, f_in)
            f_out = self.seq(stmt.finalbody, [(f_in, "normal", None)])
            for src, _kind, _cond in f_out:
                # the shared finally continues whatever suspended it:
                # exception propagation or an in-flight return
                self.cfg.add_edge(src, outer_exc, "finally")
                self.cfg.add_edge(src, self.cfg.exit, "finally")
            return f_out
        return after

    # -- finalize --------------------------------------------------------

    def build(self) -> FunctionCFG:
        tail = self.seq(self.cfg.func.body, [(self.cfg.entry, "normal", None)])
        self.connect(tail, self.cfg.exit)
        for block in self.cfg.blocks:
            block.has_await = block._forces_await or any(
                isinstance(node, ast.Await) for node in block.walk()
            )
        return self.cfg


def build_cfg(func: FunctionNode, qualname: Optional[str] = None) -> FunctionCFG:
    """Lower one function body to a CFG (nested defs stay opaque)."""
    return _Builder(func, qualname or func.name).build()


def all_function_cfgs(tree: ast.Module) -> List[FunctionCFG]:
    """A CFG per function in the module, any nesting depth, with dotted
    qualnames (``Server.start``, ``outer.<locals>.inner`` style kept simple
    as ``outer.inner``)."""
    out: List[FunctionCFG] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + child.name
                out.append(build_cfg(child, qualname))
                visit(child, qualname + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, prefix + child.name + ".")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
