"""The rule catalog: one place that knows every simlint rule.

``tools/check_docs.py`` walks :data:`RULE_CLASSES` to enforce that every
rule id is documented (with a bad/good example) in
``docs/STATIC_ANALYSIS.md``, and the CLI's ``--list-rules`` renders it.
SL000 (malformed suppression) is emitted by the engine itself, not a rule
class, but is part of the public catalog.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, Type

from .engine import RepoContext, Rule
from .rules_async import (
    BlockingCallInAsyncRule,
    DroppedTaskRule,
    StaleSharedStateRule,
)
from .rules_config import (
    ConfigFieldReadRule,
    ConfigValidateRule,
    UnknownConfigFieldRule,
)
from .rules_contracts import EventVocabRule, NackReasonRule, VersionLiteralRule
from .rules_cycles import CycleAdvanceRule, CycleCrankRule, StatsFieldRule
from .rules_determinism import SetIterationRule, UnseededRngRule, WallClockRule
from .rules_events import AdHocEventRule, EventSchemaRule
from .rules_hygiene import AssertControlFlowRule, BareExceptRule, MutableDefaultRule
from .rules_lifecycle import (
    FileHandleRule,
    LeaseSettlementRule,
    TrialSettlementRule,
)

#: every rule class, in catalog order
RULE_CLASSES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    UnseededRngRule,
    SetIterationRule,
    EventSchemaRule,
    AdHocEventRule,
    CycleAdvanceRule,
    CycleCrankRule,
    StatsFieldRule,
    ConfigFieldReadRule,
    ConfigValidateRule,
    UnknownConfigFieldRule,
    MutableDefaultRule,
    BareExceptRule,
    AssertControlFlowRule,
    BlockingCallInAsyncRule,
    StaleSharedStateRule,
    DroppedTaskRule,
    FileHandleRule,
    LeaseSettlementRule,
    TrialSettlementRule,
    NackReasonRule,
    EventVocabRule,
    VersionLiteralRule,
)

#: rules that need the harvested repo context at construction
_CONTEXT_RULES = (
    EventSchemaRule,
    StatsFieldRule,
    ConfigFieldReadRule,
    ConfigValidateRule,
    UnknownConfigFieldRule,
    NackReasonRule,
    EventVocabRule,
)

#: id the engine uses for malformed suppressions
SUPPRESSION_RULE_ID = "SL000"
SUPPRESSION_RULE_TITLE = "malformed or unjustified suppression comment"


def build_rules(
    context: RepoContext, only: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Instantiate the catalog (context-aware rules get the harvest)."""
    wanted = set(only) if only else None
    rules: List[Rule] = []
    for cls in RULE_CLASSES:
        if wanted is not None and cls.id not in wanted:
            continue
        rules.append(cls(context) if cls in _CONTEXT_RULES else cls())
    return rules


def rule_ids() -> Set[str]:
    """Every valid rule id, including the engine's SL000."""
    return {cls.id for cls in RULE_CLASSES} | {SUPPRESSION_RULE_ID}


def catalog() -> List[Tuple[str, str, str]]:
    """(id, title, guarded packages) rows for --list-rules and the docs
    gate, SL000 included."""
    rows = [(SUPPRESSION_RULE_ID, SUPPRESSION_RULE_TITLE, "src/")]
    for cls in RULE_CLASSES:
        scope = ", ".join(cls.packages) if cls.packages else "src/"
        rows.append((cls.id, cls.title, scope))
    return rows
