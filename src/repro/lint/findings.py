"""The unit of simlint output: one rule violation at one source location.

A :class:`Finding` is deliberately flat and JSON-safe (the ``--json`` CLI
mode serialises it as-is).  Its :meth:`fingerprint` intentionally excludes
the line/column so that a grandfathered violation does not "escape" the
baseline when unrelated edits shift it a few lines — the baseline tracks
*what* is wrong and *how many times*, not where exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Union


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    ``path`` is repository-relative with forward slashes; ``message`` must
    stay line-number-free so the fingerprint is stable across reflows.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def fingerprint(self) -> str:
        """Line-insensitive identity used by the baseline ratchet."""
        return "%s::%s::%s" % (self.path, self.rule, self.message)

    def render(self) -> str:
        """``file:line:col: RULE message`` — the grep/editor-friendly form."""
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message
        )

    def to_json_dict(self) -> Dict[str, Union[str, int]]:
        return asdict(self)
