"""SL6xx — async-safety rules over the CFG (docs/STATIC_ANALYSIS.md).

The serve layer is an asyncio shell around a sans-IO core; its liveness
rests on three disciplines the chaos suite can only spot-check at runtime:
no blocking syscalls on the event loop, no shared-state references carried
across an await (the event loop may run an eviction in between), and no
fire-and-forget tasks (a dropped task swallows its exceptions).  These
rules prove each one per function over :mod:`repro.lint.cfg` graphs, so
"reachable" and "after the await" mean real paths, not text order.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .cfg import (
    Block, FunctionCFG, all_function_cfgs, binds, func_path, shallow_walk,
)
from .dataflow import DataflowProblem, solve
from .engine import Rule
from .findings import Finding

# ----------------------------------------------------------------------
# SL601

#: module-level callables that block the event loop
_BLOCKING_QUALIFIED = {
    ("time", "sleep"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("os", "system"), ("os", "popen"), ("os", "waitpid"), ("os", "fsync"),
    ("socket", "create_connection"), ("socket", "getaddrinfo"),
    ("requests", "get"), ("requests", "post"), ("requests", "request"),
    ("urllib", "request", "urlopen"),
}

#: sync-I/O methods regardless of receiver (Path, file, our Journal)
_BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes", "open",
}

#: blocking builtins
_BLOCKING_NAMES = {"open", "input"}


def _blocking_call(call: ast.Call) -> Optional[str]:
    """Dotted name of the blocking callee, or None when the call is fine."""
    path = func_path(call.func)
    if len(path) == 1 and path[0] in _BLOCKING_NAMES:
        return path[0]
    if path in _BLOCKING_QUALIFIED or path[-2:] in _BLOCKING_QUALIFIED:
        return ".".join(path)
    if len(path) >= 2 and path[-1] in _BLOCKING_METHODS:
        return ".".join(path)
    return None


class BlockingCallInAsyncRule(Rule):
    """SL601: a blocking call is reachable inside an ``async def``."""

    id = "SL601"
    title = "blocking call (sync sleep/I-O/subprocess) reachable in async def"
    severity = "error"
    packages = ()

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for graph in all_function_cfgs(tree):
            if not graph.is_async:
                continue
            reachable = graph.reachable()
            for block in graph.blocks:
                if block.bid not in reachable:
                    continue
                for call in block.calls():
                    callee = _blocking_call(call)
                    if callee is None:
                        continue
                    findings.append(
                        self.finding(
                            path, call,
                            "blocking call %s() on the event loop in "
                            "async def %s — await the asyncio equivalent "
                            "or push it through run_in_executor"
                            % (callee, graph.qualname),
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# SL602

#: attribute / variable names that denote the shared service state
_SHARED_ATTRS = {
    "state", "_state", "sessions", "_sessions",
    "shards", "_shards", "breakers", "_breakers",
}


def _is_shared_expr(expr: ast.expr) -> bool:
    """Does this expression read through the shared service state?"""
    for node in shallow_walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in _SHARED_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id in _SHARED_ATTRS:
            return True
    return False


#: dataflow value: (bound-from-shared-state names, now-stale subset)
_StaleValue = Tuple[FrozenSet[str], FrozenSet[str]]


class _StalenessProblem(DataflowProblem):
    direction = "forward"

    def __init__(self, shared_assigns: Dict[int, Set[str]]) -> None:
        #: block id -> names bound from shared state in that block
        self.shared_assigns = shared_assigns

    def initial(self) -> _StaleValue:
        return (frozenset(), frozenset())

    def join(self, left: object, right: object) -> object:
        lb, ls = left  # type: ignore[misc]
        rb, rs = right  # type: ignore[misc]
        return (lb | rb, ls | rs)

    def transfer_block(self, block: Block, value: object) -> object:
        bound, stale = value  # type: ignore[misc]
        if block.has_await:
            # the loop ran arbitrary other tasks: every shared-derived
            # binding may now point at evicted/replaced objects
            stale = frozenset(bound)
        rebound = binds(block)
        if rebound:
            fresh = self.shared_assigns.get(block.bid, set())
            bound = (bound - frozenset(rebound)) | frozenset(fresh)
            stale = stale - frozenset(rebound)
        return (bound, stale)


def _mutation_roots(block: Block) -> List[Tuple[str, ast.AST]]:
    """(root variable, anchor node) pairs for every mutation-shaped use in
    the block: method calls, attribute/subscript stores, aug-assigns and
    deletes rooted at a local name."""
    out: List[Tuple[str, ast.AST]] = []

    def root_of(expr: ast.expr) -> Optional[str]:
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    for node in block.walk():
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            root = root_of(node.func.value)
            if root is not None:
                out.append((root, node))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = root_of(target)
                    if root is not None:
                        out.append((root, target))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = root_of(target)
                    if root is not None:
                        out.append((root, target))
    return out


class StaleSharedStateRule(Rule):
    """SL602: a local bound from shared service state before an await is
    mutated after the await without being re-fetched."""

    id = "SL602"
    title = "shared-state binding mutated across an await without re-fetch"
    severity = "error"
    packages = ()

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for graph in all_function_cfgs(tree):
            if not graph.is_async:
                continue
            shared_assigns: Dict[int, Set[str]] = {}
            for block in graph.blocks:
                for stmt in block.stmts:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and _is_shared_expr(stmt.value)
                    ):
                        shared_assigns.setdefault(block.bid, set()).add(
                            stmt.targets[0].id
                        )
            if not shared_assigns:
                continue
            solution = solve(graph, _StalenessProblem(shared_assigns))
            reachable = graph.reachable()
            for block in graph.blocks:
                if block.bid not in reachable:
                    continue
                _bound, stale = solution.value_in(block)  # type: ignore[misc]
                if not stale:
                    continue
                for root, anchor in _mutation_roots(block):
                    if root in stale:
                        findings.append(
                            self.finding(
                                path, anchor,
                                "%r was bound from shared service state "
                                "before an await point in async def %s and "
                                "is mutated after it — another task may "
                                "have evicted or replaced it; re-fetch it "
                                "from the state after the await"
                                % (root, graph.qualname),
                            )
                        )
        return findings


# ----------------------------------------------------------------------
# SL603

_TASK_FACTORIES = {"create_task", "ensure_future"}


def _task_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and func_path(expr.func)[-1] in _TASK_FACTORIES
    )


class DroppedTaskRule(Rule):
    """SL603: a ``create_task``/``ensure_future`` result is dropped —
    nobody awaits, cancels, or attaches a done-callback, so its exceptions
    vanish and shutdown cannot reap it."""

    id = "SL603"
    title = "create_task/ensure_future result dropped without an owner"
    severity = "error"
    packages = ()

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for graph in all_function_cfgs(tree):
            for block in graph.blocks:
                for stmt in block.stmts:
                    finding = self._check_stmt(graph, block, stmt, path)
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _check_stmt(
        self, graph: FunctionCFG, block: Block, stmt: ast.stmt, path: str
    ) -> Optional[Finding]:
        if isinstance(stmt, ast.Expr) and _task_call(stmt.value):
            return self.finding(
                path, stmt.value,
                "task spawned and dropped in %s — bind it to an owner "
                "that awaits or cancels it (or add_done_callback); a "
                "dropped task silently swallows its exceptions"
                % graph.qualname,
            )
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _task_call(stmt.value)
        ):
            name = stmt.targets[0].id
            if not self._used_later(graph, block, name):
                return self.finding(
                    path, stmt,
                    "task bound to %r in %s but never awaited, cancelled "
                    "or given a done-callback on any path"
                    % (name, graph.qualname),
                )
        return None

    def _used_later(self, graph: FunctionCFG, origin: Block, name: str) -> bool:
        for bid in graph.reachable(origin):
            block = graph.blocks[bid]
            for node in block.walk():
                if (
                    isinstance(node, ast.Name)
                    and node.id == name
                    and isinstance(node.ctx, ast.Load)
                ):
                    return True
        return False
