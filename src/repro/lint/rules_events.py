"""Event-schema rules (SL2xx).

Every telemetry emission site must construct one of the dataclasses
declared in ``repro/obs/events.py`` with keyword arguments that exist on
that dataclass.  Because ``emit`` accepts any object and sinks dispatch on
``event.kind``, a typo'd field name or an ad-hoc ``dict`` payload would
sail through at runtime and silently drop data from every sink — the
classic schema-drift failure these rules prove absent.
"""

from __future__ import annotations

import ast
from typing import List

from .engine import RepoContext, Rule
from .findings import Finding

#: positional arguments every event accepts (the Event base header)
_HEADER_FIELDS = ("cycle", "sm_id")


class EventSchemaRule(Rule):
    """SL201: emit() payload fields must match the event dataclass."""

    id = "SL201"
    title = "emit() payload does not match the event dataclass schema"

    def __init__(self, context: RepoContext) -> None:
        self._schema = context.event_fields

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        if not self._schema:
            return []  # schema module absent (fixture tree) — nothing to prove
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not _is_emit_call(node):
                continue
            payload = node.args[0]
            if not (isinstance(payload, ast.Call)
                    and isinstance(payload.func, ast.Name)):
                continue  # SL202's department
            name = payload.func.id
            if name not in self._schema:
                if name.endswith("Event"):
                    findings.append(self.finding(
                        path, payload,
                        "emit() constructs %s which is not declared in "
                        "repro/obs/events.py" % name,
                    ))
                continue
            fields = self._schema[name]
            if len(payload.args) > len(_HEADER_FIELDS):
                findings.append(self.finding(
                    path, payload,
                    "%s called with %d positional args; only the (cycle, "
                    "sm_id) header may be positional" % (name, len(payload.args)),
                ))
            for kw in payload.keywords:
                if kw.arg is None:
                    findings.append(self.finding(
                        path, payload,
                        "%s built from **kwargs cannot be schema-checked; "
                        "pass fields explicitly" % name,
                    ))
                elif kw.arg not in fields:
                    findings.append(self.finding(
                        path, payload,
                        "%s has no field %r (declared: %s)"
                        % (name, kw.arg, ", ".join(sorted(fields))),
                    ))
        return findings


class AdHocEventRule(Rule):
    """SL202: emit() takes a declared event object, never an ad-hoc dict."""

    id = "SL202"
    title = "emit() called with an ad-hoc payload instead of a declared event"

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not _is_emit_call(node):
                continue
            payload = node.args[0]
            if isinstance(payload, ast.Dict) or (
                isinstance(payload, ast.Call)
                and isinstance(payload.func, ast.Name)
                and payload.func.id == "dict"
            ):
                findings.append(self.finding(
                    path, payload,
                    "emit() called with a dict payload; declare a dataclass "
                    "in repro/obs/events.py so sinks can dispatch on kind",
                ))
            elif isinstance(payload, (ast.Constant, ast.Tuple, ast.List)):
                findings.append(self.finding(
                    path, payload,
                    "emit() called with a literal payload; events must be "
                    "the dataclasses declared in repro/obs/events.py",
                ))
        return findings


def _is_emit_call(node: ast.AST) -> bool:
    """``<expr>.emit(<payload>)`` with exactly one argument-ish payload.

    ``EventBus.emit`` / ``NullBus.emit`` definitions themselves don't match
    (those are FunctionDef, not Call).
    """
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "emit"
        and bool(node.args)
    )
