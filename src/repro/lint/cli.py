"""``snake-repro lint`` — the merge-gate front end for simlint.

Exit status: 0 clean (every finding baselined), 1 findings, 2 usage /
broken input.  ``--json`` renders a machine-readable report (schema below)
for CI annotation tooling::

    {
      "version": 1,
      "clean": false,
      "findings":      [{path, line, col, rule, severity, message}, ...],
      "grandfathered": [...same shape...],
      "stale_baseline": {"<fingerprint>": unused_count, ...},
      "counts": {"SL101": 2, ...}          # new findings per rule
    }
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from . import baseline as baseline_mod
from .engine import DEFAULT_LINT_ROOT, LintError, run_lint
from .findings import Finding
from .registry import catalog
from .sarif import to_sarif

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="snake-repro lint",
        description="Run simlint, the simulator-aware static-analysis "
        "gate (determinism, event schema, cycle accounting, config drift, "
        "API hygiene).  See docs/STATIC_ANALYSIS.md.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID", default=None,
        help="run only this rule id (repeatable, e.g. --rule SL101)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="screen findings against the committed lint-baseline.json; "
        "only non-grandfathered findings fail",
    )
    parser.add_argument(
        "--baseline-file", metavar="PATH", default=None,
        help="alternate baseline path (default: lint-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="atomically rewrite the baseline from the current findings "
        "(the ratchet: review the diff — counts should only shrink)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write a SARIF 2.1.0 report to FILE ('-' = stdout) for "
        "GitHub code-scanning annotations",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="lint only files that differ from the git ref (default HEAD), "
        "plus untracked files — fast pre-commit runs; falls back to the "
        "full tree outside a git checkout",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="repository root (default: auto-detected from this package)",
    )
    return parser


def _changed_paths(root: Path, ref: str) -> Optional[List[str]]:
    """Repo-relative ``.py`` paths under the default lint tree that differ
    from ``ref`` (tracked changes + untracked files).  ``None`` means "not
    a usable git checkout — lint everything"."""
    def git(*args: str) -> List[str]:
        proc = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True, timeout=30,
        )
        if proc.returncode != 0:
            raise OSError(proc.stderr.strip() or "git failed")
        return [line for line in proc.stdout.splitlines() if line]

    try:
        changed = set(git("diff", "--name-only", "--diff-filter=d", ref))
        changed |= set(git("ls-files", "--others", "--exclude-standard"))
    except (OSError, subprocess.SubprocessError, FileNotFoundError):
        return None
    prefix = DEFAULT_LINT_ROOT.rstrip("/") + "/"
    return sorted(
        p for p in changed
        if p.endswith(".py") and p.startswith(prefix)
        and (root / p).is_file()
    )


def _detect_root(explicit: Optional[str]) -> Path:
    if explicit:
        return Path(explicit).resolve()
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "src" / "repro").is_dir():
            return parent
    return Path.cwd()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, title, scope in catalog():
            print("%-6s %-62s [%s]" % (rule_id, title, scope))
        return 0

    root = _detect_root(args.root)
    lint_paths: Optional[Sequence[str]] = args.paths or None
    if args.changed is not None:
        if args.paths:
            print(
                "error: --changed and explicit PATH arguments are "
                "mutually exclusive", file=sys.stderr,
            )
            return 2
        changed = _changed_paths(root, args.changed)
        if changed is None:
            print(
                "lint: not a git checkout (or git unavailable); "
                "linting the full tree", file=sys.stderr,
            )
        elif not changed:
            print("lint: no linted files differ from %s" % args.changed)
            return 0
        else:
            lint_paths = changed
    try:
        findings = run_lint(root, paths=lint_paths, only=args.rule)
    except LintError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    baseline_path = Path(
        args.baseline_file
        if args.baseline_file
        else root / baseline_mod.DEFAULT_BASELINE
    )
    if args.update_baseline:
        counts = baseline_mod.save(baseline_path, findings)
        print(
            "baseline: wrote %d finding%s (%d fingerprint%s) to %s"
            % (
                len(findings), "" if len(findings) == 1 else "s",
                len(counts), "" if len(counts) == 1 else "s", baseline_path,
            )
        )
        return 0

    grandfathered: List[Finding] = []
    stale = {}
    if args.baseline:
        try:
            allowed = baseline_mod.load(baseline_path)
        except baseline_mod.BaselineError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        screened = baseline_mod.screen(findings, allowed)
        findings, grandfathered = screened.new, screened.grandfathered
        stale = screened.stale

    if args.sarif:
        payload = json.dumps(to_sarif(findings, grandfathered), indent=2)
        if args.sarif == "-":
            print(payload)
        else:
            Path(args.sarif).write_text(payload + "\n")

    if args.json:
        print(json.dumps({
            "version": JSON_SCHEMA_VERSION,
            "clean": not findings,
            "findings": [f.to_json_dict() for f in findings],
            "grandfathered": [f.to_json_dict() for f in grandfathered],
            "stale_baseline": stale,
            "counts": dict(Counter(f.rule for f in findings)),
        }, indent=2))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    for key, unused in sorted(stale.items()):
        print(
            "stale baseline entry (fixed; ratchet it away with "
            "--update-baseline): %s x%d" % (key, unused)
        )
    summary = "simlint: %d finding%s" % (
        len(findings), "" if len(findings) == 1 else "s"
    )
    if grandfathered:
        summary += ", %d grandfathered by baseline" % len(grandfathered)
    print(summary)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
