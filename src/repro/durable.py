"""Torn-tail JSONL recovery, shared by every durable log in the repo.

Two subsystems persist append-only JSON-lines files that a ``kill -9``
can leave with a half-written final record: the sweep runner's
checkpoint (:mod:`repro.runner.checkpoint`) and the serving layer's
write-ahead journal (:mod:`repro.serve.journal`).  Both need the same
audited recovery semantics, implemented once here:

* a **torn trailing line** (undecodable bytes followed only by
  whitespace) is the signature of a writer killed mid-append.  It is
  recoverable by construction — the record it would have described was
  never acknowledged — so it is *quarantined* to a ``.corrupt`` sidecar
  (preserved for forensics, never replayed) and scanning succeeds with
  the intact prefix;
* **corruption anywhere earlier** is not a crash signature (appends are
  sequential); silently skipping an interior record would resurrect or
  drop acknowledged state, so scanning raises
  :class:`JsonlCorruptionError` and the operator decides.

Both callers feed :func:`scan_jsonl` raw bytes and get the decoded
records plus the torn fragment (if any); :func:`quarantine_fragment`
diverts the fragment to the sidecar.  Keeping one implementation means
one set of tests proves the recovery path for every log format built on
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union


class JsonlCorruptionError(ValueError):
    """A JSONL file is damaged beyond the recoverable trailing line.

    Carries the zero-based ``line_index`` of the first undecodable
    interior record so the damage can be inspected directly.
    """

    def __init__(self, message: str, *, path: Union[str, Path, None] = None,
                 line_index: int = 0) -> None:
        self.path = str(path) if path is not None else None
        self.line_index = line_index
        where = "line %d" % line_index
        if self.path:
            where = "%s, %s" % (self.path, where)
        super().__init__("%s (%s)" % (message, where))


@dataclass
class JsonlScan:
    """What :func:`scan_jsonl` recovered from a raw JSONL byte stream."""

    #: decoded records, in file order (every one a JSON value)
    records: List[Any] = field(default_factory=list)
    #: the torn trailing fragment, or ``None`` on a clean scan
    torn: Optional[bytes] = None

    @property
    def clean(self) -> bool:
        return self.torn is None


def scan_jsonl(raw: bytes, *, path: Union[str, Path, None] = None) -> JsonlScan:
    """Decode an append-only JSONL byte stream with torn-tail recovery.

    Returns every decodable record in order.  An undecodable *final*
    non-blank line is returned as ``scan.torn`` (the caller quarantines
    it); an undecodable *interior* line raises
    :class:`JsonlCorruptionError`.
    """
    scan = JsonlScan()
    lines = raw.split(b"\n")
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            is_tail = all(not later.strip() for later in lines[index + 1:])
            if is_tail:
                scan.torn = line
                break
            raise JsonlCorruptionError(
                "undecodable interior record: %s" % exc,
                path=path, line_index=index,
            ) from exc
        scan.records.append(record)
    return scan


def corrupt_sidecar(path: Union[str, Path]) -> Path:
    """Where torn fragments of ``path`` are quarantined."""
    path = Path(path)
    return path.with_name(path.name + ".corrupt")


def quarantine_fragment(path: Union[str, Path], fragment: bytes) -> Path:
    """Append a torn fragment to ``path``'s ``.corrupt`` sidecar and
    return the sidecar path.  Fragments accumulate (forensics may want
    the history of tears), each terminated with a newline."""
    sidecar = corrupt_sidecar(path)
    with sidecar.open("ab") as handle:
        handle.write(fragment.rstrip(b"\n") + b"\n")
    return sidecar


__all__ = [
    "JsonlCorruptionError",
    "JsonlScan",
    "corrupt_sidecar",
    "quarantine_fragment",
    "scan_jsonl",
]
