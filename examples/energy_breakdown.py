#!/usr/bin/env python
"""Component-level energy breakdown: where do Snake's savings come from?

Reproduces the reasoning behind Fig 19: Snake's energy win is dominated by
shorter runtime (static energy) and fewer replayed accesses, while the
prefetcher's own tables cost almost nothing (§5.5's 6.4 pJ/access).

Run with::

    python examples/energy_breakdown.py [app]
"""

import sys

from repro.gpusim import GPUConfig, simulate
from repro.gpusim.energy import energy_of
from repro.workloads import BENCHMARKS, build_kernel

COMPONENTS = ["static_j", "core_j", "l1_j", "l2_j", "dram_j", "icnt_j",
              "prefetcher_j"]


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "srad"
    if app not in BENCHMARKS:
        raise SystemExit("unknown app %r; choose from %s" % (app, BENCHMARKS))

    config = GPUConfig.scaled()
    kernel = build_kernel(app, scale=1.0, seed=7)
    base = energy_of(simulate(kernel, prefetcher="none", config=config),
                     config.num_sms)
    snake = energy_of(simulate(kernel, prefetcher="snake", config=config),
                      config.num_sms, prefetcher_present=True)

    print("energy breakdown for %s (joules x 1e-6):" % app)
    print("%-14s %12s %12s %9s" % ("component", "baseline", "snake", "delta"))
    print("-" * 50)
    for name in COMPONENTS:
        b = getattr(base, name) * 1e6
        s = getattr(snake, name) * 1e6
        print("%-14s %12.3f %12.3f %+8.1f%%"
              % (name[:-2], b, s, 100 * (s - b) / b if b else 0.0))
    print("-" * 50)
    print("%-14s %12.3f %12.3f %+8.1f%%"
          % ("total", base.total_j * 1e6, snake.total_j * 1e6,
             100 * (snake.total_j - base.total_j) / base.total_j))
    print()
    print("prefetcher tables account for %.3f%% of Snake's total energy"
          % (100 * snake.prefetcher_j / snake.total_j))


if __name__ == "__main__":
    main()
