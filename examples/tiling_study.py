#!/usr/bin/env python
"""Tiling + Snake interplay (the paper's §5.6 / Fig 24).

Sweeps the tile size of a tiled convolution from 0% (untiled streaming) to
100% of the unified cache and reports IPC and energy, with and without
Snake, normalized to the untiled baseline.

Run with::

    python examples/tiling_study.py
"""

from repro.analysis.experiments import figure24
from repro.analysis.report import render_pairs


def main() -> None:
    data = figure24(tile_fracs=(0.25, 0.50, 0.75, 1.0), scale=0.6, seed=7)
    flat = {
        frac: (
            values["tiled"][0], values["tiled"][1],
            values["snake+tiled"][0], values["snake+tiled"][1],
        )
        for frac, values in data.items()
    }
    print(render_pairs(
        "Tiled convolution: IPC and energy vs untiled baseline",
        flat,
        labels=["tiled-ipc", "tiled-en", "fused-ipc", "fused-en"],
        x_label="tile",
    ))
    best = max(data, key=lambda f: data[f]["snake+tiled"][0])
    print()
    print("best Snake+Tiled tile size: %d%% of the unified cache"
          % round(best * 100))


if __name__ == "__main__":
    main()
