#!/usr/bin/env python
"""Compare every prefetching mechanism on a workload of your choice.

Reproduces one column of Figs 16-18 interactively::

    python examples/prefetcher_shootout.py            # defaults to srad
    python examples/prefetcher_shootout.py lib        # pick another app
    python examples/prefetcher_shootout.py mum 0.5    # app + scale
"""

import sys

from repro.gpusim import GPUConfig, simulate
from repro.prefetch import COMPARISON_POINTS
from repro.workloads import BENCHMARKS, build_kernel


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "srad"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if app not in BENCHMARKS:
        raise SystemExit("unknown app %r; choose from %s" % (app, BENCHMARKS))

    config = GPUConfig.scaled()
    kernel = build_kernel(app, scale=scale, seed=7)
    baseline = simulate(kernel, prefetcher="none", config=config)

    print("app=%s  baseline IPC=%.3f  hit rate=%.1f%%"
          % (app, baseline.ipc, 100 * baseline.l1_hit_rate))
    print()
    print("%-12s %9s %9s %9s %9s" % ("mechanism", "speedup", "coverage",
                                     "accuracy", "hit rate"))
    print("-" * 54)
    for mech in COMPARISON_POINTS + ["ideal", "isolated-snake"]:
        stats = simulate(kernel, prefetcher=mech, config=config)
        print("%-12s %8.2fx %8.1f%% %8.1f%% %8.1f%%" % (
            mech,
            stats.ipc / baseline.ipc,
            100 * stats.coverage,
            100 * stats.accuracy,
            100 * stats.l1_hit_rate,
        ))


if __name__ == "__main__":
    main()
