#!/usr/bin/env python
"""Watch Snake learn the LPS chain of strides (the paper's Fig 8).

Feeds the LPS trace to a bare SnakePrefetcher (no timing model) and dumps
the Head/Tail tables as training progresses — you can see the exact
(-400, +40400, -400) chain from Fig 8 get detected, promoted after three
warps, and finally used to generate multi-hop prefetch requests.

Run with::

    python examples/chain_discovery.py
"""

from repro.core.snake import SnakePrefetcher
from repro.prefetch.base import AccessEvent
from repro.workloads import build_kernel


def dump_tail(snake: SnakePrefetcher) -> None:
    print("    %-8s %-8s %12s %6s %5s %10s %6s" % (
        "PC1", "PC2", "inter-thread", "T1", "pop", "intra", "T2"))
    for entry in snake.tail.entries():
        print("    %-8s %-8s %12d %6s %5d %10s %6s" % (
            hex(entry.pc1), hex(entry.pc2), entry.inter_thread_stride,
            entry.t1.value, entry.popcount,
            entry.intra_stride if entry.intra_stride is not None else "-",
            entry.t2.value))


def main() -> None:
    kernel = build_kernel("lps", scale=0.5, seed=7)
    snake = SnakePrefetcher()

    # interleave the first few warps round-robin, like a fair scheduler
    warps = kernel.all_warps()[:6]
    streams = [iter(w.loads()) for w in warps]
    step = 0
    live = list(range(len(streams)))
    while live:
        for idx in list(live):
            instr = next(streams[idx], None)
            if instr is None:
                live.remove(idx)
                continue
            event = AccessEvent(
                warp_id=warps[idx].warp_id, cta_id=0, pc=instr.pc,
                base_addr=instr.base_addr,
                line_addr=instr.base_addr - instr.base_addr % 128,
                now=step, thread_stride=instr.thread_stride,
            )
            requests = snake.observe(event)
            step += 1
            if step in (8, 16, 48):
                print("after %d observed loads:" % step)
                dump_tail(snake)
                print()
            if step == 64:
                print("prefetch requests for warp %d at PC %s (addr %d):"
                      % (event.warp_id, hex(event.pc), event.base_addr))
                for request in requests:
                    print("    depth %d -> address %d (delta %+d)"
                          % (request.depth, request.base_addr,
                             request.base_addr - event.base_addr))
                return


if __name__ == "__main__":
    main()
