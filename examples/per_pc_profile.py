#!/usr/bin/env python
"""Per-PC prefetch profile: find exactly which loads Snake covers.

For each static load PC of a benchmark, prints the access count, hit rate
and how much of it the prefetcher covered (and covered *in time*).  Useful
when a workload underperforms — the uncovered PCs are the ones the Tail
table failed to learn (e.g. histo's data-dependent bin reads).

Run with::

    python examples/per_pc_profile.py             # histo under Snake
    python examples/per_pc_profile.py lps mta     # any app/mechanism
"""

import sys

from repro.analysis.profile import profile_kernel
from repro.workloads import BENCHMARKS


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "histo"
    mechanism = sys.argv[2] if len(sys.argv) > 2 else "snake"
    if app not in BENCHMARKS:
        raise SystemExit("unknown app %r; choose from %s" % (app, BENCHMARKS))

    print("per-PC profile: app=%s mechanism=%s" % (app, mechanism))
    rows = profile_kernel(app, mechanism, scale=1.0, seed=7)
    for row in rows:
        print("  " + row.as_row())
    total = sum(r.accesses for r in rows)
    covered = sum(r.covered for r in rows)
    print("overall coverage: %.1f%% of %d demand loads"
          % (100 * covered / total if total else 0.0, total))


if __name__ == "__main__":
    main()
