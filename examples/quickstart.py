#!/usr/bin/env python
"""Quickstart: run one benchmark with and without Snake.

Builds the LPS (3D Laplace Solver) trace — the paper's running example —
simulates it on the baseline GPU and on a Snake-equipped GPU, and prints
the headline metrics the paper reports: coverage, timely accuracy, L1 hit
rate, IPC speedup, and energy.

Run with::

    python examples/quickstart.py
"""

from repro.gpusim import GPUConfig, simulate
from repro.gpusim.energy import energy_of
from repro.workloads import build_kernel


def main() -> None:
    config = GPUConfig.scaled()
    kernel = build_kernel("lps", scale=1.0, seed=7)
    print("kernel: %s  (%d CTAs, %d warps, %d instructions)"
          % (kernel.name, len(kernel.ctas), kernel.num_warps, kernel.num_instrs))

    baseline = simulate(kernel, prefetcher="none", config=config)
    snake = simulate(kernel, prefetcher="snake", config=config)

    base_energy = energy_of(baseline, config.num_sms).total_j
    snake_energy = energy_of(snake, config.num_sms, prefetcher_present=True).total_j

    print()
    print("%-22s %12s %12s" % ("metric", "baseline", "snake"))
    print("-" * 48)
    print("%-22s %12.3f %12.3f" % ("IPC", baseline.ipc, snake.ipc))
    print("%-22s %11.1f%% %11.1f%%" % ("L1 hit rate",
                                       100 * baseline.l1_hit_rate,
                                       100 * snake.l1_hit_rate))
    print("%-22s %12s %11.1f%%" % ("coverage", "-", 100 * snake.coverage))
    print("%-22s %12s %11.1f%%" % ("timely accuracy", "-", 100 * snake.accuracy))
    print("%-22s %12d %12d" % ("cycles", baseline.cycles, snake.cycles))
    print()
    print("speedup: %.2fx   energy: %.2fx"
          % (snake.ipc / baseline.ipc, snake_energy / base_energy))


if __name__ == "__main__":
    main()
