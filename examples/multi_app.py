#!/usr/bin/env python
"""Multi-application Snake (the paper's §1 extension).

Runs two different kernels *concurrently* on one GPU and compares a shared
Tail table against per-application tables ("the chains of strides are
detected within each application").  With sharing, one app's transitions
evict the other's chains; per-app tables keep both trained.

Run with::

    python examples/multi_app.py
"""

from repro.core.snake import SnakePrefetcher
from repro.core.throttle import Throttle
from repro.gpusim import GPUConfig
from repro.gpusim.gpu import GPU
from repro.gpusim.unified_cache import StorageMode
from repro.workloads import build_kernel


def run(per_app: bool):
    config = GPUConfig.scaled()
    kernels = [
        build_kernel("lps", scale=0.5, seed=1),
        build_kernel("lib", scale=0.5, seed=2),
    ]
    gpu = GPU(
        config=config,
        prefetcher_factory=lambda: SnakePrefetcher(per_app=per_app),
        throttle_factory=Throttle,
        storage_mode=StorageMode.DECOUPLED,
    )
    return gpu.run_many(kernels)


def main() -> None:
    shared = run(per_app=False)
    isolated = run(per_app=True)
    print("two applications (LPS + LIB) sharing one GPU:")
    print("%-22s %10s %10s" % ("tables", "coverage", "accuracy"))
    print("-" * 44)
    print("%-22s %9.1f%% %9.1f%%" % ("shared", 100 * shared.coverage,
                                     100 * shared.accuracy))
    print("%-22s %9.1f%% %9.1f%%" % ("per-application", 100 * isolated.coverage,
                                     100 * isolated.accuracy))


if __name__ == "__main__":
    main()
