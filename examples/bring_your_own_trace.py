#!/usr/bin/env python
"""Bring your own trace: write, validate, and simulate an external kernel.

Shows the full external-trace workflow: build a trace by hand (as a
converter from e.g. Accel-Sim SASS traces would), save it to the JSON-lines
format, validate it, and run it under the baseline and Snake.

Run with::

    python examples/bring_your_own_trace.py
"""

import tempfile
from pathlib import Path

from repro.gpusim import (
    CTA,
    KernelTrace,
    Op,
    WarpInstr,
    WarpTrace,
    load_trace,
    renumber_warps,
    save_trace,
    simulate,
    validate_kernel,
)


def hand_written_kernel() -> KernelTrace:
    """A little pointer-walk kernel with a two-load chain per node."""
    ctas = []
    for c in range(4):
        warps = []
        for w in range(8):
            instrs = []
            node = (1 << 26) + (c * 8 + w) * 65536
            for _ in range(20):
                instrs.append(WarpInstr(pc=0x100, op=Op.LOAD, base_addr=node,
                                        thread_stride=4))
                instrs.append(WarpInstr(pc=0x120, op=Op.LOAD,
                                        base_addr=node + 256, thread_stride=4))
                instrs.append(WarpInstr(pc=0x140, op=Op.ALU))
                node += 4096  # next node, fixed pitch
            warps.append(WarpTrace(warp_id=0, instrs=instrs))
        ctas.append(CTA(cta_id=c, warps=warps))
    renumber_warps(ctas)
    return KernelTrace(name="byot", ctas=ctas)


def main() -> None:
    kernel = hand_written_kernel()

    issues = validate_kernel(kernel)
    print("validation: %d issue(s)" % len(issues))
    for issue in issues:
        print("  %s" % issue)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(kernel, Path(tmp) / "byot.trace")
        print("saved %s (%d bytes)" % (path.name, path.stat().st_size))
        loaded = load_trace(path)

    baseline = simulate(loaded, prefetcher="none")
    snake = simulate(loaded, prefetcher="snake")
    print("baseline: ipc=%.3f hit=%.1f%%" % (baseline.ipc,
                                             100 * baseline.l1_hit_rate))
    print("snake:    ipc=%.3f hit=%.1f%% coverage=%.1f%% (x%.2f speedup)"
          % (snake.ipc, 100 * snake.l1_hit_rate, 100 * snake.coverage,
             snake.ipc / baseline.ipc))


if __name__ == "__main__":
    main()
