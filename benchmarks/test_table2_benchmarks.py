"""Benchmark: print Table 2 — the benchmark suites — and verify every app
builds a valid, memory-access-bearing trace."""

from _common import BENCH_SEED, run_once

from repro.gpusim.validate import validate_kernel
from repro.workloads import BENCHMARKS, FULL_NAMES, build_kernel


def _run():
    kernels = {}
    for app in BENCHMARKS:
        kernels[app] = build_kernel(app, scale=0.25, seed=BENCH_SEED)
    return kernels


def test_table2_benchmarks(benchmark):
    kernels = run_once(benchmark, _run)
    print()
    print("Table 2: benchmark suites")
    for app in BENCHMARKS:
        kernel = kernels[app]
        print("  %-50s %-9s %5d warps %7d instrs"
              % (FULL_NAMES[app], app, kernel.num_warps, kernel.num_instrs))
        errors = [i for i in validate_kernel(kernel) if i.severity == "error"]
        assert errors == [], app
        assert kernel.representative_warp().loads(), app
    assert len(kernels) == 11  # the paper's eleven applications
