"""Benchmark: regenerate Fig 25 — L1 data cache hit rate of the baseline,
Snake, and Isolated-Snake.

Paper shape: 45% / 79% / 84% — Snake lands within a few points of the
idealized isolated buffer.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig25_hit_rate(benchmark):
    matrix = run_once(
        benchmark, experiments.figure25, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix("Fig 25: L1 hit rate", matrix, percent=True))
    assert matrix["snake"]["mean"] > matrix["baseline"]["mean"]
    assert matrix["isolated-snake"]["mean"] > matrix["baseline"]["mean"]
