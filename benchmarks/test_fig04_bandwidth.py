"""Benchmark: regenerate 'Fig 4: NoC bandwidth utilization (baseline)'.

paper: ~33% of L1<->L2 bandwidth utilized.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig04_bandwidth(benchmark):
    series = run_once(
        benchmark, experiments.figure4, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_series('Fig 4: NoC bandwidth utilization (baseline)', series, percent=True))
    assert set(series) > {"mean"}
