"""Benchmark: regenerate Fig 24 — tiled convolution with and without Snake,
for tile sizes of 25/50/75/100% of the unified cache.

Paper shape: both curves peak at the 75% tile; Snake+Tiled beats Tiled
alone except at 100% (where Snake stays throttled); improvements are
normalized to the untiled, unprefetched baseline.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments, report

SCALE = 0.6
FRACS = (0.25, 0.50, 0.75, 1.0)


def test_fig24_tiling(benchmark):
    data = run_once(
        benchmark, experiments.figure24, tile_fracs=FRACS,
        scale=SCALE, seed=BENCH_SEED,
    )
    flat = {
        frac: (
            values["tiled"][0], values["tiled"][1],
            values["snake+tiled"][0], values["snake+tiled"][1],
        )
        for frac, values in data.items()
    }
    print()
    print(report.render_pairs(
        "Fig 24: tiling +/- Snake (vs untiled baseline)",
        flat, labels=["tiled-ipc", "tiled-en", "fused-ipc", "fused-en"],
        x_label="tile",
    ))
    # tiling alone helps; the best configuration is the 75% tile (the
    # paper's peak), where adding Snake helps further; at 100% Snake stays
    # throttled and matches plain tiling
    assert data[0.75]["tiled"][0] > 1.0
    assert data[0.75]["snake+tiled"][0] >= data[0.75]["tiled"][0] * 0.98
    assert abs(data[1.0]["snake+tiled"][0] - data[1.0]["tiled"][0]) < 0.15
