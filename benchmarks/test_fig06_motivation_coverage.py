"""Benchmark: regenerate Fig 6 — coverage of Intra/Inter/MTA/CTA-aware
against the Ideal prefetcher.

Paper shape: Ideal exceeds MTA by ~25% and CTA-aware by ~70% of demand
coverage, motivating chain-based prefetching.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig06_motivation_coverage(benchmark):
    matrix = run_once(
        benchmark, experiments.figure6, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix(
        "Fig 6: coverage vs the Ideal prefetcher", matrix, percent=True
    ))
    # the paper's key observation: Ideal dominates the fixed-stride designs
    assert matrix["ideal"]["mean"] > matrix["mta"]["mean"]
    assert matrix["ideal"]["mean"] > matrix["cta"]["mean"]
