"""Benchmark: regenerate Fig 22 — Snake coverage vs Tail entries with the
popcount-only eviction policy (no LRU group).

Paper shape: popcount-only trails the combined LRU+popcount policy of
Fig 20, especially at small tables.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments, report

SCALE = 0.35
ENTRIES = (2, 5, 10, 20, 40)


def test_fig22_eviction_policy(benchmark):
    sweep = run_once(
        benchmark, experiments.figure22, entry_sizes=ENTRIES,
        scale=SCALE, seed=BENCH_SEED,
    )
    print()
    print(report.render_sweep(
        "Fig 22: coverage vs Tail entries (popcount-only)",
        sweep, x_label="entries", percent=True,
    ))
    lru_pop = experiments.figure20(entry_sizes=(10,), scale=SCALE, seed=BENCH_SEED)
    print("LRU+popcount @10 entries: %.1f%%  popcount-only: %.1f%%"
          % (100 * lru_pop[10], 100 * sweep[10]))
    # the paper's conclusion: the combined policy is at least as good
    assert lru_pop[10] >= sweep[10] - 0.03
