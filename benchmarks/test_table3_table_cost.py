"""Benchmark: regenerate Table 3 — Snake's table parameters — plus the §5.5
area claim (<1% of the V100 die).
"""

from _common import run_once

from repro.analysis import experiments
from repro.gpusim.area import area_overhead_fraction


def test_table3_table_cost(benchmark):
    table = run_once(benchmark, experiments.table3)
    print()
    print("Table 3: Snake's tables parameters")
    for name, fields in table.items():
        print("  %-5s %3d bytes/entry x %3d entries = %4d bytes"
              % (name, fields["bytes_per_entry"], fields["entries"],
                 fields["total_bytes"]))
    overhead = area_overhead_fraction(num_sms=80)
    print("  die-area overhead (80 SMs): %.3f%%" % (100 * overhead))
    assert table["head"]["total_bytes"] == 448  # paper: 448 bytes
    assert table["tail"]["total_bytes"] == 320  # paper: 320 bytes
    assert overhead < 0.01  # paper: <1% of the 815 mm^2 die
