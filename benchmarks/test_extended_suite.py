"""Generalization check: Snake on the extended suite (spmv / bfs / kmeans /
stream) — workloads outside the Table 2 set it was calibrated against.

Expected shape: big wins where regular structure dominates (kmeans,
stream), parity on bandwidth-bound spmv, modest gains on irregular bfs —
and never a slowdown.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.gpusim import simulate
from repro.workloads import EXTENDED_BENCHMARKS, build_kernel


def _run():
    out = {}
    for app in sorted(EXTENDED_BENCHMARKS):
        kernel = build_kernel(app, scale=BENCH_SCALE, seed=BENCH_SEED)
        base = simulate(kernel, prefetcher="none")
        snake = simulate(kernel, prefetcher="snake")
        out[app] = (snake.ipc / base.ipc, snake.coverage, snake.accuracy)
    return out


def test_extended_suite(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("extended suite (not used for calibration):")
    for app, (speedup, cov, acc) in results.items():
        print("  %-8s speedup=%.2fx cov=%5.1f%% acc=%5.1f%%"
              % (app, speedup, 100 * cov, 100 * acc))
    assert all(speedup > 0.9 for speedup, _, _ in results.values())
