"""Benchmark: regenerate 'Fig 5: memory-stall fraction (baseline)'.

paper: ~55% of stalls are memory stalls.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig05_mem_stalls(benchmark):
    series = run_once(
        benchmark, experiments.figure5, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_series('Fig 5: memory-stall fraction (baseline)', series, percent=True))
    assert set(series) > {"mean"}
