"""Benchmark: regenerate 'Fig 9: chain PC_ld fraction'.

paper: chains cover ~65% of a representative warp's load PCs.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig09_chain_pcs(benchmark):
    series = run_once(
        benchmark, experiments.figure9, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_series('Fig 9: chain PC_ld fraction', series, percent=True))
    assert set(series) > {"mean"}
