"""Shared knobs for the per-figure benchmark harness.

Every benchmark runs its experiment exactly once (``rounds=1``) — the
interesting output is the printed table, which mirrors the corresponding
figure of the paper; the benchmark timing records how long the experiment
takes to regenerate.

``BENCH_SCALE`` trades trace length for wall-clock time; the figures'
qualitative shapes are stable across scales (see EXPERIMENTS.md).
Figures 16-19 share one memoized simulation sweep, so whichever of them
runs first pays the cost for all four.
"""

BENCH_SCALE = 0.5
BENCH_SEED = 1


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
