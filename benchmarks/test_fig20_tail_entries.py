"""Benchmark: regenerate Fig 20 — Snake coverage vs Tail-table entry count
under the LRU+popcount eviction policy.

Paper shape: only ~8% coverage is lost at 10 entries vs much larger
tables, which is why the paper settles on 10.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments, report

SCALE = 0.35  # 5 entry sizes x 11 apps: keep each run small
ENTRIES = (2, 5, 10, 20, 40)


def test_fig20_tail_entries(benchmark):
    sweep = run_once(
        benchmark, experiments.figure20, entry_sizes=ENTRIES,
        scale=SCALE, seed=BENCH_SEED,
    )
    print()
    print(report.render_sweep(
        "Fig 20: coverage vs Tail entries (LRU+popcount)",
        sweep, x_label="entries", percent=True,
    ))
    assert sweep[2] <= sweep[40] + 0.02  # more entries never hurt much
    assert sweep[10] > sweep[40] - 0.10  # 10 entries is within ~10% of large
