"""§6.1 study: CPU prefetchers (Domino temporal, Bingo spatial) adapted to
the GPU L1 versus Snake.

Expected shape: the CPU designs retain fragments of coverage (Domino on
loop-heavy apps, Bingo on dense regions) but are far behind Snake — the
paper's argument for a GPU-specific chain prefetcher.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report
from repro.workloads import BENCHMARKS

MECHS = ("domino", "bingo", "snake")


def _run():
    sweep = experiments.comparison_sweep(
        ("none",) + MECHS, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    out = {}
    for mech in MECHS:
        series = {app: sweep[app][mech].coverage for app in BENCHMARKS}
        series["mean"] = sum(series.values()) / len(series)
        out[mech] = series
    return out


def test_cpu_prefetchers(benchmark):
    matrix = run_once(benchmark, _run)
    print()
    print(report.render_matrix(
        "CPU prefetchers on the GPU (coverage) vs Snake", matrix, percent=True
    ))
    assert matrix["snake"]["mean"] > matrix["domino"]["mean"] + 0.15
    assert matrix["snake"]["mean"] > matrix["bingo"]["mean"] + 0.15
