"""Benchmark: print Table 1 — the baseline GPU configuration — from the
machine description actually used by the simulator (full-scale V100
preset), verifying each paper value."""

from _common import run_once

from repro.gpusim import GPUConfig


def test_table1_config(benchmark):
    config = run_once(benchmark, GPUConfig.volta_v100)
    rows = [
        ("Number of SM", config.num_sms, 80),
        ("Core clock (MHz)", config.core_clock_mhz, 1530),
        ("Scheduler", config.scheduler, "gto"),
        ("Schedulers per SM", config.schedulers_per_sm, 4),
        ("Threads per SM", config.max_threads_per_sm, 2048),
        ("Register file per SM", config.registers_per_sm, 65536),
        ("Unified cache (KB)", config.l1.size_bytes // 1024, 128),
        ("Unified cache assoc", config.l1.assoc, 256),
        ("Line size (B)", config.l1.line_bytes, 128),
        ("MSHR entries", config.mshr_entries, 512),
        ("MSHR merge", config.mshr_merge, 8),
        ("L2 per sub-partition (KB)", config.l2.size_bytes // 1024, 96),
        ("L2 assoc", config.l2.assoc, 24),
        ("L2 banks", config.l2_banks, 64),
        ("DRAM tRCD", config.dram.t_rcd, 12),
        ("DRAM tRAS", config.dram.t_ras, 28),
        ("DRAM tRC", config.dram.t_rc, 40),
        ("DRAM tCL", config.dram.t_cl, 12),
    ]
    print()
    print("Table 1: baseline GPU configuration")
    for name, actual, expected in rows:
        print("  %-26s %10s" % (name, actual))
        assert actual == expected, name
