"""Ablation: sectored vs whole-line L1 fills.

Volta L1s fetch 32-byte sectors; with sectoring enabled, sparse accesses
move less fill bandwidth while dense streaming is unchanged — and Snake's
results must be robust to the fill granularity.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments
from repro.gpusim import GPUConfig

SCALE = 0.5
APPS = ("lps", "mum", "histo")


def _run():
    out = {}
    for label, sector in (("whole-line", 0), ("32B-sectored", 32)):
        config = GPUConfig.scaled().with_(l1_sector_bytes=sector)
        out[label] = {
            app: experiments.run_app(app, "snake", config=config,
                                     scale=SCALE, seed=BENCH_SEED)
            for app in APPS
        }
    return out


def test_ablation_sectored(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("fill-granularity ablation (Snake):")
    for label, per_app in results.items():
        for app, stats in per_app.items():
            print("  %-12s %-6s cov=%5.1f%% icnt=%8d B ipc=%.3f"
                  % (label, app, 100 * stats.coverage, stats.icnt_bytes,
                     stats.ipc))
    for app in APPS:
        whole = results["whole-line"][app]
        sectored = results["32B-sectored"][app]
        # sectoring never moves MORE fill bytes
        assert sectored.icnt_bytes <= whole.icnt_bytes * 1.02, app
        # and Snake's coverage survives the granularity change
        assert abs(sectored.coverage - whole.coverage) < 0.25, app
