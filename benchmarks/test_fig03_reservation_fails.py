"""Benchmark: regenerate 'Fig 3: reservation-fail rate (baseline)'.

paper: ~30% of L1 accesses reservation-fail on average.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig03_reservation_fails(benchmark):
    series = run_once(
        benchmark, experiments.figure3, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_series('Fig 3: reservation-fail rate (baseline)', series, percent=True))
    assert set(series) > {"mean"}
