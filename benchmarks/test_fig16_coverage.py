"""Benchmark: regenerate Fig 16 — prefetch coverage of the ten comparison
points over the eleven benchmarks.

Paper shape: Snake ~80% average coverage, ~15% above MTA (the best prior
mechanism); nw low despite regular patterns; s-Snake close behind Snake.
Whichever of Figs 16-19 runs first pays for the shared simulation sweep.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig16_coverage(benchmark):
    matrix = run_once(
        benchmark, experiments.figure16, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix("Fig 16: prefetch coverage", matrix, percent=True))
    assert matrix["snake"]["mean"] > matrix["mta"]["mean"]
    assert matrix["snake"]["mean"] > matrix["cta"]["mean"]
    assert matrix["snake"]["mean"] > 0.5
