"""Benchmark: regenerate Fig 17 — timely prefetch accuracy of the ten
comparison points.

Paper shape: Snake ~75% average timely accuracy, far above CTA-aware; the
decoupling/throttling ablations (Snake-DT, Snake-T) trail full Snake.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig17_accuracy(benchmark):
    matrix = run_once(
        benchmark, experiments.figure17, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix(
        "Fig 17: prefetch accuracy (timely)", matrix, percent=True
    ))
    assert matrix["snake"]["mean"] > matrix["cta"]["mean"]
    assert matrix["snake"]["mean"] > matrix["tree"]["mean"]
