"""Benchmark: regenerate Fig 11 — share of memory accesses prefetchable
using chains of strides vs the MTA prefetcher.

Paper shape: chains cover ~70% of accesses, ~15% more than MTA.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig11_chain_vs_mta(benchmark):
    data = run_once(
        benchmark, experiments.figure11, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix(
        "Fig 11: chain- vs MTA-prefetchable accesses", data, percent=True
    ))
    assert data["chains"]["mean"] > data["mta"]["mean"]
