"""Benchmark: regenerate Fig 18 — IPC of every mechanism normalized to the
baseline GPU.

Paper shape: Snake +17% average (up to +60%); LIB the biggest winner;
histo/srad large; Tree can hurt; Snake above Snake-DT and Snake-T.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig18_performance(benchmark):
    matrix = run_once(
        benchmark, experiments.figure18, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix("Fig 18: IPC vs baseline", matrix, percent=False))
    assert matrix["snake"]["mean"] > 1.05
    assert matrix["snake"]["mean"] > matrix["tree"]["mean"]
    assert matrix["snake"]["lib"] > 1.1  # LIB is a big winner in the paper
