"""Ablation: SM count (the scaled-config claim).

DESIGN.md decision 4 — per-SM prefetcher behaviour must be stable as the
SM count grows, since the reproduction runs a scaled-down SM array.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments
from repro.gpusim import GPUConfig

SCALE = 0.5


def _run():
    out = {}
    for num_sms in (2, 4, 6):
        config = GPUConfig.scaled(num_sms=num_sms)
        out[num_sms] = experiments.run_app(
            "lps", "snake", config=config, scale=SCALE, seed=BENCH_SEED
        )
    return out


def test_ablation_scale(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("SM-count ablation (Snake on LPS):")
    for num_sms, stats in results.items():
        print("  %d SM(s): cov=%5.1f%% acc=%5.1f%% ipc=%.3f"
              % (num_sms, 100 * stats.coverage, 100 * stats.accuracy, stats.ipc))
    # Per-SM behaviour is stable as the SM array grows (each SM brings its
    # own NoC port, so per-SM pressure is constant; a single-SM machine is
    # excluded because halving the ports is a different design point).
    coverages = [stats.coverage for stats in results.values()]
    assert max(coverages) - min(coverages) < 0.25
