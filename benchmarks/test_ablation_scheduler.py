"""Ablation: warp scheduler (GTO vs loose round-robin).

DESIGN.md decision 1 — the Head table doubles its columns specifically to
survive greedy scheduling, so Snake's coverage should hold under both
schedulers.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments
from repro.gpusim import GPUConfig

SCALE = 0.5
APPS = ("lps", "lib", "hotspot")


def _run():
    out = {}
    for sched in ("gto", "rr"):
        config = GPUConfig.scaled().with_(scheduler=sched)
        out[sched] = {
            app: experiments.run_app(app, "snake", config=config,
                                     scale=SCALE, seed=BENCH_SEED)
            for app in APPS
        }
    return out


def test_ablation_scheduler(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("Scheduler ablation (Snake coverage / accuracy):")
    for sched, per_app in results.items():
        for app, stats in per_app.items():
            print("  %-4s %-8s cov=%5.1f%% acc=%5.1f%% ipc=%.3f"
                  % (sched, app, 100 * stats.coverage,
                     100 * stats.accuracy, stats.ipc))
    for app in APPS:
        gto = results["gto"][app].coverage
        rr = results["rr"][app].coverage
        assert abs(gto - rr) < 0.35  # chains survive scheduler choice
