"""Ablation: maximum chain-walk depth.

§3.2 says the inter-thread prefetch depth is throttle-controlled; this
sweep shows why depth matters — shallow walks cannot reach the next loop
iteration in time, while very deep walks add little once the loop period
is covered.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments
from repro.gpusim import GPUConfig

SCALE = 0.5
APPS = ("lps", "lib", "hotspot")
DEPTHS = (1, 2, 4, 8, 16)


def _run():
    out = {}
    for depth in DEPTHS:
        config = GPUConfig.scaled().with_(max_chain_depth=depth)
        stats = [
            experiments.run_app(app, "snake", config=config,
                                scale=SCALE, seed=BENCH_SEED)
            for app in APPS
        ]
        out[depth] = (
            sum(s.coverage for s in stats) / len(stats),
            sum(s.accuracy for s in stats) / len(stats),
        )
    return out


def test_ablation_chain_depth(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("chain-depth ablation (Snake, mean of %s):" % (APPS,))
    for depth, (cov, acc) in results.items():
        print("  depth %2d: cov=%5.1f%% acc=%5.1f%%" % (depth, 100 * cov, 100 * acc))
    assert results[8][0] >= results[1][0]  # deeper never covers less
