"""Benchmark: regenerate Fig 23 — coverage/accuracy trade-off of the
throttling interval.

Paper shape: 50 cycles reaches the target accuracy at only ~2% coverage
loss; very long intervals cost coverage.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments, report

SCALE = 0.35
INTERVALS = (0, 10, 25, 50, 100, 200)


def test_fig23_throttling(benchmark):
    sweep = run_once(
        benchmark, experiments.figure23, intervals=INTERVALS,
        scale=SCALE, seed=BENCH_SEED,
    )
    print()
    print(report.render_pairs(
        "Fig 23: throttling-interval trade-off",
        sweep, labels=["coverage", "accuracy"], x_label="cycles", percent=True,
    ))
    # the default interval must not cost more than a few points of coverage
    assert sweep[50][0] > sweep[0][0] - 0.05
