"""Benchmark: regenerate Fig 21 — hardware storage cost per SM vs Tail-table
entry count (CACTI-substitute model).

Paper shape: cost grows linearly with entries; 10 entries is the sweet spot
against Fig 20's coverage curve.
"""

from _common import run_once

from repro.analysis import experiments, report

ENTRIES = (2, 5, 10, 20, 40)


def test_fig21_hw_cost(benchmark):
    sweep = run_once(benchmark, experiments.figure21, ENTRIES)
    print()
    print(report.render_sweep(
        "Fig 21: hardware cost (bytes/SM) vs Tail entries",
        sweep, x_label="entries",
    ))
    values = [sweep[n] for n in ENTRIES]
    assert values == sorted(values)
    assert sweep[10] == 448 + 320  # Table 3's configuration
