"""Ablation: warp-confirmation threshold for promotion.

The paper promotes a stride once three distinct warps confirm it (§3.1);
this sweep shows the accuracy/coverage trade: threshold 1 trains on noise,
large thresholds delay prefetching past the opportunity.
"""

from _common import BENCH_SEED, run_once

from repro.analysis import experiments
from repro.gpusim import GPUConfig

SCALE = 0.5
APPS = ("lps", "mum", "histo")
THRESHOLDS = (1, 2, 3, 5, 8)


def _run():
    out = {}
    for threshold in THRESHOLDS:
        config = GPUConfig.scaled().with_(train_threshold=threshold)
        stats = [
            experiments.run_app(app, "snake", config=config,
                                scale=SCALE, seed=BENCH_SEED)
            for app in APPS
        ]
        out[threshold] = (
            sum(s.coverage for s in stats) / len(stats),
            sum(s.accuracy for s in stats) / len(stats),
            sum(s.prefetch.unused_evicted for s in stats),
        )
    return out


def test_ablation_train_threshold(benchmark):
    results = run_once(benchmark, _run)
    print()
    print("train-threshold ablation (Snake, mean of %s):" % (APPS,))
    for threshold, (cov, acc, waste) in results.items():
        print("  threshold %d: cov=%5.1f%% acc=%5.1f%% unused-evicted=%d"
              % (threshold, 100 * cov, 100 * acc, waste))
    # a very high threshold must not cover more than the paper's 3
    assert results[8][0] <= results[3][0] + 0.05
