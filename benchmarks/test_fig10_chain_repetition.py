"""Benchmark: regenerate 'Fig 10: max chain repetition'.

paper: chains repeat ~35x per warp on average.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig10_chain_repetition(benchmark):
    series = run_once(
        benchmark, experiments.figure10, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_series('Fig 10: max chain repetition', series, percent=False))
    assert set(series) > {"mean"}
