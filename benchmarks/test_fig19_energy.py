"""Benchmark: regenerate Fig 19 — energy consumption normalized to the
baseline GPU.

Paper shape: Snake consumes ~17% less energy on average, driven by the
shorter runtime and fewer replayed accesses.
"""

from _common import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis import experiments, report


def test_fig19_energy(benchmark):
    matrix = run_once(
        benchmark, experiments.figure19, scale=BENCH_SCALE, seed=BENCH_SEED
    )
    print()
    print(report.render_matrix("Fig 19: energy vs baseline", matrix, percent=False))
    assert matrix["snake"]["mean"] < 1.0  # Snake saves energy on average
