#!/usr/bin/env python
"""Docs drift checks.

* Every module under src/repro must be mentioned in docs/ARCHITECTURE.md
  (the "Module index" section exists for this).
* Every ``snake-repro`` subcommand and its robustness-surface flags must
  be mentioned somewhere under docs/ — a new CLI entry point without an
  operating manual fails the gate.
* Every simlint rule id (``repro.lint.registry.catalog()``) must be
  documented in docs/STATIC_ANALYSIS.md with a bad/good example — a rule
  that fails builds without an explanation is not enforceable.
* Every field of the ``BENCH_<date>.json`` schema
  (``repro.bench.schema``) must be mentioned in docs/PERFORMANCE.md —
  the payload is a committed artifact people diff in review, so an
  undocumented field is schema drift.

Run from the repository root::

    python tools/check_docs.py

Exit status 0 when complete, 1 with the missing items otherwise.
CI runs this after the test suite; `tests/test_docs.py` runs it as part
of tier-1 so drift is caught locally too.
"""

from __future__ import annotations

import sys
from pathlib import Path

# snake-repro subcommands and the flags whose behaviour only docs can
# explain.  Extend this table when the CLI grows a new surface.
CLI_SURFACE = {
    "trace": (),
    "profile": ("--hot",),
    "sweep": ("--checkpoint", "--resume", "--retry-failed", "--sanitize",
              "--lease", "--drain-timeout"),
    "chaos": ("--sites", "--delay-cycles", "--runner", "--runner-jobs"),
    "lint": ("--rule", "--baseline", "--json", "--update-baseline",
             "--sarif", "--changed"),
    "bench": ("--quick", "--check", "--tolerance", "--legacy-loop"),
    "serve": ("--loadgen", "--chaos", "--queue-depth", "--deadline",
              "--frame-timeout", "--idle-timeout", "--snapshot-every",
              "--fsync", "--max-sessions", "--chaos-seed", "--no-kill"),
}


def missing_modules(repo_root: Path) -> "list[str]":
    doc = (repo_root / "docs" / "ARCHITECTURE.md").read_text()
    missing = []
    for path in sorted((repo_root / "src" / "repro").rglob("*.py")):
        if path.name == "__init__.py" or "egg-info" in str(path):
            continue
        if path.name not in doc:
            missing.append(str(path.relative_to(repo_root)))
    return missing


def missing_cli_docs(repo_root: Path) -> "list[str]":
    docs = "\n".join(
        path.read_text() for path in sorted((repo_root / "docs").glob("*.md"))
    )
    missing = []
    for command, flags in sorted(CLI_SURFACE.items()):
        if "snake-repro %s" % command not in docs:
            missing.append("snake-repro %s" % command)
        for flag in flags:
            if flag not in docs:
                missing.append("%s (of snake-repro %s)" % (flag, command))
    return missing


def missing_rule_docs(repo_root: Path) -> "list[str]":
    sys.path.insert(0, str(repo_root / "src"))
    try:
        from repro.lint.registry import catalog
    finally:
        sys.path.pop(0)
    doc_path = repo_root / "docs" / "STATIC_ANALYSIS.md"
    doc = doc_path.read_text() if doc_path.exists() else ""
    missing = []
    for rule_id, _title, _scope in catalog():
        if "### %s" % rule_id not in doc:
            missing.append("%s (no '### %s' section)" % (rule_id, rule_id))
            continue
        section = doc.split("### %s" % rule_id, 1)[1].split("\n### ", 1)[0]
        if "Bad" not in section or "Good" not in section:
            missing.append("%s (section lacks a Bad/Good example)" % rule_id)
    return missing


def missing_rule_family_docs(repo_root: Path) -> "list[str]":
    """Every rule *family* prefix (SL1xx, SL6xx, ...) present in the
    catalog must be named in docs/STATIC_ANALYSIS.md — families are how
    the doc organises "Adding a rule", so an undocumented family means
    the catalog grew a dimension the manual does not know about."""
    sys.path.insert(0, str(repo_root / "src"))
    try:
        from repro.lint.registry import catalog
    finally:
        sys.path.pop(0)
    doc_path = repo_root / "docs" / "STATIC_ANALYSIS.md"
    doc = doc_path.read_text() if doc_path.exists() else ""
    families = sorted({
        rule_id[:3] + "xx" for rule_id, _title, _scope in catalog()
    })
    return [family for family in families if family not in doc]


def missing_bench_schema_docs(repo_root: Path) -> "list[str]":
    sys.path.insert(0, str(repo_root / "src"))
    try:
        from repro.bench.schema import CASE_FIELDS, TOP_FIELDS
    finally:
        sys.path.pop(0)
    doc_path = repo_root / "docs" / "PERFORMANCE.md"
    doc = doc_path.read_text() if doc_path.exists() else ""
    missing = []
    for field in sorted(set(TOP_FIELDS) | set(CASE_FIELDS)):
        if "`%s`" % field not in doc:
            missing.append(field)
    return missing


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    status = 0
    missing = missing_modules(repo_root)
    if missing:
        print("modules not mentioned in docs/ARCHITECTURE.md:")
        for name in missing:
            print("  " + name)
        status = 1
    else:
        print("docs/ARCHITECTURE.md mentions every src/repro module")
    missing = missing_cli_docs(repo_root)
    if missing:
        print("CLI surface not mentioned anywhere under docs/:")
        for name in missing:
            print("  " + name)
        status = 1
    else:
        print("docs/ cover every snake-repro subcommand and tracked flag")
    missing = missing_rule_docs(repo_root)
    if missing:
        print("simlint rules not documented in docs/STATIC_ANALYSIS.md:")
        for name in missing:
            print("  " + name)
        status = 1
    else:
        print("docs/STATIC_ANALYSIS.md documents every simlint rule")
    missing = missing_rule_family_docs(repo_root)
    if missing:
        print("simlint rule families not named in docs/STATIC_ANALYSIS.md:")
        for name in missing:
            print("  " + name)
        status = 1
    else:
        print("docs/STATIC_ANALYSIS.md names every simlint rule family")
    missing = missing_bench_schema_docs(repo_root)
    if missing:
        print("BENCH schema fields not mentioned in docs/PERFORMANCE.md:")
        for name in missing:
            print("  " + name)
        status = 1
    else:
        print("docs/PERFORMANCE.md mentions every BENCH schema field")
    return status


if __name__ == "__main__":
    sys.exit(main())
