#!/usr/bin/env python
"""Docs drift check: every module under src/repro must be mentioned in
docs/ARCHITECTURE.md (the "Module index" section exists for this).

Run from the repository root::

    python tools/check_docs.py

Exit status 0 when complete, 1 with the missing module list otherwise.
CI runs this after the test suite; `tests/test_docs.py` runs it as part
of tier-1 so drift is caught locally too.
"""

from __future__ import annotations

import sys
from pathlib import Path


def missing_modules(repo_root: Path) -> "list[str]":
    doc = (repo_root / "docs" / "ARCHITECTURE.md").read_text()
    missing = []
    for path in sorted((repo_root / "src" / "repro").rglob("*.py")):
        if path.name == "__init__.py" or "egg-info" in str(path):
            continue
        if path.name not in doc:
            missing.append(str(path.relative_to(repo_root)))
    return missing


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    missing = missing_modules(repo_root)
    if missing:
        print("modules not mentioned in docs/ARCHITECTURE.md:")
        for name in missing:
            print("  " + name)
        return 1
    print("docs/ARCHITECTURE.md mentions every src/repro module")
    return 0


if __name__ == "__main__":
    sys.exit(main())
