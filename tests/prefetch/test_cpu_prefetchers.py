"""Domino and Bingo — CPU prefetchers adapted to the GPU L1 (§6.1)."""

from repro.prefetch.base import AccessEvent
from repro.prefetch.bingo import BingoPrefetcher
from repro.prefetch.domino import DominoPrefetcher


def ev(warp, pc, addr):
    return AccessEvent(warp_id=warp, cta_id=0, pc=pc,
                       base_addr=addr, line_addr=addr - addr % 128, now=0,
                       thread_stride=4)


class TestDomino:
    def test_replays_temporal_stream(self):
        pf = DominoPrefetcher(degree=2)
        stream = [0, 512, 8192, 128, 640]
        for addr in stream:
            pf.observe(ev(0, 0x10, addr))
        # revisiting the stream's start must replay the successors
        requests = pf.observe(ev(0, 0x10, 0))
        addrs = [r.base_addr for r in requests]
        assert addrs[:2] == [512, 8192]

    def test_pair_index_disambiguates(self):
        pf = DominoPrefetcher(degree=1)
        # two contexts ending in the same address but different successors
        for addr in [100 * 128, 0, 1 * 128, 200 * 128, 0, 5 * 128]:
            pf.observe(ev(0, 0x10, addr))
        # context (200*128, 0) -> 5*128 must win over the single-addr match
        pf.observe(ev(0, 0x10, 200 * 128))
        requests = pf.observe(ev(0, 0x10, 0))
        assert requests and requests[0].base_addr == 5 * 128

    def test_history_bounded(self):
        pf = DominoPrefetcher(history_size=64)
        for i in range(1000):
            pf.observe(ev(0, 0x10, i * 128))
        assert len(pf._history) <= 64

    def test_cold_stream_is_silent(self):
        pf = DominoPrefetcher()
        assert pf.observe(ev(0, 0x10, 0)) == []


class TestBingo:
    def test_learns_and_replays_footprint(self):
        pf = BingoPrefetcher(region_bytes=1024, max_regions=1)
        # generation in region 0: touch lines 0, 3, 5 (trigger offset 0)
        for offset in (0, 3, 5):
            pf.observe(ev(0, 0x10, offset * 128))
        # the access that opens a new region retires region 0, records its
        # footprint under the (pc, offset-0) short event, and — because the
        # new trigger matches that event — replays the footprint immediately
        requests = pf.observe(ev(0, 0x10, 1 << 20))
        offsets = sorted((r.base_addr - (1 << 20)) // 128 for r in requests)
        assert offsets == [3, 5]

    def test_active_region_accumulates_silently(self):
        pf = BingoPrefetcher(region_bytes=1024)
        pf.observe(ev(0, 0x10, 0))
        assert pf.observe(ev(0, 0x10, 256)) == []

    def test_unknown_region_and_pc_is_silent(self):
        pf = BingoPrefetcher()
        assert pf.observe(ev(0, 0x99, 5 << 20)) == []

    def test_rejects_bad_region(self):
        import pytest

        with pytest.raises(ValueError):
            BingoPrefetcher(region_bytes=1000)


class TestIntegration:
    def test_both_run_end_to_end(self):
        from repro.gpusim import simulate
        from repro.workloads import build_kernel

        kernel = build_kernel("lps", scale=0.25, seed=1)
        for mech in ("domino", "bingo"):
            stats = simulate(kernel, prefetcher=mech)
            assert stats.instructions == kernel.num_instrs

    def test_snake_beats_cpu_designs_on_gpu_workloads(self):
        """§6.1: CPU prefetchers cannot directly exploit GPU access
        structure — Snake's GPU-specific chains must dominate."""
        from repro.gpusim import simulate
        from repro.workloads import build_kernel

        kernel = build_kernel("srad", scale=0.5, seed=1)
        snake = simulate(kernel, prefetcher="snake")
        domino = simulate(kernel, prefetcher="domino")
        bingo = simulate(kernel, prefetcher="bingo")
        assert snake.coverage > max(domino.coverage, bingo.coverage) + 0.2
