"""Prefetcher API, registry, and machine setups."""

import pytest

from repro.gpusim.config import GPUConfig
from repro.gpusim.unified_cache import StorageMode
from repro.prefetch import COMPARISON_POINTS, build_setup
from repro.prefetch.base import (
    AccessEvent,
    Prefetcher,
    PrefetchRequest,
    available,
    create,
)


class TestRequestValidation:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            PrefetchRequest(base_addr=-1)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            PrefetchRequest(base_addr=0, depth=0)


class TestRegistry:
    def test_known_names(self):
        for name in ("none", "intra", "inter", "mta", "cta", "tree", "ideal"):
            assert name in available()
            assert isinstance(create(name), Prefetcher)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            create("nope")

    def test_null_prefetcher_is_silent(self):
        event = AccessEvent(warp_id=0, cta_id=0, pc=0, base_addr=0,
                            line_addr=0, now=0)
        assert create("none").observe(event) == []


class TestBuildSetup:
    def test_all_comparison_points_resolve(self):
        config = GPUConfig.scaled()
        for name in COMPARISON_POINTS + ["none", "ideal", "isolated-snake"]:
            setup = build_setup(name, config)
            assert setup.prefetcher_factory() is not None

    def test_snake_uses_decoupled_storage_and_throttle(self):
        from repro.core.throttle import Throttle

        setup = build_setup("snake", GPUConfig.scaled())
        assert setup.storage_mode is StorageMode.DECOUPLED
        assert isinstance(setup.throttle_factory(), Throttle)

    def test_snake_dt_is_coupled_unthrottled(self):
        from repro.core.throttle import NullThrottle

        setup = build_setup("snake-dt", GPUConfig.scaled())
        assert setup.storage_mode is StorageMode.COUPLED
        assert isinstance(setup.throttle_factory(), NullThrottle)

    def test_snake_t_is_decoupled_unthrottled(self):
        from repro.core.throttle import NullThrottle

        setup = build_setup("snake-t", GPUConfig.scaled())
        assert setup.storage_mode is StorageMode.DECOUPLED
        assert isinstance(setup.throttle_factory(), NullThrottle)

    def test_isolated_snake(self):
        setup = build_setup("isolated-snake", GPUConfig.scaled())
        assert setup.storage_mode is StorageMode.ISOLATED

    def test_s_snake_disables_fixed_strides(self):
        setup = build_setup("s-snake", GPUConfig.scaled())
        snake = setup.prefetcher_factory()
        assert snake.use_chains and not snake.use_intra and not snake.use_inter_warp

    def test_decoupled_flag_upgrades_baselines(self):
        setup = build_setup("mta", GPUConfig.scaled(), decoupled=True)
        assert setup.storage_mode is StorageMode.DECOUPLED

    def test_snake_config_knobs_propagate(self):
        config = GPUConfig.scaled().with_(tail_entries=7, train_threshold=2)
        snake = build_setup("snake", config).prefetcher_factory()
        assert snake.tail.capacity == 7
        assert snake.train_threshold == 2

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            build_setup("bogus", GPUConfig.scaled())

    def test_fresh_prefetcher_per_call(self):
        setup = build_setup("snake", GPUConfig.scaled())
        assert setup.prefetcher_factory() is not setup.prefetcher_factory()
