"""Property-based tests for Snake's chain machinery: any synthetic chain
spec must be learned and predicted exactly."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.snake import SnakePrefetcher
from repro.core.tail_table import TailTable
from repro.prefetch.base import AccessEvent


def ev(warp, pc, addr, app=0):
    return AccessEvent(warp_id=warp, cta_id=0, pc=pc, base_addr=addr,
                       line_addr=addr - addr % 128, now=0, thread_stride=4,
                       app_id=app)


@st.composite
def chain_spec(draw):
    """A random chain: 2-5 distinct PCs with nonzero strides between them."""
    length = draw(st.integers(2, 5))
    pcs = draw(st.lists(st.integers(1, 1 << 16), min_size=length,
                        max_size=length, unique=True))
    strides = draw(st.lists(
        st.integers(-50_000, 50_000).filter(lambda s: s != 0),
        min_size=length - 1, max_size=length - 1,
    ))
    return list(zip(pcs, [0] + list(_accumulate(strides))))


def _accumulate(strides):
    total = 0
    for stride in strides:
        total += stride
        yield total


class TestChainLearning:
    @settings(max_examples=30, deadline=None)
    @given(spec=chain_spec(), warps=st.integers(3, 6))
    def test_any_chain_is_learned_and_predicted(self, spec, warps):
        snake = SnakePrefetcher(use_intra=False, use_inter_warp=False,
                                tail_entries=16, max_chain_depth=8)
        base_step = 1 << 20
        for warp in range(warps):
            for pc, offset in spec:
                snake.observe(ev(warp, pc, warp * base_step + offset + base_step))
        # a new warp at the chain head gets the full chain predicted
        head_pc, head_off = spec[0]
        trigger = 64 * base_step + head_off
        requests = snake.observe(ev(63, head_pc, trigger))
        predicted = {r.base_addr for r in requests}
        for pc, offset in spec[1:]:
            assert trigger + (offset - head_off) in predicted

    @settings(max_examples=30, deadline=None)
    @given(spec=chain_spec())
    def test_requests_are_deduplicated_and_nonnegative(self, spec):
        snake = SnakePrefetcher(tail_entries=16)
        for warp in range(4):
            for pc, offset in spec:
                snake.observe(ev(warp, pc, warp * (1 << 20) + offset + (1 << 20)))
        requests = snake.observe(ev(9, spec[0][0], 1 << 24))
        addrs = [r.base_addr for r in requests]
        assert len(addrs) == len(set(addrs))
        assert all(a >= 0 for a in addrs)


class TestTailTableProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 30),
                              st.integers(0, 30),
                              st.integers(-1000, 1000).filter(lambda s: s != 0)),
                    min_size=1, max_size=300),
           st.sampled_from(["lru+pop", "pop"]))
    def test_invariants_under_any_record_stream(self, records, policy):
        tail = TailTable(capacity=6, eviction=policy)
        for warp, pc1, pc2, stride in records:
            tail.record(warp, pc1, pc2, stride)
        assert len(tail) <= 6
        for entry in tail.entries():
            assert entry.popcount <= 16
            # a promoted entry has at least threshold distinct confirmations
            if entry.t1.name != "NOT_TRAINED":
                assert entry.popcount >= 1

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=3, max_size=40, unique=True))
    def test_warp_vector_reflects_confirming_warps(self, warps):
        tail = TailTable(capacity=4)
        for warp in warps:
            entry = tail.record(warp, 0x10, 0x20, 400)
        # 64-bit vector wraps warp ids mod 64; all our ids are < 64
        for warp in warps:
            assert entry.has_warp(warp)
