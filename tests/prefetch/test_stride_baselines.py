"""INTRA / INTER / MTA / CTA-aware / Tree / Ideal behaviour."""

from repro.prefetch.base import AccessEvent
from repro.prefetch.cta_aware import CTAAwarePrefetcher
from repro.prefetch.ideal import IdealPrefetcher
from repro.prefetch.inter_warp import InterWarpPrefetcher
from repro.prefetch.intra_warp import IntraWarpPrefetcher
from repro.prefetch.mta import MTAPrefetcher
from repro.prefetch.stride import ConsensusTracker, StrideTracker
from repro.prefetch.tree import CHUNK_BYTES, TreePrefetcher


def ev(warp, pc, addr, cta=0):
    return AccessEvent(warp_id=warp, cta_id=cta, pc=pc, base_addr=addr,
                       line_addr=addr - addr % 128, now=0, thread_stride=4)


class TestStrideTracker:
    def test_needs_two_equal_deltas(self):
        t = StrideTracker()
        assert t.update(0) is None
        assert t.update(100) is None  # first delta
        assert t.update(200) == 100  # confirmed

    def test_changed_stride_resets(self):
        t = StrideTracker()
        t.update(0), t.update(100), t.update(200)
        assert t.update(500) is None  # delta 300 breaks the run
        assert t.update(800) == 300

    def test_zero_delta_ignored(self):
        t = StrideTracker()
        t.update(0), t.update(0)
        assert t.update(0) is None


class TestConsensusTracker:
    def test_trains_at_threshold_distinct_voters(self):
        t = ConsensusTracker(threshold=3)
        assert t.vote(0, 128) is None
        assert t.vote(1, 128) is None
        assert t.vote(2, 128) == 128

    def test_same_voter_counted_once(self):
        t = ConsensusTracker(threshold=2)
        t.vote(0, 128)
        assert t.vote(0, 128) is None

    def test_zero_stride_never_trains(self):
        t = ConsensusTracker(threshold=1)
        assert t.vote(0, 0) is None


class TestIntraWarp:
    def test_prefetches_loop_iterations(self):
        pf = IntraWarpPrefetcher(degree=2)
        pf.observe(ev(0, 0x10, 0))
        pf.observe(ev(0, 0x10, 4096))
        requests = pf.observe(ev(0, 0x10, 8192))
        assert [r.base_addr for r in requests] == [12288, 16384]

    def test_separate_warps_do_not_interfere(self):
        pf = IntraWarpPrefetcher()
        pf.observe(ev(0, 0x10, 0))
        pf.observe(ev(1, 0x10, 999_999))
        assert pf.observe(ev(0, 0x10, 4096)) == []  # no confirmed stride yet

    def test_irregular_never_trains(self):
        pf = IntraWarpPrefetcher()
        for addr in (0, 7773, 120, 91_231):
            requests = pf.observe(ev(0, 0x10, addr))
        assert requests == []


class TestInterWarp:
    def test_trains_across_adjacent_warps(self):
        pf = InterWarpPrefetcher(degree=2, train_threshold=3)
        requests = []
        for warp in range(4):
            requests = pf.observe(ev(warp, 0x10, warp * 4096))
        assert [r.base_addr for r in requests] == [4 * 4096, 5 * 4096]

    def test_warp_gaps_normalized(self):
        pf = InterWarpPrefetcher(train_threshold=2)
        pf.observe(ev(0, 0x10, 0))
        pf.observe(ev(2, 0x10, 8192))  # gap 2, per-warp stride 4096
        requests = pf.observe(ev(3, 0x10, 12288))
        assert requests and requests[0].base_addr == 16384


class TestMTA:
    def test_combines_both_sources(self):
        pf = MTAPrefetcher(degree=1, train_threshold=2)
        # train intra (loop in warp 0) and inter (warps 0..2 fixed stride)
        for i in range(3):
            pf.observe(ev(0, 0x10, i * 512))
        for warp in (1, 2, 3):
            pf.observe(ev(warp, 0x10, 100_000 + warp * 4096))
        requests = pf.observe(ev(0, 0x10, 3 * 512))
        assert len(requests) >= 1

    def test_deduplicates(self):
        pf = MTAPrefetcher()
        for warp in range(4):
            for i in range(3):
                requests = pf.observe(ev(warp, 0x10, warp * 4096 + i * 4096))
        addrs = [r.base_addr for r in requests]
        assert len(addrs) == len(set(addrs))


class TestCTAAware:
    def test_trains_on_cta_base_stride(self):
        pf = CTAAwarePrefetcher(degree=1, train_threshold=2, cta_step=1)
        pf.observe(ev(0, 0x10, 0, cta=0))
        pf.observe(ev(8, 0x10, 1 << 20, cta=1))
        pf.observe(ev(16, 0x10, 2 << 20, cta=2))
        requests = pf.observe(ev(24, 0x10, 3 << 20, cta=3))
        assert requests and requests[0].base_addr == (4 << 20)

    def test_cta_step_scales_prediction(self):
        pf = CTAAwarePrefetcher(degree=1, train_threshold=2, cta_step=2)
        for cta in range(3):
            pf.observe(ev(cta * 8, 0x10, cta << 20, cta=cta))
        requests = pf.observe(ev(99, 0x10, 5 << 20, cta=10))
        assert requests[0].base_addr == (5 << 20) + (2 << 20)

    def test_needs_two_ctas(self):
        pf = CTAAwarePrefetcher(train_threshold=2)
        for warp in range(8):
            requests = pf.observe(ev(warp, 0x10, warp * 128, cta=0))
        assert requests == []


class TestTree:
    def test_prefetches_following_lines_in_chunk(self):
        pf = TreePrefetcher(burst=4)
        requests = pf.observe(ev(0, 0x10, 0))
        assert [r.base_addr for r in requests] == [128, 256, 384, 512]

    def test_cursor_advances_across_triggers(self):
        pf = TreePrefetcher(burst=2)
        pf.observe(ev(0, 0x10, 0))
        requests = pf.observe(ev(0, 0x10, 128))
        assert [r.base_addr for r in requests] == [384, 512]

    def test_stops_at_chunk_boundary(self):
        pf = TreePrefetcher(burst=8)
        requests = pf.observe(ev(0, 0x10, CHUNK_BYTES - 128))
        assert requests == []


class TestIdeal:
    def test_uses_magic_path(self):
        assert IdealPrefetcher.uses_magic

    def test_covers_second_occurrence_of_any_transition(self):
        pf = IdealPrefetcher()
        # warp 0 walks a chain; warp 1 then repeats it
        pf.observe(ev(0, 0x10, 1000))
        pf.observe(ev(0, 0x20, 1400))
        requests = pf.observe(ev(1, 0x10, 9000))
        assert any(r.base_addr == 9400 for r in requests)

    def test_no_history_no_prediction(self):
        pf = IdealPrefetcher()
        assert pf.observe(ev(0, 0x10, 0)) == []

    def test_supports_variable_strides(self):
        pf = IdealPrefetcher()
        pf.observe(ev(0, 0x10, 0))
        pf.observe(ev(0, 0x20, 400))     # stride +400
        pf.observe(ev(0, 0x10, 10_000))
        pf.observe(ev(0, 0x20, 9_600))   # stride -400 (different!)
        requests = pf.observe(ev(1, 0x10, 50_000))
        addrs = {r.base_addr for r in requests}
        assert {50_400, 49_600} <= addrs
