"""Structural assertions per benchmark: each app's trace must exhibit the
access structure its paper description promises."""

from collections import Counter

from repro.analysis.chains import (
    chain_pc_fraction,
    chain_predictable_fraction,
    load_transitions,
)
from repro.gpusim.trace import Op
from repro.workloads import build_kernel
from repro.workloads.lps import CHAIN as LPS_CHAIN, PLANE_STRIDE
from repro.workloads.tiled_conv import build as build_tiled


class TestLPS:
    """LPS must reproduce exactly the Fig 8 chain."""

    def test_fig8_chain_strides(self):
        kernel = build_kernel("lps")
        warp = kernel.representative_warp()
        transitions = Counter(
            (t[0], t[1], t[2]) for t in load_transitions(warp)
        )
        pcs = [link.pc for link in LPS_CHAIN]
        assert transitions[(pcs[0], pcs[1], -400)] > 1
        assert transitions[(pcs[1], pcs[2], 40_400)] > 1
        assert transitions[(pcs[2], pcs[3], -400)] > 1

    def test_intra_warp_plane_stride(self):
        kernel = build_kernel("lps")
        warp = kernel.representative_warp()
        by_pc = {}
        for instr in warp.loads():
            by_pc.setdefault(instr.pc, []).append(instr.base_addr)
        first_pc_addrs = by_pc[LPS_CHAIN[0].pc]
        deltas = {b - a for a, b in zip(first_pc_addrs, first_pc_addrs[1:])}
        assert deltas == {PLANE_STRIDE}  # Fig 8's intra-warp stride of 40000

    def test_inter_warp_stride_fixed(self):
        kernel = build_kernel("lps")
        w0, w1 = kernel.ctas[0].warps[0], kernel.ctas[0].warps[1]
        a0 = w0.loads()[0].base_addr
        a1 = w1.loads()[0].base_addr
        assert a1 - a0 == 128


class TestIrregularApps:
    def test_mum_is_mostly_unpredictable(self):
        kernel = build_kernel("mum", seed=5)
        assert chain_predictable_fraction(kernel) < 0.5

    def test_histo_bins_are_scattered(self):
        kernel = build_kernel("histo", seed=5)
        warp = kernel.representative_warp()
        bin_addrs = [i.base_addr for i in warp.loads() if i.pc == 0xA20]
        # effectively no repeated bins for a small sample of a 1 MB region
        assert len(set(bin_addrs)) > len(bin_addrs) * 0.8

    def test_nw_chains_do_not_repeat(self):
        kernel = build_kernel("nw")
        assert chain_predictable_fraction(kernel) < chain_predictable_fraction(
            build_kernel("lps")
        )


class TestRegularApps:
    def test_cp_broadcast_shared_across_warps(self):
        kernel = build_kernel("cp")
        first = [w.loads()[0].base_addr for w in kernel.all_warps()]
        assert len(set(first)) == 1  # every warp streams the same atoms

    def test_lib_has_no_reuse(self):
        kernel = build_kernel("lib")
        warp = kernel.representative_warp()
        addrs = [i.base_addr for i in warp.loads()]
        assert len(set(addrs)) == len(addrs)

    def test_backprop_has_barrier_and_two_phases(self):
        kernel = build_kernel("backprop")
        warp = kernel.all_warps()[0]
        ops = [i.op for i in warp.instrs]
        assert Op.BARRIER in ops

    def test_stencils_have_high_chain_fraction(self):
        for app in ("lps", "hotspot", "srad"):
            assert chain_pc_fraction(build_kernel(app)) > 0.7, app


class TestTiledConv:
    def test_zero_frac_reloads_every_pass(self):
        # untiled: no shared-memory staging, so each of the REUSE_PASSES
        # compute passes re-reads the matrix from global memory
        from repro.workloads.tiled_conv import REUSE_PASSES

        kernel = build_tiled(tile_frac=0.0, unified_bytes=16 * 1024)
        warp = kernel.representative_warp()
        counts = Counter(i.base_addr for i in warp.loads())
        assert max(counts.values()) == REUSE_PASSES

    def test_tiled_stages_each_line_once(self):
        # tiled: every tile line is loaded once (into shared memory) and the
        # reuse happens in the compute phase, ending with a barrier
        from repro.gpusim.trace import Op

        kernel = build_tiled(tile_frac=0.5, unified_bytes=16 * 1024)
        warp = kernel.representative_warp()
        counts = Counter(i.base_addr for i in warp.loads())
        assert max(counts.values()) == 1
        assert any(i.op is Op.BARRIER for i in warp.instrs)

    def test_tiled_does_fewer_global_loads(self):
        untiled = build_tiled(tile_frac=0.0, unified_bytes=16 * 1024)
        tiled = build_tiled(tile_frac=0.5, unified_bytes=16 * 1024)
        untiled_loads = len(untiled.representative_warp().loads())
        tiled_loads = len(tiled.representative_warp().loads())
        assert tiled_loads < untiled_loads

    def test_bad_frac_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build_tiled(tile_frac=1.5)

    def test_name_encodes_frac(self):
        assert build_tiled(tile_frac=0.75).name == "tiled_conv_75"
