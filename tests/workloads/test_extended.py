"""Extended workload suite (spmv / bfs / kmeans / stream)."""

import pytest

from repro.gpusim import simulate
from repro.gpusim.validate import validate_kernel
from repro.workloads import EXTENDED_BENCHMARKS, build_kernel


class TestStructure:
    @pytest.mark.parametrize("app", sorted(EXTENDED_BENCHMARKS))
    def test_builds_and_validates(self, app):
        kernel = build_kernel(app, scale=0.25, seed=1)
        errors = [i for i in validate_kernel(kernel) if i.severity == "error"]
        assert errors == []
        assert kernel.representative_warp().loads()

    @pytest.mark.parametrize("app", sorted(EXTENDED_BENCHMARKS))
    def test_deterministic(self, app):
        a = build_kernel(app, scale=0.25, seed=5)
        b = build_kernel(app, scale=0.25, seed=5)
        assert [
            (i.pc, i.base_addr) for w in a.all_warps() for i in w.instrs
        ] == [(i.pc, i.base_addr) for w in b.all_warps() for i in w.instrs]

    def test_spmv_gather_is_divergent(self):
        kernel = build_kernel("spmv", scale=0.25, seed=1)
        warp = kernel.representative_warp()
        gathers = [i for i in warp.loads() if i.pc == 0xD40]
        assert gathers and all(i.divergent for i in gathers)

    def test_kmeans_centroids_are_broadcast(self):
        kernel = build_kernel("kmeans", scale=0.25, seed=1)
        warp = kernel.representative_warp()
        centroid_loads = [i for i in warp.loads() if i.pc == 0xF20]
        assert centroid_loads and all(i.thread_stride == 0 for i in centroid_loads)

    def test_stream_is_pure_streaming(self):
        kernel = build_kernel("stream", scale=0.25, seed=1)
        warp = kernel.representative_warp()
        addrs = [i.base_addr for i in warp.loads()]
        assert len(set(addrs)) == len(addrs)  # no reuse


class TestGeneralization:
    """Snake must help (or at least not hurt) workloads it was not
    calibrated on."""

    def test_stream_benefits(self):
        kernel = build_kernel("stream", scale=0.5, seed=1)
        base = simulate(kernel, prefetcher="none")
        snake = simulate(kernel, prefetcher="snake")
        assert snake.ipc >= base.ipc * 0.95
        assert snake.coverage > 0.3

    def test_kmeans_benefits(self):
        kernel = build_kernel("kmeans", scale=0.5, seed=1)
        base = simulate(kernel, prefetcher="none")
        snake = simulate(kernel, prefetcher="snake")
        assert snake.ipc > base.ipc

    def test_spmv_regular_chain_covered(self):
        kernel = build_kernel("spmv", scale=0.5, seed=1)
        snake = simulate(kernel, prefetcher="snake")
        assert snake.coverage > 0.5  # the CSR streams dominate

    def test_bfs_mostly_uncoverable(self):
        kernel = build_kernel("bfs", scale=0.5, seed=1)
        snake = simulate(kernel, prefetcher="snake")
        assert snake.coverage < 0.6  # adjacency walks are data-dependent
