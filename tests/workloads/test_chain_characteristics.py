"""Per-app chain characteristics: each benchmark's trace must exhibit the
chain structure that drives its position in Figs 9-11 and 16."""

import pytest

from repro.analysis.chains import (
    chain_pc_fraction,
    chain_predictable_fraction,
    max_chain_repetition,
    mta_predictable_fraction,
)
from repro.workloads import BENCHMARKS, build_kernel


@pytest.fixture(scope="module")
def kernels():
    return {app: build_kernel(app, scale=1.0, seed=1) for app in BENCHMARKS}


class TestChainPCFraction:
    """Fig 9 per-app structure."""

    @pytest.mark.parametrize("app", ["cp", "lps", "lib", "mrq", "backprop"])
    def test_chain_rich_apps(self, kernels, app):
        assert chain_pc_fraction(kernels[app]) == 1.0

    def test_mum_has_partial_chains(self, kernels):
        # the node-field chain exists, the pointer hops do not
        fraction = chain_pc_fraction(kernels["mum"])
        assert 0.0 < fraction < 1.0


class TestRepetition:
    """Fig 10: chains must repeat enough to train on (3-warp rule)."""

    @pytest.mark.parametrize("app", ["cp", "lps", "lib", "hotspot", "mrq"])
    def test_regular_apps_repeat_enough(self, kernels, app):
        assert max_chain_repetition(kernels[app]) >= 3

    def test_scale_grows_repetition(self):
        small = max_chain_repetition(build_kernel("lps", scale=0.5, seed=1))
        large = max_chain_repetition(build_kernel("lps", scale=2.0, seed=1))
        assert large > small


class TestPredictability:
    """Fig 11 per-app orderings."""

    def test_chains_beat_mta_on_variable_stride_apps(self, kernels):
        for app in ("lps", "lud", "nw"):
            kernel = kernels[app]
            assert chain_predictable_fraction(kernel) > mta_predictable_fraction(
                kernel
            ), app

    def test_irregular_apps_resist_both(self, kernels):
        for app in ("mum", "histo"):
            kernel = kernels[app]
            assert chain_predictable_fraction(kernel) < 0.6, app

    def test_streaming_apps_nearly_fully_predictable(self, kernels):
        for app in ("cp", "lib", "mrq"):
            assert chain_predictable_fraction(kernels[app]) > 0.9, app
