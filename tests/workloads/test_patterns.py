"""Workload pattern building blocks."""

import pytest

from repro.gpusim.trace import Op
from repro.workloads.patterns import (
    ChainLink,
    GridShape,
    WarpProgram,
    array_base,
    assemble,
    scaled_iters,
)


class TestWarpProgram:
    def test_chain_iteration_addresses(self):
        links = [ChainLink(pc=0x10, offset=0), ChainLink(pc=0x20, offset=400)]
        program = WarpProgram(warp_id=0).chain_iteration(links, pointer=1000,
                                                         alu_between=0)
        loads = program.build().loads()
        assert [(i.pc, i.base_addr) for i in loads] == [(0x10, 1000), (0x20, 1400)]

    def test_chain_iteration_interleaves_alu(self):
        links = [ChainLink(pc=0x10, offset=0), ChainLink(pc=0x20, offset=4)]
        program = WarpProgram(warp_id=0).chain_iteration(links, 0, alu_between=1)
        ops = [i.op for i in program.build()]
        assert ops == [Op.LOAD, Op.ALU, Op.LOAD, Op.ALU]

    def test_streaming_loop(self):
        program = WarpProgram(warp_id=0).streaming_loop(
            pc=0x10, base=0, stride=512, iters=3, alu_between=0
        )
        assert [i.base_addr for i in program.build().loads()] == [0, 512, 1024]

    def test_random_loads_within_region(self):
        import random

        program = WarpProgram(warp_id=0).random_loads(
            0x10, region_base=1 << 20, region_bytes=4096, count=20,
            rng=random.Random(7), alu_between=0,
        )
        for instr in program.build().loads():
            assert (1 << 20) <= instr.base_addr < (1 << 20) + 4096

    def test_negative_addresses_clamped(self):
        program = WarpProgram(warp_id=0).load(0x10, -500)
        assert program.build().loads()[0].base_addr == 0

    def test_builder_chains(self):
        trace = (
            WarpProgram(warp_id=3)
            .alu(0x10)
            .load(0x20, 128)
            .store(0x30, 256)
            .barrier(0x40)
            .sfu(0x50)
            .build()
        )
        assert [i.op for i in trace] == [Op.ALU, Op.LOAD, Op.STORE, Op.BARRIER, Op.SFU]


class TestGridShape:
    def test_warp_slot_linear(self):
        grid = GridShape(num_ctas=4, warps_per_cta=8)
        assert grid.warp_slot(0, 0) == 0
        assert grid.warp_slot(1, 0) == 8
        assert grid.warp_slot(2, 3) == 19
        assert grid.total_warps == 32

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            GridShape(num_ctas=0)


class TestHelpers:
    def test_array_bases_distinct_and_far(self):
        assert array_base(1) - array_base(0) >= (1 << 26)

    def test_scaled_iters_floor(self):
        assert scaled_iters(20, 0.0) == 2
        assert scaled_iters(20, 1.0) == 20
        assert scaled_iters(20, 0.5) == 10

    def test_assemble_renumbers(self):
        from repro.gpusim.trace import WarpTrace

        kernel = assemble("k", [[WarpTrace(warp_id=9)], [WarpTrace(warp_id=9)]])
        assert [w.warp_id for w in kernel.all_warps()] == [0, 1]
        assert kernel.ctas[1].cta_id == 1
