"""Workload registry (Table 2)."""

import pytest

from repro.workloads import BENCHMARKS, FULL_NAMES, build_kernel
from repro.workloads.patterns import GridShape


class TestTable2:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11

    def test_paper_names(self):
        assert set(BENCHMARKS) == {
            "cp", "lps", "lib", "mum", "backprop", "hotspot", "srad",
            "lud", "nw", "histo", "mrq",
        }

    def test_full_names_cover_all(self):
        assert set(FULL_NAMES) == set(BENCHMARKS)

    def test_suites_mentioned(self):
        text = " ".join(FULL_NAMES.values())
        for suite in ("ISPASS", "Rodinia", "Parboil"):
            assert suite in text


class TestBuildKernel:
    def test_unknown_app(self):
        with pytest.raises(ValueError):
            build_kernel("doom")

    @pytest.mark.parametrize("app", BENCHMARKS)
    def test_builds_and_has_loads(self, app):
        kernel = build_kernel(app, scale=0.25, seed=3)
        assert kernel.num_warps > 0
        rep = kernel.representative_warp()
        assert len(rep.loads()) > 0

    @pytest.mark.parametrize("app", BENCHMARKS)
    def test_deterministic_per_seed(self, app):
        a = build_kernel(app, scale=0.25, seed=3)
        b = build_kernel(app, scale=0.25, seed=3)
        assert [
            (i.pc, i.base_addr) for w in a.all_warps() for i in w.instrs
        ] == [(i.pc, i.base_addr) for w in b.all_warps() for i in w.instrs]

    def test_grid_shape_respected(self):
        kernel = build_kernel("lps", grid=GridShape(num_ctas=2, warps_per_cta=4))
        assert len(kernel.ctas) == 2
        assert all(len(c) == 4 for c in kernel.ctas)

    def test_scale_changes_length(self):
        small = build_kernel("lps", scale=0.25).num_instrs
        large = build_kernel("lps", scale=1.0).num_instrs
        assert large > small

    @pytest.mark.parametrize("app", BENCHMARKS)
    def test_warp_ids_globally_unique(self, app):
        kernel = build_kernel(app, scale=0.25)
        ids = [w.warp_id for w in kernel.all_warps()]
        assert len(ids) == len(set(ids))
