"""The shared torn-tail JSONL recovery helper (repro.durable).

One audited implementation backs both the sweep checkpoint and the serve
write-ahead journal; these tests pin its contract directly (the two
consumers' suites cover their integration).
"""

import json

import pytest

from repro.durable import (
    JsonlCorruptionError,
    corrupt_sidecar,
    quarantine_fragment,
    scan_jsonl,
)


def encode(*records):
    return b"".join(json.dumps(r).encode() + b"\n" for r in records)


class TestScan:
    def test_empty(self):
        scan = scan_jsonl(b"")
        assert scan.records == [] and scan.clean

    def test_clean_records_in_order(self):
        scan = scan_jsonl(encode({"a": 1}, {"b": 2}, [3]))
        assert scan.records == [{"a": 1}, {"b": 2}, [3]]
        assert scan.clean

    def test_blank_lines_ignored(self):
        scan = scan_jsonl(b'\n\n{"a": 1}\n\n  \n{"b": 2}\n\n')
        assert scan.records == [{"a": 1}, {"b": 2}]

    def test_torn_tail_recovered(self):
        raw = encode({"a": 1}) + b'{"b": 2, "sp'
        scan = scan_jsonl(raw)
        assert scan.records == [{"a": 1}]
        assert scan.torn == b'{"b": 2, "sp'
        assert not scan.clean

    def test_torn_tail_followed_by_whitespace_only(self):
        raw = encode({"a": 1}) + b'{"half\n  \n\n'
        scan = scan_jsonl(raw)
        assert scan.records == [{"a": 1}]
        assert scan.torn == b'{"half'

    def test_non_utf8_tail_recovered(self):
        raw = encode({"a": 1}) + b"\xff\xfe\x00garbage"
        scan = scan_jsonl(raw)
        assert scan.records == [{"a": 1}]
        assert scan.torn is not None

    def test_interior_corruption_raises(self):
        raw = encode({"a": 1}) + b"not json\n" + encode({"b": 2})
        with pytest.raises(JsonlCorruptionError) as excinfo:
            scan_jsonl(raw, path="some/log.jsonl")
        assert excinfo.value.line_index == 1
        assert "some/log.jsonl" in str(excinfo.value)

    def test_interior_corruption_is_a_valueerror(self):
        # callers that predate the helper catch ValueError
        with pytest.raises(ValueError):
            scan_jsonl(encode({"a": 1}) + b"junk\n" + encode({"b": 2}))

    def test_single_torn_line_file(self):
        scan = scan_jsonl(b'{"never finis')
        assert scan.records == []
        assert scan.torn == b'{"never finis'


class TestQuarantine:
    def test_fragment_diverted_to_sidecar(self, tmp_path):
        log = tmp_path / "wal.jsonl"
        sidecar = quarantine_fragment(log, b'{"torn": tru')
        assert sidecar == corrupt_sidecar(log)
        assert sidecar.read_bytes() == b'{"torn": tru\n'

    def test_fragments_accumulate(self, tmp_path):
        log = tmp_path / "wal.jsonl"
        quarantine_fragment(log, b"first\n")
        quarantine_fragment(log, b"second")
        assert corrupt_sidecar(log).read_bytes() == b"first\nsecond\n"
