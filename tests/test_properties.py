"""Cross-cutting property-based tests: randomized synthetic kernels must
uphold the simulator's global invariants under every mechanism."""

import random

from hypothesis import given, settings, strategies as st

from repro.gpusim import GPUConfig, simulate
from repro.gpusim.trace import CTA, KernelTrace, Op, WarpInstr, WarpTrace, renumber_warps

MECHS = ["none", "mta", "cta", "tree", "snake", "ideal"]


@st.composite
def random_kernel(draw):
    """A small random kernel mixing strided, chained and random accesses."""
    rng = random.Random(draw(st.integers(0, 2**31)))
    num_ctas = draw(st.integers(1, 3))
    warps_per_cta = draw(st.integers(1, 4))
    iters = draw(st.integers(1, 8))
    pattern = draw(st.sampled_from(["stride", "chain", "random", "mixed"]))

    ctas = []
    for c in range(num_ctas):
        warps = []
        for w in range(warps_per_cta):
            instrs = []
            base = (c * warps_per_cta + w) * 8192 + (1 << 26)
            for i in range(iters):
                if pattern in ("stride", "mixed"):
                    instrs.append(WarpInstr(pc=0x10, op=Op.LOAD,
                                            base_addr=base + i * 512,
                                            thread_stride=4))
                if pattern in ("chain", "mixed"):
                    instrs.append(WarpInstr(pc=0x20, op=Op.LOAD,
                                            base_addr=base + i * 512 + 4096,
                                            thread_stride=4))
                if pattern in ("random", "mixed"):
                    instrs.append(WarpInstr(
                        pc=0x30, op=Op.LOAD,
                        base_addr=(1 << 27) + rng.randrange(0, 1 << 20) // 128 * 128,
                        thread_stride=4, divergent=True))
                instrs.append(WarpInstr(pc=0x40, op=Op.ALU))
            warps.append(WarpTrace(warp_id=0, instrs=instrs))
        ctas.append(CTA(cta_id=c, warps=warps))
    renumber_warps(ctas)
    return KernelTrace(name="prop-%s" % pattern, ctas=ctas)


class TestGlobalInvariants:
    @settings(max_examples=15, deadline=None)
    @given(kernel=random_kernel(), mech=st.sampled_from(MECHS))
    def test_all_instructions_retire(self, kernel, mech):
        stats = simulate(kernel, prefetcher=mech)
        assert stats.instructions == kernel.num_instrs
        assert stats.warps_finished == kernel.num_warps

    @settings(max_examples=15, deadline=None)
    @given(kernel=random_kernel(), mech=st.sampled_from(MECHS))
    def test_metric_bounds(self, kernel, mech):
        stats = simulate(kernel, prefetcher=mech)
        assert 0.0 <= stats.coverage <= 1.0
        assert 0.0 <= stats.accuracy <= stats.coverage + 1e-9
        assert 0.0 <= stats.l1_hit_rate <= 1.0
        assert 0.0 <= stats.bandwidth_utilization <= 1.0
        assert stats.cycles > 0

    @settings(max_examples=10, deadline=None)
    @given(kernel=random_kernel())
    def test_deterministic_replay(self, kernel):
        a = simulate(kernel, prefetcher="snake")
        b = simulate(kernel, prefetcher="snake")
        assert a.cycles == b.cycles
        assert a.prefetch.issued == b.prefetch.issued
        assert a.l1_hits == b.l1_hits

    @settings(max_examples=10, deadline=None)
    @given(kernel=random_kernel())
    def test_l1_accounting_balances(self, kernel):
        stats = simulate(kernel, prefetcher="snake")
        assert stats.total_l1_accesses == (
            stats.l1_hits + stats.l1_misses + stats.l1_reserved
            + stats.l1_reservation_fails
        )

    @settings(max_examples=10, deadline=None)
    @given(kernel=random_kernel())
    def test_prefetching_never_loses_work(self, kernel):
        """Prefetchers may change timing but never correctness: every run
        retires the same instruction count as the baseline."""
        base = simulate(kernel, prefetcher="none")
        snake = simulate(kernel, prefetcher="snake")
        assert base.instructions == snake.instructions
