"""Documentation drift checks (the same gate CI's docs job runs)."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_architecture_mentions_every_module():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_docs import missing_modules
    finally:
        sys.path.pop(0)
    assert missing_modules(REPO_ROOT) == []


def test_static_analysis_names_every_rule_family():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_docs import missing_rule_family_docs
    finally:
        sys.path.pop(0)
    assert missing_rule_family_docs(REPO_ROOT) == []


def test_docs_cover_the_cli_surface():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_docs import missing_cli_docs
    finally:
        sys.path.pop(0)
    assert missing_cli_docs(REPO_ROOT) == []


def test_robustness_docs_cover_every_fault_site_and_invariant():
    from repro.gpusim.faults import SITES

    text = (REPO_ROOT / "docs" / "ROBUSTNESS.md").read_text()
    for site in SITES:
        assert site in text, "ROBUSTNESS.md misses fault site %s" % site
    for invariant in (
        "mshr_balance", "icnt_priority", "snake_table",
        "l2_conservation", "dram_conservation", "stats_monotonic",
    ):
        assert invariant in text, "ROBUSTNESS.md misses invariant %s" % invariant
    assert "invariant:<name>" in text


def test_observability_docs_exist_and_cover_the_cli():
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    for needle in ("trace", "profile", "Sink", "chrome://tracing"):
        assert needle in text


def test_metrics_glossary_covers_every_counter():
    import dataclasses

    from repro.gpusim.stats import PrefetchStats, SimStats

    text = (REPO_ROOT / "docs" / "METRICS.md").read_text()
    for cls in (SimStats, PrefetchStats):
        for field in dataclasses.fields(cls):
            assert field.name in text, "METRICS.md misses %s.%s" % (
                cls.__name__, field.name,
            )
