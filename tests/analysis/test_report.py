"""Report rendering."""

from repro.analysis.report import (
    render_matrix,
    render_pairs,
    render_series,
    render_sweep,
)


class TestRenderSeries:
    def test_percent_formatting(self):
        out = render_series("T", {"cp": 0.5}, percent=True)
        assert "50.0%" in out and "cp" in out and out.startswith("T")

    def test_float_formatting(self):
        assert "1.170" in render_series("T", {"cp": 1.17})

    def test_int_formatting(self):
        assert "42" in render_series("T", {"cp": 42})


class TestRenderMatrix:
    def test_rows_and_columns(self):
        out = render_matrix("M", {"snake": {"cp": 0.8, "lps": 0.9}}, percent=True)
        lines = out.splitlines()
        assert "cp" in lines[2] and "lps" in lines[2]
        assert lines[3].startswith("snake")
        assert "80.0%" in lines[3]

    def test_missing_cell_defaults_zero(self):
        out = render_matrix("M", {"a": {"x": 1.0}, "b": {}})
        assert "0.000" in out

    def test_empty_matrix(self):
        assert render_matrix("M", {}) == "M"


class TestRenderSweep:
    def test_sweep(self):
        out = render_sweep("S", {10: 0.5, 20: 0.6}, x_label="entries", percent=True)
        assert "entries" in out and "10" in out and "60.0%" in out


class TestRenderPairs:
    def test_pairs(self):
        out = render_pairs("P", {50: (0.8, 0.7)}, labels=["cov", "acc"],
                           percent=True)
        assert "cov" in out and "acc" in out
        assert "80.0%" in out and "70.0%" in out
