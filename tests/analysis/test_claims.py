"""Automated paper-claims checker."""

from repro.analysis.claims import CLAIMS, ClaimResult, check_claims, render_claims


class TestClaimsStructure:
    def test_every_claim_has_source_and_statement(self):
        for claim in CLAIMS:
            assert claim.source
            assert len(claim.statement) > 10

    def test_sources_reference_paper_artifacts(self):
        sources = {c.source for c in CLAIMS}
        assert "abstract" in sources
        assert any(s.startswith("fig") for s in sources)
        assert "table3" in sources

    def test_render_counts_verdicts(self):
        results = [
            ClaimResult(claim=CLAIMS[0], holds=True, measured="x"),
            ClaimResult(claim=CLAIMS[1], holds=False, measured="y"),
        ]
        text = render_claims(results)
        assert "1/2 claims hold" in text
        assert "PASS" in text and "DEVIATION" in text


class TestClaimsRun:
    def test_most_claims_hold_at_small_scale(self):
        results = check_claims(scale=0.25, seed=2)
        held = sum(1 for r in results if r.holds)
        assert held >= len(results) - 3  # the shapes must survive downscaling

    def test_structural_claims_always_hold(self):
        results = {r.claim.statement: r for r in check_claims(scale=0.25, seed=2)}
        table3 = next(
            r for s, r in results.items() if "448" in s
        )
        assert table3.holds
