"""Structural tests of the matrix experiments at a tiny scale: every
comparison point appears with every app, and the key orderings hold even
on very short traces."""

import pytest

from repro.analysis import experiments
from repro.prefetch import COMPARISON_POINTS
from repro.workloads import BENCHMARKS

SCALE = 0.12
SEED = 4


@pytest.fixture(scope="module")
def fig16():
    return experiments.figure16(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig17():
    return experiments.figure17(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig18():
    return experiments.figure18(scale=SCALE, seed=SEED)


class TestShape:
    def test_all_mechanisms_present(self, fig16):
        assert set(fig16) == set(COMPARISON_POINTS)

    def test_all_apps_present(self, fig16):
        for series in fig16.values():
            assert set(BENCHMARKS) <= set(series)
            assert "mean" in series

    def test_values_in_unit_range(self, fig16, fig17):
        for matrix in (fig16, fig17):
            for series in matrix.values():
                assert all(0.0 <= v <= 1.0 for v in series.values())

    def test_ipc_ratios_positive(self, fig18):
        for series in fig18.values():
            assert all(v > 0 for v in series.values())


class TestOrderings:
    def test_accuracy_bounded_by_coverage(self, fig16, fig17):
        for mech in COMPARISON_POINTS:
            assert fig17[mech]["mean"] <= fig16[mech]["mean"] + 1e-9

    def test_snake_family_covers_more_than_fixed_strides(self, fig16):
        assert fig16["snake"]["mean"] > fig16["intra"]["mean"]
        assert fig16["snake"]["mean"] > fig16["inter"]["mean"]

    def test_tree_has_lowest_accuracy(self, fig17):
        tree = fig17["tree"]["mean"]
        assert tree <= min(
            fig17[m]["mean"] for m in ("snake", "mta", "s-snake")
        )

    def test_figures_share_the_sweep(self, fig16):
        # the memoized sweep means figure17 on the same key is instant and
        # consistent with figure16
        again = experiments.figure16(scale=SCALE, seed=SEED)
        assert again == fig16


class TestEnergy:
    def test_fig19_structure(self):
        fig19 = experiments.figure19(scale=SCALE, seed=SEED)
        assert set(fig19) == set(COMPARISON_POINTS)
        for series in fig19.values():
            assert all(v > 0 for v in series.values())
